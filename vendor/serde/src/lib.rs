//! Offline vendored stand-in for `serde`.
//!
//! The build environment has no registry access, so this workspace ships a
//! minimal serialization framework under the `serde` name: a JSON-like
//! [`Value`] data model, [`Serialize`] / [`Deserialize`] traits over it,
//! and `#[derive(Serialize, Deserialize)]` macros (from the sibling
//! `serde_derive` crate) covering the shapes this workspace uses — named
//! structs and enums with unit, tuple and struct variants, encoded the way
//! upstream serde_json encodes them (externally tagged).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A JSON number: unsigned, signed or floating, preserved exactly.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// Numeric value as `f64` (lossy above 2^53).
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }

    /// As `u64` if exactly representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(u) => Some(u),
            Number::I(i) => u64::try_from(i).ok(),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            Number::F(_) => None,
        }
    }

    /// As `i64` if exactly representable.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(u) => i64::try_from(u).ok(),
            Number::I(i) => Some(i),
            Number::F(f)
                if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&f) =>
            {
                Some(f as i64)
            }
            Number::F(_) => None,
        }
    }
}

impl PartialEq for Number {
    /// Numeric equality across representations (`U(1) == F(1.0)`).
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => match (self.as_u64(), other.as_u64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

/// An insertion-ordered string-keyed map (JSON object).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// New empty map.
    #[must_use]
    pub fn new() -> Self {
        Map::default()
    }

    /// Append a key/value pair (replaces an existing key).
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Look up a key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// The serialization data model: JSON values.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// The object, if this is one.
    #[must_use]
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array, if this is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The numeric value as `f64`, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is an exactly-representable
    /// non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }
}

/// Types convertible into the [`Value`] data model.
pub trait Serialize {
    /// Convert to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstruct from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when `v` does not have the expected shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Deserialize a required object field (derive-macro helper).
///
/// # Errors
///
/// Returns [`Error`] when the field is missing or has the wrong shape.
pub fn field<T: Deserialize>(obj: &Map, name: &str) -> Result<T, Error> {
    match obj.get(name) {
        Some(v) => T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
        None => Err(Error::custom(format!("missing field `{name}`"))),
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// The data model is trivially its own serialized form, so callers can
// round-trip arbitrary JSON (`serde_json::from_str::<Value>`) without
// declaring a matching struct — e.g. to validate exporter output.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Number(n) => n.as_u64(),
                    _ => None,
                };
                n.and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 {
                    Value::Number(Number::U(i as u64))
                } else {
                    Value::Number(Number::I(i))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Number(n) => n.as_i64(),
                    _ => None,
                };
                n.and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            // Non-finite floats serialize as null (serde_json convention).
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::custom("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let vec: Vec<T> = Vec::from_value(v)?;
        let got = vec.len();
        vec.try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {got}")))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(k.clone(), v.to_value());
        }
        Value::Object(map)
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?;
        obj.iter()
            .map(|(k, v)| Ok((k.to_string(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::custom("expected array"))?;
                Ok(($($name::from_value(
                    arr.get($idx).ok_or_else(|| Error::custom("tuple too short"))?,
                )?,)+))
            }
        }
    )*};
}
ser_de_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_compare_across_representations() {
        assert_eq!(Number::U(1), Number::F(1.0));
        assert_eq!(Number::I(-2), Number::F(-2.0));
        assert_ne!(Number::U(1), Number::F(1.5));
    }

    #[test]
    fn map_preserves_insertion_order_and_replaces() {
        let mut m = Map::new();
        m.insert("b", Value::Null);
        m.insert("a", Value::Bool(true));
        m.insert("b", Value::Bool(false));
        let keys: Vec<&str> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(m.get("b"), Some(&Value::Bool(false)));
    }

    #[test]
    fn option_roundtrip() {
        let some = Some(3usize).to_value();
        let none = Option::<usize>::None.to_value();
        assert_eq!(Option::<usize>::from_value(&some).unwrap(), Some(3));
        assert_eq!(Option::<usize>::from_value(&none).unwrap(), None);
    }

    #[test]
    fn array_roundtrip() {
        let a = [1.0f64, 2.0, 3.0];
        let v = a.to_value();
        assert_eq!(<[f64; 3]>::from_value(&v).unwrap(), a);
        assert!(<[f64; 2]>::from_value(&v).is_err());
    }

    #[test]
    fn missing_field_is_an_error() {
        let m = Map::new();
        assert!(field::<usize>(&m, "absent").is_err());
    }
}
