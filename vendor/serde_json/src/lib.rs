//! Offline vendored stand-in for `serde_json`.
//!
//! Renders the vendored `serde` [`Value`] model to JSON text and parses
//! JSON text back, exposing the entry points this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`to_writer`], [`from_str`],
//! [`from_reader`] and [`Error`]. Numbers round-trip exactly: integers are
//! kept as integers and floats use Rust's shortest-round-trip `Display`.
//! Non-finite floats serialize as `null` (upstream convention).

#![forbid(unsafe_code)]

use serde::{Deserialize, Map, Number, Serialize, Value};
use std::fmt;
use std::io;

/// A serialization, deserialization or I/O error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::new(e.to_string())
    }
}

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_number(out: &mut String, n: &Number) {
    match *n {
        Number::U(u) => out.push_str(&u.to_string()),
        Number::I(i) => out.push_str(&i.to_string()),
        Number::F(f) if f.is_finite() => {
            // Rust's Display for f64 is shortest-round-trip decimal.
            out.push_str(&f.to_string());
        }
        Number::F(_) => out.push_str("null"),
    }
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => push_number(out, n),
        Value::String(s) => push_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_escaped(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    const STEP: usize = 2;
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(out, item, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                push_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

/// Serialize to compact JSON text.
///
/// # Errors
///
/// Infallible for the vendored data model; the `Result` mirrors upstream.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&mut out, &value.to_value());
    Ok(out)
}

/// Serialize to 2-space-indented JSON text.
///
/// # Errors
///
/// Infallible for the vendored data model; the `Result` mirrors upstream.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Serialize as compact JSON into a writer.
///
/// # Errors
///
/// Returns [`Error`] on I/O failure.
pub fn to_writer<W: io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let text = to_string(value)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "expected `{`")?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':', "expected `:`")?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain UTF-8 up to the next escape or quote.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat_literal("\\u")
                                    .map_err(|_| self.err("unpaired surrogate"))?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let number = if is_float {
            Number::F(
                text.parse::<f64>()
                    .map_err(|_| self.err("invalid number"))?,
            )
        } else if text.starts_with('-') {
            Number::I(
                text.parse::<i64>()
                    .map_err(|_| self.err("invalid number"))?,
            )
        } else {
            match text.parse::<u64>() {
                Ok(u) => Number::U(u),
                Err(_) => Number::F(
                    text.parse::<f64>()
                        .map_err(|_| self.err("invalid number"))?,
                ),
            }
        };
        Ok(Value::Number(number))
    }
}

/// Parse a JSON value from text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser::new(s);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    Ok(T::from_value(&value)?)
}

/// Parse a JSON value from a reader.
///
/// # Errors
///
/// Returns [`Error`] on I/O failure, malformed JSON or shape mismatch.
pub fn from_reader<R: io::Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42usize).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<usize>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for &f in &[
            0.1,
            1.0 / 3.0,
            1e-300,
            123456789.123456,
            f64::MAX,
            2.0_f64.powi(60),
        ] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, f, "json {json}");
        }
    }

    #[test]
    fn u64_precision_preserved() {
        let big = u64::MAX - 1;
        let json = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), big);
    }

    #[test]
    fn nonfinite_serializes_as_null_and_parses_as_nan() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\none\t\"quoted\" \\ slash \u{1F600} \u{7}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>(r#""A😀""#).unwrap(), "A\u{1F600}");
    }

    #[test]
    fn vec_and_option_roundtrip() {
        let v = vec![Some(1.5f64), None, Some(-2.0)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1.5,null,-2]");
        assert_eq!(from_str::<Vec<Option<f64>>>(&json).unwrap(), v);
    }

    #[test]
    fn btreemap_roundtrip() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("b".to_string(), 2.0f64);
        m.insert("a".to_string(), 1.0);
        let json = to_string(&m).unwrap();
        assert_eq!(json, r#"{"a":1,"b":2}"#);
        assert_eq!(
            from_str::<std::collections::BTreeMap<String, f64>>(&json).unwrap(),
            m
        );
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let v = vec![vec![1.0f64, 2.0], vec![3.0]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  "));
        assert_eq!(from_str::<Vec<Vec<f64>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<f64>("1.5garbage").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn writer_writes_compact() {
        let mut buf = Vec::new();
        to_writer(&mut buf, &vec![1u64, 2]).unwrap();
        assert_eq!(buf, b"[1,2]");
    }
}
