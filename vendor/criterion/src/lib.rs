//! Offline vendored stand-in for `criterion`.
//!
//! The registry is unreachable in this build environment, so this crate
//! provides the subset of the Criterion API the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`black_box`], [`BenchmarkId`], [`Throughput`] and
//! the [`criterion_group!`] / [`criterion_main!`] macros — backed by a
//! straightforward wall-clock measurement loop: warm up for
//! `warm_up_time`, then run timed batches until `measurement_time`
//! elapses (at least `sample_size` batches), and report the mean, best
//! and worst per-iteration time.
//!
//! A benchmark binary built with these macros understands `--bench`
//! (ignored), `--test` (runs each benchmark once, for CI smoke), and an
//! optional substring filter argument, mirroring upstream behavior.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group (recorded, shown per run).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// Parameter-only id (the group name provides the prefix).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    /// (total elapsed, iterations) accumulated by [`Bencher::iter`].
    samples: Vec<(Duration, u64)>,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

enum Mode {
    /// Full measurement.
    Measure,
    /// `--test`: run the closure once and record nothing.
    Smoke,
}

impl Bencher {
    /// Run `f` repeatedly under the timer.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if matches!(self.mode, Mode::Smoke) {
            black_box(f());
            return;
        }
        // Warm-up: run until the warm-up budget elapses, measuring the
        // rough per-iteration cost to size timed batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start
            .elapsed()
            .checked_div(warm_iters as u32)
            .unwrap_or_default();
        // Size each batch to ~1/sample_size of the measurement budget.
        let batch_budget = self
            .measurement_time
            .checked_div(self.sample_size as u32)
            .unwrap_or_default();
        let batch_iters = if per_iter.is_zero() {
            1000
        } else {
            (batch_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measurement_time
            || self.samples.len() < self.sample_size
        {
            let t0 = Instant::now();
            for _ in 0..batch_iters {
                black_box(f());
            }
            self.samples.push((t0.elapsed(), batch_iters));
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Shared settings + reporting for one benchmark run.
#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
    smoke: bool,
}

impl Settings {
    fn from_args() -> (Option<String>, bool) {
        let mut filter = None;
        let mut smoke = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => {}
                "--test" => smoke = true,
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        (filter, smoke)
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        let (filter, smoke) = Settings::from_args();
        Criterion {
            settings: Settings {
                sample_size: 20,
                measurement_time: Duration::from_secs(3),
                warm_up_time: Duration::from_millis(500),
                filter,
                smoke,
            },
        }
    }
}

impl Criterion {
    /// Number of timed batches per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Total timed-measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Accept and ignore CLI re-configuration (upstream compatibility).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&self.settings, name, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            settings: self.settings.clone(),
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing settings and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed batches per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Total timed-measurement budget per benchmark in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark in this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().id);
        run_one(&self.settings, &id, self.throughput, f);
        self
    }

    /// Run one benchmark with an explicit input reference.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group (reporting happens per benchmark).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    settings: &Settings,
    id: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if let Some(filter) = &settings.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        mode: if settings.smoke {
            Mode::Smoke
        } else {
            Mode::Measure
        },
        samples: Vec::new(),
        warm_up_time: settings.warm_up_time,
        measurement_time: settings.measurement_time,
        sample_size: settings.sample_size,
    };
    f(&mut bencher);
    if settings.smoke {
        println!("{id}: smoke ok");
        return;
    }
    if bencher.samples.is_empty() {
        println!("{id}: no samples (closure never called iter)");
        return;
    }
    let per_batch: Vec<Duration> = bencher
        .samples
        .iter()
        .map(|(d, n)| d.checked_div(*n as u32).unwrap_or_default())
        .collect();
    let total_iters: u64 = bencher.samples.iter().map(|(_, n)| n).sum();
    let total_time: Duration = bencher.samples.iter().map(|(d, _)| *d).sum();
    let mean = total_time
        .checked_div(total_iters as u32)
        .unwrap_or_default();
    let best = per_batch.iter().min().copied().unwrap_or_default();
    let worst = per_batch.iter().max().copied().unwrap_or_default();
    let mut line = format!(
        "{id}: mean {} [best {} worst {}] ({} iters)",
        format_duration(mean),
        format_duration(best),
        format_duration(worst),
        total_iters,
    );
    if let Some(t) = throughput {
        let secs = mean.as_secs_f64();
        if secs > 0.0 {
            match t {
                Throughput::Elements(n) => {
                    let _ = write!(line, "  {:.0} elem/s", n as f64 / secs);
                }
                Throughput::Bytes(n) => {
                    let _ = write!(line, "  {:.0} B/s", n as f64 / secs);
                }
            }
        }
    }
    println!("{line}");
}

/// Define a benchmark group: either `criterion_group!(name, fn1, fn2)` or
/// the `name = …; config = …; targets = …` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut criterion: $crate::Criterion = $config;
                    $target(&mut criterion);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_settings() -> Settings {
        Settings {
            sample_size: 2,
            measurement_time: Duration::from_millis(20),
            warm_up_time: Duration::from_millis(5),
            filter: None,
            smoke: false,
        }
    }

    #[test]
    fn measures_and_reports() {
        let mut calls = 0u64;
        run_one(&fast_settings(), "unit/measure", None, |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            });
        });
        assert!(calls > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut settings = fast_settings();
        settings.filter = Some("other".to_string());
        let mut calls = 0u64;
        run_one(&settings, "unit/filtered", None, |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        assert_eq!(calls, 0);
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut settings = fast_settings();
        settings.smoke = true;
        let mut calls = 0u64;
        run_one(&settings, "unit/smoke", None, |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("sbc", 128).id, "sbc/128");
        assert_eq!(BenchmarkId::from_parameter("RF").id, "RF");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(5)), "5 ns");
        assert!(format_duration(Duration::from_micros(12)).contains("µs"));
        assert!(format_duration(Duration::from_millis(12)).contains("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
