//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace ships
//! the subset of the `rand` 0.8 API it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] / [`Rng::gen_range`] /
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256++ seeded via SplitMix64 — deterministic, high-quality and
//! fast, but **not** stream-compatible with upstream `StdRng` (ChaCha12).
//! Every consumer in this workspace seeds explicitly, so determinism is
//! what matters, not upstream-identical streams.

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from a generator's raw bits.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the upstream
    /// `Standard` distribution for `f64`).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform draw from `[0, bound)` via 128-bit widening multiply.
fn uniform_u64(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, u16, u8);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}
float_range!(f64, f32);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of an inferred type (`f64` is uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw uniformly from a range, e.g. `rng.gen_range(0..n)`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded via SplitMix64 (same seeding scheme upstream `seed_from_u64`
    /// uses to expand a `u64` into full generator state).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state is a fixed point of xoshiro; splitmix64 never
            // yields four zero words from any input, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{uniform_u64, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle (upstream iteration order: high to low).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_all_buckets() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 700, "bucket {i}: {c}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            match rng.gen_range(0..=3usize) {
                0 => lo = true,
                3 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&v));
        }
    }
}
