//! Offline vendored `#[derive(Serialize, Deserialize)]` macros for the
//! vendored `serde` crate.
//!
//! Implemented directly on `proc_macro::TokenStream` (no syn/quote — the
//! registry is unreachable in this build environment). Supports the shapes
//! this workspace uses:
//!
//! - structs with named fields (and unit structs),
//! - enums with unit, tuple and struct variants,
//!
//! encoded the way upstream serde encodes them (externally tagged): unit
//! variants as strings, `V(x)` as `{"V": x}`, `V(a, b)` as `{"V": [a, b]}`,
//! `V { f }` as `{"V": {"f": …}}`. Generics and `#[serde(...)]` attributes
//! are not supported — the attribute is accepted and ignored so upstream
//! annotations fail loudly at the test level rather than at parse time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Parsed {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skip `#[...]` attribute pairs starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip `pub`, `pub(crate)`, `pub(in …)` starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Collect the named fields of a brace-delimited body: `[attrs] [vis]
/// name: Type,` — commas inside generic angle brackets do not split.
fn parse_named_fields(body: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_vis(body, skip_attrs(body, i));
        let name = match body.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive: expected field name, found `{other}`"),
            None => break,
        };
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!("serde_derive: expected `:` after field `{name}`"),
        }
        let mut angle = 0i32;
        while let Some(tok) = body.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

/// Count the top-level comma-separated entries of a tuple body.
fn count_tuple_fields(body: &[TokenTree]) -> usize {
    if body.is_empty() {
        return 0;
    }
    let mut n = 1;
    let mut angle = 0i32;
    let mut trailing = false;
    for tok in body {
        trailing = false;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    n += 1;
                    trailing = true;
                }
                _ => {}
            }
        }
    }
    if trailing {
        n -= 1;
    }
    n
}

fn parse_variants(body: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_vis(body, skip_attrs(body, i));
        let name = match body.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive: expected variant name, found `{other}`"),
            None => break,
        };
        i += 1;
        let shape = match body.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Shape::Tuple(count_tuple_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Shape::Struct(parse_named_fields(&inner))
            }
            _ => Shape::Unit,
        };
        // Skip any discriminant (`= expr`) up to the next top-level comma.
        while let Some(tok) = body.get(i) {
            i += 1;
            if let TokenTree::Punct(p) = tok {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic type `{name}` is not supported by the vendored derive");
        }
    }
    let body = tokens[i..].iter().find_map(|tok| match tok {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
            Some(g.stream().into_iter().collect::<Vec<TokenTree>>())
        }
        TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
            panic!("serde_derive: tuple struct `{name}` is not supported by the vendored derive")
        }
        _ => None,
    });
    match (kind.as_str(), body) {
        ("struct", Some(body)) => Parsed::Struct {
            name,
            fields: parse_named_fields(&body),
        },
        ("struct", None) => Parsed::Struct {
            name,
            fields: Vec::new(),
        },
        ("enum", Some(body)) => Parsed::Enum {
            name,
            variants: parse_variants(&body),
        },
        _ => panic!("serde_derive: cannot derive for `{kind} {name}`"),
    }
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Parsed::Struct { name, fields } => {
            let mut inserts = String::new();
            for f in &fields {
                inserts.push_str(&format!(
                    "__map.insert(\"{f}\", ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         #[allow(unused_mut)]\n\
                         let mut __map = ::serde::Map::new();\n\
                         {inserts}\
                         ::serde::Value::Object(__map)\n\
                     }}\n\
                 }}"
            )
        }
        Parsed::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__a0) => {{\n\
                             let mut __map = ::serde::Map::new();\n\
                             __map.insert(\"{vn}\", ::serde::Serialize::to_value(__a0));\n\
                             ::serde::Value::Object(__map)\n\
                         }}\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__a{k}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {{\n\
                                 let mut __map = ::serde::Map::new();\n\
                                 __map.insert(\"{vn}\", ::serde::Value::Array(vec![{}]));\n\
                                 ::serde::Value::Object(__map)\n\
                             }}\n",
                            binds.join(", "),
                            elems.join(", "),
                        ));
                    }
                    Shape::Struct(fields) => {
                        let binds = fields.join(", ");
                        let mut inserts = String::new();
                        for f in fields {
                            inserts.push_str(&format!(
                                "__inner.insert(\"{f}\", ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n\
                                 let mut __inner = ::serde::Map::new();\n\
                                 {inserts}\
                                 let mut __map = ::serde::Map::new();\n\
                                 __map.insert(\"{vn}\", ::serde::Value::Object(__inner));\n\
                                 ::serde::Value::Object(__map)\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Parsed::Struct { name, fields } => {
            let mut inits = String::new();
            for f in &fields {
                inits.push_str(&format!("{f}: ::serde::field(__obj, \"{f}\")?,\n"));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         #[allow(unused_variables)]\n\
                         let __obj = __v.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                         ::std::result::Result::Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Parsed::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                        // Also accept the tagged-null form `{"V": null}`.
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    Shape::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| {
                                format!(
                                    "::serde::Deserialize::from_value(__arr.get({k}).ok_or_else(|| \
                                     ::serde::Error::custom(\"tuple variant {vn} too short\"))?)?"
                                )
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let __arr = __inner.as_array().ok_or_else(|| \
                                     ::serde::Error::custom(\"expected array for {name}::{vn}\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vn}({}))\n\
                             }}\n",
                            elems.join(", "),
                        ));
                    }
                    Shape::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!("{f}: ::serde::field(__io, \"{f}\")?,\n"));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let __io = __inner.as_object().ok_or_else(|| \
                                     ::serde::Error::custom(\"expected object for {name}::{vn}\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vn} {{\n{inits}}})\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::String(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\
                                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                                     format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Object(__o) if __o.len() == 1 => {{\n\
                                 let (__tag, __inner) = __o.iter().next().expect(\"len checked\");\n\
                                 let _ = __inner;\n\
                                 match __tag {{\n\
                                     {tagged_arms}\
                                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                                         format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(::serde::Error::custom(\
                                 \"expected string or single-key object for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}
