//! User-defined gestures (§VI "Gesture Set"): register a brand-new gesture
//! from a handful of example recordings and recognize it alongside the
//! paper's eight.
//!
//! ```text
//! cargo run --release -p airfinger-examples --bin custom_gesture
//! ```

use airfinger_core::config::AirFingerConfig;
use airfinger_core::custom::{CustomRecognizer, ExtendedLabel};
use airfinger_nir_sim::sampler::{Sampler, Scene};
use airfinger_nir_sim::trace::RssTrace;
use airfinger_nir_sim::{SensorLayout, Vec3};
use airfinger_synth::dataset::{generate_corpus, CorpusSpec};
use airfinger_synth::gesture::Gesture;

/// The custom gesture: a "double tap left–right" — two quick presses at
/// different board positions, something the built-in set cannot express.
fn tap_tap(seed: u64) -> RssTrace {
    let sampler = Sampler::new(Scene::new(SensorLayout::paper_prototype()), 100.0);
    sampler.sample(1.2, seed, |t| {
        let (x, press) = if t < 0.4 {
            (-0.008, ((t / 0.4) * std::f64::consts::PI).sin().powi(4))
        } else if t < 0.7 {
            (0.0, 0.0)
        } else {
            (
                0.008,
                (((t - 0.7) / 0.4) * std::f64::consts::PI).sin().powi(4),
            )
        };
        Some(Vec3::new(x, 0.0, 0.019 - 0.006 * press))
    })
}

fn main() -> Result<(), airfinger_core::AirFingerError> {
    println!("training on the built-in corpus + 6 examples of a new gesture…");
    let corpus = generate_corpus(&CorpusSpec {
        users: 2,
        sessions: 2,
        reps: 4,
        ..Default::default()
    });
    let examples: Vec<RssTrace> = (0..6).map(tap_tap).collect();
    let mut recognizer = CustomRecognizer::new(AirFingerConfig {
        forest_trees: 40,
        ..Default::default()
    });
    recognizer.train(&corpus, &[("tap-tap".into(), examples)])?;

    // Fresh recordings of the custom gesture…
    println!("\nrecognizing fresh recordings:");
    for seed in 100..105 {
        let got = recognizer.recognize(&tap_tap(seed))?;
        println!("  tap-tap recording  →  {got}");
    }
    // …and a held-out session of the same users, to show nothing regressed.
    let mut correct = 0;
    let held_out = generate_corpus(&CorpusSpec {
        users: 2,
        sessions: 3,
        reps: 1,
        ..Default::default()
    })
    .filter(|s| s.session == 2); // session 2 was never trained on
    for s in held_out.samples() {
        let got = recognizer.recognize(&s.trace)?;
        if got == ExtendedLabel::Builtin(s.label.gesture().expect("gesture corpus")) {
            correct += 1;
        }
    }
    println!(
        "\nbuilt-in gestures on a fresh session: {correct}/{} correct",
        held_out.len()
    );
    println!(
        "registered custom gestures: {:?}",
        recognizer.custom_names()
    );
    let _ = Gesture::ALL; // the eight built-ins share the label space
    Ok(())
}
