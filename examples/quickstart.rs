//! Quickstart: synthesize a small gesture corpus, train the airFinger
//! pipeline, and recognize a fresh recording of every gesture.
//!
//! ```text
//! cargo run --release -p airfinger-examples --bin quickstart
//! ```

use airfinger_core::prelude::*;
use airfinger_synth::dataset::{generate_corpus, generate_sample, CorpusSpec};
use airfinger_synth::gesture::{Gesture, SampleLabel};
use airfinger_synth::profile::UserProfile;

fn main() -> Result<(), AirFingerError> {
    // 1. A small training corpus: 3 volunteers x 2 sessions x 5 reps of
    //    each of the 8 gestures (the paper's full protocol is 10x5x25).
    let spec = CorpusSpec {
        users: 3,
        sessions: 2,
        reps: 5,
        ..Default::default()
    };
    println!("generating training corpus ({} samples)…", 3 * 2 * 5 * 8);
    let corpus = generate_corpus(&spec);

    // 2. Train the pipeline (SBC + DT segmentation happen inside).
    let mut airfinger = AirFinger::new(AirFingerConfig::default());
    println!("training…");
    airfinger.train_on_corpus(&corpus, None)?;

    // 3. Recognize held-out recordings: a new repetition of every gesture
    //    by a known volunteer.
    let profile = UserProfile::sample(1, spec.seed);
    println!("\n{:<16} {:<32}", "performed", "recognized");
    let mut correct = 0;
    for gesture in Gesture::ALL {
        let sample = generate_sample(
            &profile,
            SampleLabel::Gesture(gesture),
            /* session */ 1,
            /* rep */ 99, // unseen repetition
            &spec,
        );
        let event = airfinger.recognize_primary(&sample.trace)?;
        let ok = event.gesture() == Some(gesture);
        if ok {
            correct += 1;
        }
        println!(
            "{:<16} {:<32} {}",
            gesture.to_string(),
            event.to_string(),
            if ok { "✓" } else { "✗" }
        );
    }
    println!("\n{correct}/8 recognized correctly");
    Ok(())
}
