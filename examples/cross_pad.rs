//! The §VI multi-dimensional sensing area as a working trackpad: a
//! plus-shaped board (`SensorLayout::cross`) and the 2-D ZEBRA tracker
//! resolve swipe direction and speed in both axes.
//!
//! ```text
//! cargo run --release -p airfinger-examples --bin cross_pad
//! ```

use airfinger_core::config::AirFingerConfig;
use airfinger_core::processing::DataProcessor;
use airfinger_core::zebra2d::Zebra2d;
use airfinger_nir_sim::components::{LedSpec, PhotodiodeSpec};
use airfinger_nir_sim::sampler::{Sampler, Scene};
use airfinger_nir_sim::{SensorLayout, Vec3};

fn main() {
    let layout = SensorLayout::cross(3, 5.0e-3, LedSpec::ir304c94(), PhotodiodeSpec::pt304());
    println!(
        "cross board: {} photodiodes, {} LEDs, {:.0} mW",
        layout.photodiodes().len(),
        layout.leds().len(),
        airfinger_nir_sim::power::PowerBudget::for_layout(&layout, 1.0).total_mw()
    );
    let scene = Scene::new(layout);
    let sampler = Sampler::new(scene, 100.0);
    let config = AirFingerConfig::default();
    let processor = DataProcessor::new(config);
    let tracker = Zebra2d::new(config, 3);

    println!(
        "\n{:>14} {:>10} {:>10} {:>9} {:>9}",
        "swipe", "vx(mm/s)", "vy(mm/s)", "speed", "heading"
    );
    let diag = std::f64::consts::FRAC_1_SQRT_2;
    let compass: [(&str, f64, f64); 8] = [
        ("east →", 1.0, 0.0),
        ("north ↑", 0.0, 1.0),
        ("west ←", -1.0, 0.0),
        ("south ↓", 0.0, -1.0),
        ("north-east ↗", diag, diag),
        ("north-west ↖", -diag, diag),
        ("south-west ↙", -diag, -diag),
        ("south-east ↘", diag, -diag),
    ];
    for (seed, (name, dx, dy)) in compass.iter().enumerate() {
        let trace = sampler.sample(1.4, seed as u64, move |t| {
            let s = ((t - 0.3) / 0.6).clamp(0.0, 1.0);
            let span = 0.05;
            Some(Vec3::new(
                dx * span * (s - 0.5),
                dy * span * (s - 0.5),
                0.018,
            ))
        });
        let window = processor.primary_window(&trace);
        match tracker.track(&window) {
            Some(swipe) => println!(
                "{:>14} {:>10.0} {:>10.0} {:>9.0} {:>8.0}°",
                name,
                swipe.vx_mm_s,
                swipe.vy_mm_s,
                swipe.speed_mm_s(),
                swipe.heading_rad().to_degrees(),
            ),
            None => println!("{name:>14}  (no crossing detected)"),
        }
    }
    println!("\n(the linear prototype would see only the x component of each swipe)");
}
