//! Regenerate the paper's data-collection protocol (§V-B): 10 volunteers ×
//! 8 gestures × 5 sessions × 25 repetitions = 10,000 labelled samples, and
//! export them as JSON for external analysis.
//!
//! ```text
//! cargo run --release -p airfinger-examples --bin data_collection -- [reps] [out.json]
//! ```
//!
//! Pass a smaller `reps` (default 25) for a quicker run; the full corpus
//! JSON is several hundred megabytes.

use airfinger_synth::dataset::{generate_corpus, CorpusSpec};
use std::collections::BTreeMap;
use std::io::BufWriter;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reps: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(25);
    let out = args.get(1).cloned();

    let spec = CorpusSpec {
        reps,
        ..Default::default()
    };
    let total = spec.users * spec.sessions * spec.reps * spec.gestures.len();
    println!(
        "collecting {} samples ({} users x {} sessions x {} reps x {} gestures)…",
        total,
        spec.users,
        spec.sessions,
        spec.reps,
        spec.gestures.len()
    );
    let corpus = generate_corpus(&spec);

    // Session summary, the way a data-collection log would read.
    let mut per_gesture: BTreeMap<&str, (usize, f64)> = BTreeMap::new();
    for s in corpus.samples() {
        let name = s.label.gesture().map_or("non-gesture", |g| g.name());
        let e = per_gesture.entry(name).or_default();
        e.0 += 1;
        e.1 += s.trace.duration_s();
    }
    println!("\n{:<15} {:>7} {:>12}", "gesture", "count", "avg dur (s)");
    for (name, (count, dur)) in &per_gesture {
        println!("{:<15} {:>7} {:>12.2}", name, count, dur / *count as f64);
    }
    let hours: f64 = corpus
        .samples()
        .iter()
        .map(|s| s.trace.duration_s())
        .sum::<f64>()
        / 3600.0;
    println!(
        "\ntotal recording time: {hours:.2} h across {} samples",
        corpus.len()
    );

    if let Some(path) = out {
        println!("writing {path}…");
        let file = std::fs::File::create(&path).expect("create output file");
        corpus
            .write_json(BufWriter::new(file))
            .expect("serialize corpus");
        println!("wrote {path}");
    } else {
        println!("(pass an output path as the second argument to export JSON)");
    }
}
