//! New-user enrollment: closing the paper's individual-diversity gap.
//!
//! §V-D's leave-one-user-out result says a brand-new user starts well
//! below the within-population accuracy. This example plays out the
//! device-onboarding flow that fixes it: a user the recognizer has never
//! seen performs each gesture four times ("draw a circle… now rub…"), the
//! trials are folded into the training set with an up-weight, and the
//! recognizer retrains in place.
//!
//! ```text
//! cargo run --release -p airfinger-examples --bin enrollment
//! ```

use airfinger_core::adapt::UserAdapter;
use airfinger_core::config::AirFingerConfig;
use airfinger_core::pipeline::AirFinger;
use airfinger_core::train::all_gesture_feature_set;
use airfinger_synth::dataset::{generate_corpus, Corpus, CorpusSpec};
use airfinger_synth::gesture::Gesture;

const ENROLL_TRIALS: usize = 4;

fn accuracy(af: &AirFinger, corpus: &Corpus) -> (usize, usize) {
    let mut correct = 0;
    let mut total = 0;
    for s in corpus.samples() {
        let got = af.recognize_primary(&s.trace).expect("trained pipeline");
        total += 1;
        if got.gesture() == s.label.gesture() {
            correct += 1;
        }
    }
    (correct, total)
}

fn main() -> Result<(), airfinger_core::AirFingerError> {
    let config = AirFingerConfig {
        forest_trees: 80,
        ..Default::default()
    };

    println!("training on a 6-volunteer population…");
    let population = generate_corpus(&CorpusSpec {
        users: 6,
        sessions: 3,
        reps: 8,
        ..Default::default()
    });
    let mut af = AirFinger::new(config);
    af.train_on_corpus(&population, None)?;

    // A user the population never contained, recorded on two days:
    // day 1 is the enrollment source, day 2 is what the device must
    // recognize (enrollment and evaluation never share a session).
    let newcomer = generate_corpus(&CorpusSpec {
        users: 1,
        sessions: 2,
        reps: 8,
        seed: 0xCAFE,
        ..Default::default()
    });
    let day1 = newcomer.filter(|s| s.session == 0);
    let day2 = newcomer.filter(|s| s.session == 1);

    let (c0, t0) = accuracy(&af, &day2);
    println!(
        "\nout-of-population user, before enrollment: {c0}/{t0} \
         ({:.1}%) — the Fig. 11 situation",
        100.0 * c0 as f64 / t0 as f64
    );

    println!("\nenrolling: {ENROLL_TRIALS} trials per gesture from the user's first day…");
    let mut adapter = UserAdapter::new(all_gesture_feature_set(&population, &config)).with_mix(0.5);
    for gesture in Gesture::ALL {
        let trials = day1
            .samples()
            .iter()
            .filter(|s| s.label.gesture() == Some(gesture))
            .take(ENROLL_TRIALS);
        for s in trials {
            adapter.enroll_trace(&af, &s.trace, gesture);
        }
    }
    println!(
        "  {} trials collected; each will count {}× in retraining",
        adapter.enrolled_count(),
        adapter.boost()
    );
    adapter.apply(&mut af)?;

    let (c1, t1) = accuracy(&af, &day2);
    println!(
        "\nafter enrollment, on the user's second day:  {c1}/{t1} ({:.1}%)",
        100.0 * c1 as f64 / t1 as f64
    );

    // The population did not get forgotten.
    let held = generate_corpus(&CorpusSpec {
        users: 6,
        sessions: 4,
        reps: 2,
        ..Default::default()
    })
    .filter(|s| s.session == 3); // a session the pipeline never saw
    let (cp, tp) = accuracy(&af, &held);
    println!(
        "population users on a fresh session, after enrollment: {cp}/{tp} ({:.1}%)",
        100.0 * cp as f64 / tp as f64
    );
    Ok(())
}
