//! The §V-K wearable demo: airFinger augmented into a wristband, used
//! while sitting, standing and walking. The pipeline is trained on desk
//! recordings and evaluated per activity.
//!
//! ```text
//! cargo run --release -p airfinger-examples --bin wristband
//! ```

use airfinger_core::prelude::*;
use airfinger_synth::conditions::{Activity, Condition};
use airfinger_synth::dataset::{generate_corpus, CorpusSpec};

fn main() -> Result<(), AirFingerError> {
    // Train on wristband data pooled across activities (the paper's
    // wristband study trains and tests within the wearable setting).
    let train_spec = CorpusSpec {
        users: 3,
        sessions: 2,
        reps: 4,
        condition: Condition::Wristband {
            activity: Activity::Sitting,
        },
        ..Default::default()
    };
    println!("training on wristband recordings…");
    let corpus = generate_corpus(&train_spec);
    let mut airfinger = AirFinger::new(AirFingerConfig::default());
    airfinger.train_on_corpus(&corpus, None)?;

    println!("\n{:<10} {:>9} {:>9}", "activity", "correct", "accuracy");
    for activity in Activity::ALL {
        let test_spec = CorpusSpec {
            users: 3,
            sessions: 1,
            reps: 3,
            condition: Condition::Wristband { activity },
            seed: train_spec.seed + 1000, // fresh repetitions
            ..Default::default()
        };
        let test = generate_corpus(&test_spec);
        let mut correct = 0;
        for s in test.samples() {
            let event = airfinger.recognize_primary(&s.trace)?;
            if event.gesture() == s.label.gesture() {
                correct += 1;
            }
        }
        println!(
            "{:<10} {:>6}/{:<3} {:>8.1}%",
            activity.name(),
            correct,
            test.len(),
            100.0 * correct as f64 / test.len() as f64
        );
    }
    println!("\n(paper: 97.17% average accuracy across the three activities)");
    Ok(())
}
