//! Streaming engine demo: a continuous 100 Hz feed with interleaved
//! gestures, idle stretches, unintentional motions and a passer-by; the
//! engine emits recognition events sample-by-sample, exactly as firmware
//! would consume the ADC.
//!
//! ```text
//! cargo run --release -p airfinger-examples --bin live_monitor
//! ```

use airfinger_core::engine::StreamingEngine;
use airfinger_core::prelude::*;
use airfinger_nir_sim::ambient::Interference;
use airfinger_nir_sim::sampler::{Sampler, Scene};
use airfinger_nir_sim::SensorLayout;
use airfinger_synth::dataset::{generate_corpus, generate_nongesture_corpus, CorpusSpec};
use airfinger_synth::gesture::{Gesture, NonGestureKind, SampleLabel};
use airfinger_synth::profile::UserProfile;
use airfinger_synth::trajectory::Trajectory;

fn main() -> Result<(), AirFingerError> {
    // Train a pipeline including the unintentional-motion filter.
    let spec = CorpusSpec {
        users: 3,
        sessions: 2,
        reps: 4,
        ..Default::default()
    };
    println!("training pipeline + interference filter…");
    let gestures = generate_corpus(&spec);
    let non = generate_nongesture_corpus(&CorpusSpec {
        reps: 24,
        ..spec.clone()
    });
    let mut airfinger = AirFinger::new(AirFingerConfig::default());
    airfinger.train_on_corpus(&gestures, Some(&non))?;

    // Script a 20-second live session for volunteer 0.
    let profile = UserProfile::sample(0, spec.seed);
    let script: Vec<(f64, SampleLabel)> = vec![
        (1.0, SampleLabel::Gesture(Gesture::Click)),
        (3.5, SampleLabel::Gesture(Gesture::Circle)),
        (6.5, SampleLabel::NonGesture(NonGestureKind::Scratch)),
        (9.5, SampleLabel::Gesture(Gesture::ScrollUp)),
        (12.0, SampleLabel::Gesture(Gesture::DoubleClick)),
        (15.0, SampleLabel::NonGesture(NonGestureKind::Reposition)),
        (17.5, SampleLabel::Gesture(Gesture::ScrollDown)),
    ];
    let trajectories: Vec<(f64, Trajectory)> = script
        .iter()
        .enumerate()
        .map(|(i, (start, label))| {
            let params = profile.trial_params(*label, 0, 500 + i, spec.seed);
            (
                *start,
                Trajectory::generate(*label, &params, spec.seed + i as u64),
            )
        })
        .collect();
    let rest = profile.base;
    let scene =
        Scene::new(SensorLayout::paper_prototype()).with_interference(Interference::passerby());
    let sampler = Sampler::new(scene, 100.0);
    let trace = sampler.sample(20.0, 42, |t| {
        for (start, traj) in &trajectories {
            if t >= *start && t < *start + traj.duration_s() {
                return traj.position(t - *start);
            }
        }
        Some(rest)
    });

    // Feed the engine one sample at a time.
    println!("\nstreaming 20 s of live samples…\n");
    println!("{:>8}  event", "t (s)");
    let mut engine = StreamingEngine::new(airfinger, 3)?;
    let mut hinted = false;
    for i in 0..trace.len() {
        let s = [
            trace.channel(0)[i],
            trace.channel(1)[i],
            trace.channel(2)[i],
        ];
        if let Some(event) = engine.push(&s)? {
            println!("{:>8.2}  {event}", i as f64 / 100.0);
            hinted = false;
        }
        // ZEBRA's real-time direction: available before the gesture ends.
        if !hinted {
            if let Some(direction) = engine.live_hint() {
                println!(
                    "{:>8.2}  … live hint: {direction} (gesture still open)",
                    i as f64 / 100.0
                );
                hinted = true;
            }
        }
    }
    if let Some(event) = engine.flush()? {
        println!("{:>8.2}  {event} (flush)", trace.len() as f64 / 100.0);
    }
    println!("\nscripted ground truth:");
    for (start, label) in &script {
        println!("{start:>8.2}  {label}");
    }
    Ok(())
}
