//! The §V-G news-reader scenario: a volunteer browses an article with
//! track-aimed gestures; ZEBRA's direction, velocity and displacement
//! drive a virtual viewport, and the scrolling fluency is rated 1–3 like
//! the paper's user study (average 2.6/3.0).
//!
//! ```text
//! cargo run --release -p airfinger-examples --bin scroll_reader
//! ```

use airfinger_core::events::Recognition;
use airfinger_core::prelude::*;
use airfinger_synth::dataset::{generate_corpus, generate_sample, trial_trajectory, CorpusSpec};
use airfinger_synth::gesture::{Gesture, SampleLabel};
use airfinger_synth::profile::UserProfile;

/// The simulated article: a list of headlines, one per 40 mm of scroll.
const HEADLINES: [&str; 8] = [
    "NIR sensing comes to smartwatches",
    "Micro gestures beat voice input in libraries",
    "Photodiodes: the unsung heroes of HCI",
    "Why your wristband needs a black shield",
    "Otsu's 1979 threshold still going strong",
    "Random forests run fine on microcontrollers",
    "The 20 mm baseline that measures your swipe",
    "Energy budgets: 24 mW and falling",
];

fn main() -> Result<(), AirFingerError> {
    let spec = CorpusSpec {
        users: 3,
        sessions: 2,
        reps: 5,
        ..Default::default()
    };
    println!("training pipeline…");
    let corpus = generate_corpus(&spec);
    let mut airfinger = AirFinger::new(AirFingerConfig::default());
    airfinger.train_on_corpus(&corpus, None)?;

    let profile = UserProfile::sample(0, spec.seed);
    let mut viewport_mm: f64 = 0.0;
    let mut ratings = Vec::new();
    println!("\nbrowsing session: 12 scroll gestures\n");
    for rep in 100..112 {
        let gesture = if rep % 3 == 2 {
            Gesture::ScrollDown
        } else {
            Gesture::ScrollUp
        };
        let sample = generate_sample(&profile, SampleLabel::Gesture(gesture), 0, rep, &spec);
        let event = airfinger.recognize_primary(&sample.trace)?;
        match event {
            Recognition::Track { track, .. } => {
                let d = track.total_displacement_mm();
                viewport_mm = (viewport_mm + d).clamp(0.0, 40.0 * (HEADLINES.len() - 1) as f64);
                let headline = HEADLINES[(viewport_mm / 40.0).round() as usize % HEADLINES.len()];
                // Fluency rating: compare tracked velocity against the
                // trajectory ground truth, as in the repro's Table II.
                let traj = trial_trajectory(&profile, sample.label, 0, rep, &spec);
                let rating = rate(&track, &traj);
                ratings.push(rating);
                println!(
                    "{:>12} | {:+6.1} mm at {:>4.0} mm/s | viewport {:>5.0} mm | {} | rating {}",
                    track.direction.to_string(),
                    d,
                    track.velocity_mm_s,
                    viewport_mm,
                    headline,
                    rating
                );
            }
            other => println!("  (recognized {other} — not a scroll, viewport unchanged)"),
        }
    }
    if !ratings.is_empty() {
        let avg = ratings.iter().sum::<u32>() as f64 / ratings.len() as f64;
        println!("\naverage fluency rating: {avg:.1}/3.0 (paper: 2.6/3.0)");
    }
    Ok(())
}

/// 3 = fluent match, 2 = standard, 1 = noticeably unmatched (paper scale).
fn rate(track: &ScrollTrack, traj: &airfinger_synth::trajectory::Trajectory) -> u32 {
    // Ground-truth mean crossing speed over the central board region.
    let dt = 0.005;
    let steps = (traj.duration_s() / dt) as usize;
    let mut speeds = Vec::new();
    for k in 1..steps {
        let a = traj.position((k - 1) as f64 * dt);
        let b = traj.position(k as f64 * dt);
        if let (Some(a), Some(b)) = (a, b) {
            if a.x.abs() < 0.01 {
                speeds.push((b.x - a.x).abs() / dt * 1000.0);
            }
        }
    }
    if speeds.is_empty() {
        return 2;
    }
    let v_true = speeds.iter().sum::<f64>() / speeds.len() as f64;
    let err = (track.velocity_mm_s / v_true).ln().abs();
    if err < 0.35 {
        3
    } else if err < 0.8 {
        2
    } else {
        1
    }
}
