#!/usr/bin/env python3
"""Validate the perf-observatory surface of a `repro … --metrics` report.

CI runs this after the smoke run (which includes the `perf` experiment)
so the perf contract can never silently change shape:

- the report carries a `latency_ns` section with the nanosecond
  log2-bucket histograms (`engine_push_ns`, `pipeline_stage_ns{stage}`),
  each internally consistent (monotone cumulative-style buckets summing
  to the count, ordered p50 <= p95 <= p99 <= max);
- every `perf_*` metric promised by DESIGN.md §9 is present, with the
  deterministic/timing split implied by the suffix convention;
- the deterministic class is structurally sound (pushes = samples ×
  repeats is checked by the experiment itself; here we check presence,
  integrality, and non-negativity).

Usage: check_perf_report.py REPORT.json
"""

import json
import sys

EXPECTED_COUNTERS = {
    "perf_pushes_total",
    "perf_recognitions_total",
    "perf_rejections_total",
    "perf_repeats_total",
}

EXPECTED_GAUGES = {
    "perf_allocs_per_push",
    "perf_alloc_bytes_per_push",
    "perf_alloc_counting",
    "perf_samples_per_s",
    "perf_push_p50_ns",
    "perf_push_p95_ns",
    "perf_push_p99_ns",
    "perf_push_max_ns",
    "perf_stage_mean_ns",
}

TIMING_SUFFIXES = ("_ns", "_per_s", "_seconds", "_utilization")

# Per-window stages instrumented on the streaming path (DESIGN.md §9).
STAGE_LABELS = {"filter", "features", "rf_predict", "zebra", "distinguish"}


def fail(msg):
    print(f"check_perf_report: {msg}", file=sys.stderr)
    sys.exit(1)


def expect(cond, msg):
    if not cond:
        fail(msg)


def check_latency_section(report):
    expect("latency_ns" in report, "report has no `latency_ns` section")
    hists = report["latency_ns"]
    expect(isinstance(hists, list), "`latency_ns` must be a list")
    names = set()
    for h in hists:
        expect(
            set(h)
            == {
                "name",
                "labels",
                "count",
                "sum_ns",
                "max_ns",
                "p50_ns",
                "p95_ns",
                "p99_ns",
                "buckets",
            },
            f"latency entry keys: {sorted(h)}",
        )
        names.add(h["name"])
        expect(h["count"] >= 0 and h["sum_ns"] >= 0, f"negative tallies: {h}")
        if h["count"] > 0:
            # Quantiles are bucket-upper-edge conservative, so p99 may
            # legitimately exceed the exact max; only the ladder itself
            # must be monotone.
            expect(
                h["p50_ns"] <= h["p95_ns"] <= h["p99_ns"],
                f"quantiles out of order: {h['name']} {h['labels']}",
            )
            expect(h["max_ns"] > 0, f"records but zero max: {h['name']}")
        buckets = h["buckets"]
        expect(isinstance(buckets, list), f"`buckets` must be a list: {h['name']}")
        expect(
            buckets or h["count"] == 0,
            f"histogram with records but no buckets: {h['name']}",
        )
        total = 0
        prev_edge = -1
        for b in buckets:
            expect(set(b) == {"le_ns", "count"}, f"bucket keys: {sorted(b)}")
            expect(b["le_ns"] > prev_edge, f"bucket edges not increasing: {h['name']}")
            prev_edge = b["le_ns"]
            total += b["count"]
        expect(
            total == h["count"],
            f"bucket counts sum to {total}, histogram count is {h['count']}: {h['name']}",
        )
    expect("engine_push_ns" in names, f"`engine_push_ns` missing from {sorted(names)}")
    expect(
        "pipeline_stage_ns" in names,
        f"`pipeline_stage_ns` missing from {sorted(names)}",
    )
    stages = {
        h["labels"].get("stage")
        for h in hists
        if h["name"] == "pipeline_stage_ns"
    }
    expect(
        STAGE_LABELS <= stages,
        f"per-window stages missing from pipeline_stage_ns: {STAGE_LABELS - stages}",
    )


def check_perf_metrics(report):
    metrics = report.get("metrics", {})
    counters = {c["name"]: c for c in metrics.get("counters", []) if c["name"].startswith("perf_")}
    gauges = {}
    for g in metrics.get("gauges", []):
        if g["name"].startswith("perf_"):
            gauges.setdefault(g["name"], []).append(g)

    expect(
        EXPECTED_COUNTERS <= set(counters),
        f"perf counters missing: {EXPECTED_COUNTERS - set(counters)}",
    )
    expect(
        EXPECTED_GAUGES <= set(gauges),
        f"perf gauges missing: {EXPECTED_GAUGES - set(gauges)}",
    )

    for name, c in counters.items():
        expect(not name.endswith(TIMING_SUFFIXES), f"timing-suffixed counter: {name}")
        expect(
            isinstance(c["value"], int) and c["value"] >= 0,
            f"counter {name} must be a non-negative integer: {c['value']}",
        )
    expect(counters["perf_pushes_total"]["value"] > 0, "no pushes measured")
    expect(counters["perf_repeats_total"]["value"] > 0, "no repeats measured")

    for name, entries in gauges.items():
        for g in entries:
            expect(g["value"] >= 0, f"gauge {name} must be non-negative: {g['value']}")
    stages = {g["labels"].get("stage") for g in gauges["perf_stage_mean_ns"]}
    expect(
        stages == STAGE_LABELS,
        f"perf_stage_mean_ns stages {sorted(x for x in stages if x)} != {sorted(STAGE_LABELS)}",
    )
    # The quantile ladder must be ordered just like the histograms
    # (p99 vs max is not comparable: edges are conservative, max exact;
    # and the medians-of-repeats are taken per quantile independently).
    p50 = gauges["perf_push_p50_ns"][0]["value"]
    p95 = gauges["perf_push_p95_ns"][0]["value"]
    p99 = gauges["perf_push_p99_ns"][0]["value"]
    expect(p50 <= p95 <= p99, f"push quantiles out of order: {p50} {p95} {p99}")
    expect(gauges["perf_push_max_ns"][0]["value"] > 0, "zero max push latency")
    expect(gauges["perf_samples_per_s"][0]["value"] > 0, "throughput must be positive")

    # The experiment must actually have run (its wall time is recorded).
    expect(
        any(e["id"] == "perf" and e["seconds"] > 0 for e in report.get("experiments", [])),
        "the `perf` experiment is not in the report's experiment list",
    )


def main(path):
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    check_latency_section(report)
    check_perf_metrics(report)
    hists = len(report["latency_ns"])
    print(f"check_perf_report: OK ({hists} latency histograms, perf metrics complete)")


if __name__ == "__main__":
    if len(sys.argv) != 2:
        fail("usage: check_perf_report.py REPORT.json")
    main(sys.argv[1])
