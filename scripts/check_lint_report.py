#!/usr/bin/env python3
"""Validate the schema of an `airfinger-lint -- check --json` report.

CI runs this after the lint step so that a report the dashboards and
tooling consume can never silently change shape: every key the contract
promises must be present with the promised type, rule codes must come
from the documented eight-family set, and the report must be internally
consistent (`passed` ⇔ no findings, sorted findings, sorted maps).

Usage: check_lint_report.py LINT_REPORT.json
"""

import json
import sys

RULE_CODES = {"D", "P", "S", "U", "C", "H", "R", "M"}


def fail(msg):
    print(f"check_lint_report: {msg}", file=sys.stderr)
    sys.exit(1)


def expect(cond, msg):
    if not cond:
        fail(msg)


def main(path):
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)

    expect(
        set(report)
        == {
            "passed",
            "files_scanned",
            "findings",
            "warnings",
            "unsafe_census",
            "panic_inventory",
            "hot_path",
        },
        f"unexpected top-level keys: {sorted(report)}",
    )
    expect(isinstance(report["passed"], bool), "`passed` must be a bool")
    expect(
        isinstance(report["files_scanned"], int) and report["files_scanned"] > 0,
        "`files_scanned` must be a positive integer",
    )

    findings = report["findings"]
    expect(isinstance(findings, list), "`findings` must be a list")
    for f in findings:
        expect(
            set(f) == {"rule", "file", "line", "message"},
            f"finding keys: {sorted(f)}",
        )
        expect(f["rule"] in RULE_CODES, f"unknown rule code {f['rule']!r}")
        expect(
            isinstance(f["file"], str) and f["file"], "finding `file` must be a path"
        )
        expect(
            isinstance(f["line"], int) and f["line"] >= 1,
            "finding `line` must be 1-indexed",
        )
        expect(
            isinstance(f["message"], str) and f["message"],
            "finding `message` must be non-empty",
        )
    keys = [(f["file"], f["line"], f["rule"]) for f in findings]
    expect(keys == sorted(keys), "findings must be sorted by (file, line, rule)")
    expect(
        report["passed"] == (not findings),
        "`passed` must mirror an empty findings list",
    )

    expect(
        isinstance(report["warnings"], list)
        and all(isinstance(w, str) for w in report["warnings"]),
        "`warnings` must be a list of strings",
    )

    for census in ("unsafe_census", "panic_inventory"):
        m = report[census]
        expect(isinstance(m, dict), f"`{census}` must be an object")
        expect(
            all(isinstance(v, int) and v >= 0 for v in m.values()),
            f"`{census}` values must be non-negative counts",
        )
        expect(list(m) == sorted(m), f"`{census}` keys must be sorted")

    hot = report["hot_path"]
    expect(
        set(hot) == {"reachable_functions", "inventory"},
        f"hot_path keys: {sorted(hot)}",
    )
    expect(
        isinstance(hot["reachable_functions"], int) and hot["reachable_functions"] >= 0,
        "`reachable_functions` must be a count",
    )
    inv = hot["inventory"]
    expect(isinstance(inv, dict), "`hot_path.inventory` must be an object")
    expect(list(inv) == sorted(inv), "`hot_path.inventory` keys must be sorted")
    for key, n in inv.items():
        expect(
            key.split("::")[0].startswith("crates/") and key.count("::") in (1, 2),
            f"inventory key {key!r} must be path::Owner::fn or path::fn",
        )
        expect(isinstance(n, int) and n >= 1, f"budget for {key!r} must be >= 1")

    print(
        f"check_lint_report: ok — {report['files_scanned']} files, "
        f"{len(findings)} finding(s), {hot['reachable_functions']} hot-path fn(s)"
    )


if __name__ == "__main__":
    if len(sys.argv) != 2:
        fail("usage: check_lint_report.py LINT_REPORT.json")
    main(sys.argv[1])
