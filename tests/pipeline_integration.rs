//! End-to-end pipeline integration: train on a synthetic corpus, recognize
//! held-out recordings, and check the paper's qualitative properties.

use airfinger_core::events::Recognition;
use airfinger_core::pipeline::AirFinger;
use airfinger_synth::dataset::{
    generate_corpus, generate_nongesture_corpus, generate_sample, CorpusSpec,
};
use airfinger_synth::gesture::{Gesture, SampleLabel};
use airfinger_synth::profile::UserProfile;
use airfinger_tests::{small_spec, test_config, trained_pipeline};

#[test]
fn held_out_recognition_beats_chance_by_far() {
    let (af, _) = trained_pipeline(13);
    let spec = small_spec(13);
    // Held-out repetitions of known users.
    let mut correct = 0;
    let mut total = 0;
    for user in 0..spec.users {
        let profile = UserProfile::sample(user, spec.seed);
        for g in Gesture::ALL {
            let s = generate_sample(&profile, SampleLabel::Gesture(g), 0, 77, &spec);
            let event = af.recognize_primary(&s.trace).expect("recognize");
            total += 1;
            if event.gesture() == Some(g) {
                correct += 1;
            }
        }
    }
    let acc = correct as f64 / total as f64;
    assert!(acc > 0.6, "held-out accuracy {acc} (chance = 0.125)");
}

#[test]
fn detect_gestures_yield_detect_events() {
    let (af, corpus) = trained_pipeline(12);
    let mut detect_as_detect = 0;
    let mut detect_total = 0;
    for s in corpus.samples() {
        let Some(g) = s.label.gesture() else { continue };
        if g.is_track_aimed() {
            continue;
        }
        detect_total += 1;
        if matches!(
            af.recognize_primary(&s.trace).expect("recognize"),
            Recognition::Detect { .. }
        ) {
            detect_as_detect += 1;
        }
    }
    assert!(
        detect_as_detect as f64 / detect_total as f64 > 0.85,
        "{detect_as_detect}/{detect_total} detect-aimed windows routed to Detect"
    );
}

#[test]
fn scrolls_yield_track_events_with_velocity() {
    let (af, corpus) = trained_pipeline(13);
    let mut tracked = 0;
    let mut scrolls = 0;
    for s in corpus.samples() {
        let Some(g) = s.label.gesture() else { continue };
        if !g.is_track_aimed() {
            continue;
        }
        scrolls += 1;
        if let Recognition::Track { track, .. } = af.recognize_primary(&s.trace).expect("recognize")
        {
            tracked += 1;
            assert!(track.velocity_mm_s > 0.0);
            assert!(track.duration_s > 0.0);
        }
    }
    assert!(scrolls > 0);
    assert!(
        tracked as f64 / scrolls as f64 > 0.7,
        "{tracked}/{scrolls} scrolls produced Track events"
    );
}

#[test]
fn filter_rejects_most_nongestures_and_passes_gestures() {
    let spec = small_spec(14);
    let gestures = generate_corpus(&spec);
    let non = generate_nongesture_corpus(&CorpusSpec {
        reps: 18,
        ..spec.clone()
    });
    let non_train = non.filter(|s| s.rep < 12);
    let non_test = non.filter(|s| s.rep >= 12);
    let mut af = AirFinger::new(test_config());
    af.train_on_corpus(&gestures, Some(&non_train))
        .expect("training");
    assert!(af.has_filter());
    let rejected = non_test
        .samples()
        .iter()
        .filter(|s| {
            matches!(
                af.recognize_primary(&s.trace).expect("recognize"),
                Recognition::Rejected { .. }
            )
        })
        .count();
    assert!(
        rejected * 2 > non_test.len(),
        "rejected {rejected}/{} held-out non-gestures",
        non_test.len()
    );
    // And in-corpus gestures still pass.
    let passed = gestures
        .samples()
        .iter()
        .filter(|s| {
            af.recognize_primary(&s.trace)
                .expect("recognize")
                .is_accepted()
        })
        .count();
    assert!(
        passed * 10 > gestures.len() * 8,
        "passed {passed}/{} gestures",
        gestures.len()
    );
}

#[test]
fn retraining_is_deterministic() {
    let (af1, corpus) = trained_pipeline(15);
    let (af2, _) = trained_pipeline(15);
    for s in corpus.samples().iter().take(16) {
        let a = af1.recognize_primary(&s.trace).expect("recognize");
        let b = af2.recognize_primary(&s.trace).expect("recognize");
        assert_eq!(a.gesture(), b.gesture());
    }
}

#[test]
fn trained_pipeline_survives_serialization() {
    // Train → serialize → deserialize → identical predictions: the
    // train-on-workstation / deploy-on-wearable workflow.
    let (af, corpus) = trained_pipeline(16);
    let json = serde_json::to_string(&af).expect("pipeline serializes");
    let restored: AirFinger = serde_json::from_str(&json).expect("pipeline deserializes");
    assert!(restored.is_trained());
    for s in corpus.samples().iter().take(24) {
        let a = af.recognize_primary(&s.trace).expect("original");
        let b = restored.recognize_primary(&s.trace).expect("restored");
        assert_eq!(a.gesture(), b.gesture());
    }
}

#[test]
fn power_governor_composes_with_streaming_engine() {
    use airfinger_core::engine::StreamingEngine;
    use airfinger_core::power::{PowerGovernor, PowerGovernorConfig, PowerMode};
    use airfinger_nir_sim::SensorLayout;

    let (af, corpus) = trained_pipeline(17);
    let mut engine = StreamingEngine::new(af, 3).expect("engine");
    let mut governor = PowerGovernor::new(
        SensorLayout::paper_prototype(),
        PowerGovernorConfig {
            idle_after_s: 1.0,
            ..Default::default()
        },
    );
    // 10 s idle, then a gesture, then 10 s idle again.
    let gesture = &corpus.samples()[0].trace;
    let idle = [230.0, 231.0, 229.0];
    let mut modes = Vec::new();
    for _ in 0..1000 {
        engine.push(&idle).expect("push");
        governor.tick(0.01, engine.in_gesture());
        modes.push(governor.mode());
    }
    assert_eq!(
        *modes.last().unwrap(),
        PowerMode::Sentinel,
        "idle drops to sentinel"
    );
    for i in 0..gesture.len() {
        let s = [
            gesture.channel(0)[i],
            gesture.channel(1)[i],
            gesture.channel(2)[i],
        ];
        engine.push(&s).expect("push");
        governor.tick(0.01, engine.in_gesture());
    }
    // The gesture woke the governor at some point during the recording.
    assert!(
        governor.savings_fraction() > 0.3,
        "saved {:.2}",
        governor.savings_fraction()
    );
}

#[test]
fn lockin_corpus_flows_through_the_pipeline() {
    use airfinger_synth::dataset::Frontend;
    // Train and recognize entirely on lock-in-demodulated recordings: the
    // §VI front end is drop-in compatible with the rest of the pipeline.
    let spec = CorpusSpec {
        frontend: Frontend::LockIn,
        ..small_spec(18)
    };
    let corpus = generate_corpus(&spec);
    let mut af = AirFinger::new(test_config());
    af.train_on_corpus(&corpus, None)
        .expect("training on lock-in corpus");
    let mut correct = 0;
    for s in corpus.samples().iter().take(32) {
        if af.recognize_primary(&s.trace).expect("recognize").gesture() == s.label.gesture() {
            correct += 1;
        }
    }
    assert!(correct >= 24, "in-sample lock-in accuracy {correct}/32");
}

#[test]
fn enrollment_improves_out_of_population_accuracy() {
    use airfinger_core::adapt::UserAdapter;
    use airfinger_core::train::all_gesture_feature_set;

    let config = test_config();
    let population = generate_corpus(&CorpusSpec {
        users: 3,
        sessions: 2,
        reps: 4,
        ..Default::default()
    });
    let mut af = AirFinger::new(config);
    af.train_on_corpus(&population, None)
        .expect("population training");

    // A user outside the population; enrollment comes from their first
    // session, evaluation from their second.
    let newcomer = generate_corpus(&CorpusSpec {
        users: 1,
        sessions: 2,
        reps: 6,
        seed: 0xCAFE,
        ..Default::default()
    });
    let day1 = newcomer.filter(|s| s.session == 0);
    let day2 = newcomer.filter(|s| s.session == 1);
    let score = |af: &AirFinger| {
        day2.samples()
            .iter()
            .filter(|s| {
                af.recognize_primary(&s.trace).expect("recognize").gesture() == s.label.gesture()
            })
            .count()
    };

    let before = score(&af);
    let mut adapter = UserAdapter::new(all_gesture_feature_set(&population, &config));
    for s in day1.samples().iter().filter(|s| s.rep < 4) {
        let g = s.label.gesture().expect("gesture corpus");
        adapter.enroll_trace(&af, &s.trace, g);
    }
    assert_eq!(adapter.enrolled_count(), 32);
    assert!(adapter.boost() > 1, "up-weighting should engage");
    adapter.apply(&mut af).expect("adaptation");
    let after = score(&af);

    assert!(
        after >= before,
        "enrollment must not hurt the enrolled user: {before} -> {after} of {}",
        day2.len()
    );
    assert!(
        after as f64 >= 0.5 * day2.len() as f64,
        "adapted accuracy too low: {after}/{}",
        day2.len()
    );
}
