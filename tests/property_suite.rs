//! Property-based invariants (proptest) across the DSP, ML, synthesis and
//! tracking layers.

use airfinger_dsp::fft::{fft_in_place, ifft_in_place, Complex};
use airfinger_dsp::sbc::Sbc;
use airfinger_dsp::segment::{Segmenter, SegmenterConfig};
use airfinger_dsp::threshold::{inter_class_variance, otsu_threshold};
use airfinger_features::FeatureExtractor;
use airfinger_synth::gesture::{Gesture, SampleLabel};
use airfinger_synth::trajectory::{MotionParams, Trajectory};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SBC removes any constant offset exactly.
    #[test]
    fn sbc_is_dc_invariant(
        base in proptest::collection::vec(-500.0f64..500.0, 4..120),
        offset in -1e4f64..1e4,
        window in 1usize..6,
    ) {
        let sbc = Sbc::new(window);
        let shifted: Vec<f64> = base.iter().map(|v| v + offset).collect();
        let a = sbc.apply(&base);
        let b = sbc.apply(&shifted);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-6 * (1.0 + x.abs()));
        }
    }

    /// The Otsu threshold lies strictly between the two class means it
    /// induces, and no grid candidate beats its inter-class variance.
    #[test]
    fn otsu_threshold_is_optimal_and_interior(
        lo in proptest::collection::vec(0.0f64..10.0, 8..60),
        hi in proptest::collection::vec(50.0f64..200.0, 8..60),
    ) {
        let mut v = lo.clone();
        v.extend(hi.iter());
        let t = otsu_threshold(&v);
        prop_assert!(t > 0.0 && t < 200.0);
        let best = inter_class_variance(&v, t);
        for k in 0..40 {
            let cand = 5.0 * k as f64;
            prop_assert!(best >= inter_class_variance(&v, cand) - 1e-9);
        }
    }

    /// Segments are sorted, disjoint and within bounds for any input.
    #[test]
    fn segments_are_sorted_disjoint_bounded(
        delta in proptest::collection::vec(0.0f64..100.0, 0..400),
        threshold in 1.0f64..80.0,
        gap in 0usize..20,
        pad in 0usize..10,
    ) {
        let seg = Segmenter::new(SegmenterConfig { merge_gap: gap, min_len: 1, pad });
        let out = seg.segment(&delta, threshold);
        for w in out.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
        for s in &out {
            prop_assert!(s.start < s.end);
            prop_assert!(s.end <= delta.len());
        }
    }

    /// FFT round-trips arbitrary signals (power-of-two lengths).
    #[test]
    fn fft_roundtrip(
        x in proptest::collection::vec(-100.0f64..100.0, 1..65),
    ) {
        let n = x.len().next_power_of_two();
        let mut buf: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
        buf.resize(n, Complex::default());
        fft_in_place(&mut buf).unwrap();
        ifft_in_place(&mut buf).unwrap();
        for (orig, got) in x.iter().zip(&buf) {
            prop_assert!((got.re - orig).abs() < 1e-6);
            prop_assert!(got.im.abs() < 1e-6);
        }
    }

    /// Every Table-I feature is finite on arbitrary (even hostile) input.
    #[test]
    fn features_always_finite(
        x in proptest::collection::vec(-1e6f64..1e6, 0..200),
    ) {
        let e = FeatureExtractor::table1();
        let f = e.extract(&x);
        prop_assert_eq!(f.len(), e.len());
        prop_assert!(f.iter().all(|v| v.is_finite()));
    }

    /// Trajectories stay in a physically plausible box and are smooth.
    #[test]
    fn trajectories_are_bounded_and_smooth(
        gesture_idx in 0usize..8,
        amplitude in 0.5f64..1.6,
        speed in 0.5f64..2.0,
        seed in 0u64..500,
    ) {
        let g = Gesture::from_index(gesture_idx).unwrap();
        let params = MotionParams { amplitude, speed, ..Default::default() };
        let t = Trajectory::generate(SampleLabel::Gesture(g), &params, seed);
        for p in t.points() {
            prop_assert!(p.x.abs() < 0.1, "x = {}", p.x);
            prop_assert!(p.y.abs() < 0.1);
            prop_assert!((0.003..0.2).contains(&p.z), "z = {}", p.z);
        }
        prop_assert!(t.max_step_m() < 0.004, "step {}", t.max_step_m());
    }

    /// Mirroring a trajectory twice is the identity.
    #[test]
    fn trajectory_mirror_involution(
        gesture_idx in 0usize..8,
        seed in 0u64..200,
    ) {
        let g = Gesture::from_index(gesture_idx).unwrap();
        let t = Trajectory::generate(
            SampleLabel::Gesture(g), &MotionParams::default(), seed);
        prop_assert_eq!(t.mirrored().mirrored(), t);
    }
}

/// Displacement properties of a ZEBRA track, checked over a parameter grid
/// (plain test: constructing real tracked windows per proptest case would
/// dominate runtime).
#[test]
fn displacement_odd_and_monotone_over_grid() {
    use airfinger_core::zebra::{ScrollDirection, ScrollTrack, VelocitySource};
    for velocity in [20.0, 80.0, 250.0] {
        for duration in [0.2, 0.6, 1.5] {
            let up = ScrollTrack {
                direction: ScrollDirection::Up,
                velocity_mm_s: velocity,
                velocity_source: VelocitySource::Measured,
                delta_t_s: Some(0.1),
                duration_s: duration,
            };
            let down = ScrollTrack { direction: ScrollDirection::Down, ..up };
            let mut prev = 0.0;
            for k in 0..=20 {
                let t = duration * k as f64 / 10.0; // runs past T
                let d = up.displacement_mm(t);
                assert!(d >= prev);
                assert_eq!(d, -down.displacement_mm(t));
                prev = d;
            }
            assert_eq!(up.displacement_mm(duration), up.total_displacement_mm());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any stratified split partitions the index set exactly.
    #[test]
    fn train_test_split_partitions(
        labels in proptest::collection::vec(0usize..5, 4..120),
        frac in 0.1f64..0.9,
        seed in 0u64..1000,
    ) {
        use airfinger_ml::split::train_test_split;
        let split = train_test_split(&labels, frac, seed);
        let mut all: Vec<usize> = split.train.iter().chain(&split.test).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..labels.len()).collect::<Vec<_>>());
        // Every class with ≥ 2 samples appears in training.
        for class in 0..5 {
            let total = labels.iter().filter(|&&l| l == class).count();
            if total >= 2 {
                prop_assert!(split.train.iter().any(|&i| labels[i] == class));
            }
        }
    }

    /// K-fold test sets tile the index set exactly once.
    #[test]
    fn k_fold_tiles_indices(
        labels in proptest::collection::vec(0usize..4, 6..100),
        k in 2usize..6,
        seed in 0u64..1000,
    ) {
        use airfinger_ml::split::stratified_k_fold;
        let folds = stratified_k_fold(&labels, k, seed);
        prop_assert_eq!(folds.len(), k);
        let mut seen = vec![0usize; labels.len()];
        for f in &folds {
            for &i in &f.test {
                seen[i] += 1;
            }
            for &i in &f.train {
                prop_assert!(!f.test.contains(&i));
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    /// Confusion-matrix identities hold for arbitrary prediction vectors.
    #[test]
    fn confusion_matrix_identities(
        pairs in proptest::collection::vec((0usize..4, 0usize..4), 1..200),
    ) {
        use airfinger_ml::metrics::ConfusionMatrix;
        let truth: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let pred: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        let m = ConfusionMatrix::from_predictions(&truth, &pred, 4);
        prop_assert_eq!(m.total(), pairs.len());
        prop_assert!((0.0..=1.0).contains(&m.accuracy()));
        // Row sums of the normalized matrix are 1 for non-empty rows.
        for (g, row) in m.normalized().iter().enumerate() {
            let has = truth.contains(&g);
            let sum: f64 = row.iter().sum();
            if has {
                prop_assert!((sum - 1.0).abs() < 1e-9);
            } else {
                prop_assert_eq!(sum, 0.0);
            }
            // Per-class F1 is within [0, 1] when defined.
            if let Some(f1) = m.f1(g) {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&f1));
            }
        }
    }

    /// The streaming dynamic threshold always sits within the observed
    /// value range (never above the max or below the floor of the data).
    #[test]
    fn dynamic_threshold_stays_in_range(
        lo in 0.5f64..5.0,
        hi in 50.0f64..5000.0,
        n_lo in 100usize..400,
        n_hi in 30usize..200,
    ) {
        use airfinger_dsp::threshold::DynamicThreshold;
        let mut dt = DynamicThreshold::new(10.0, 1.0);
        for _ in 0..n_lo {
            dt.observe(lo);
        }
        for _ in 0..n_hi {
            dt.observe(hi);
        }
        dt.recalibrate();
        let t = dt.threshold();
        prop_assert!(t >= lo.min(10.0) - 1e-9, "t = {t}");
        prop_assert!(t <= hi, "t = {t} vs hi {hi}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The enrollment up-weight always lands the enrolled mass within one
    /// trial's worth of the requested mix fraction (and never below 1×).
    #[test]
    fn adapter_boost_hits_the_mix_fraction(
        base_rows in 1usize..5000,
        enrolled in 1usize..60,
        mix in 0.05f64..0.9,
    ) {
        use airfinger_core::adapt::UserAdapter;
        use airfinger_core::train::LabeledFeatures;
        use airfinger_synth::gesture::Gesture;

        let mut base = LabeledFeatures::default();
        for i in 0..base_rows {
            base.x.push(vec![i as f64]);
            base.y.push(i % 8);
            base.users.push(0);
            base.sessions.push(0);
            base.reps.push(i);
        }
        let mut a = UserAdapter::new(base).with_mix(mix);
        for i in 0..enrolled {
            a.enroll_features(vec![i as f64], Gesture::ALL[i % 8]);
        }
        let boost = a.boost();
        prop_assert!(boost >= 1);
        let mass = (boost * enrolled) as f64;
        let ideal = mix / (1.0 - mix) * base_rows as f64;
        if ideal / enrolled as f64 >= 0.5 {
            // Rounding to an integer boost moves the mass by at most half
            // a trial-count in either direction…
            prop_assert!((mass - ideal).abs() <= 0.5 * enrolled as f64 + 1e-9,
                "mass {mass} vs ideal {ideal} (boost {boost})");
        } else {
            // …unless the floor of 1× dominates (tiny bases), where each
            // trial simply counts once.
            prop_assert_eq!(boost, 1);
        }
        if boost > 1 {
            let frac = mass / (mass + base_rows as f64);
            prop_assert!((frac - mix).abs() < 0.5 * enrolled as f64 / (mass + base_rows as f64) + 0.02,
                "fraction {frac} vs mix {mix}");
        }
    }
}
