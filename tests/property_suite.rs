//! Property-based invariants across the DSP, ML, synthesis and tracking
//! layers, checked over seeded random case loops (the registry-free stand-in
//! for a proptest harness: fixed seeds keep every run reproducible).

use airfinger_dsp::fft::{fft_in_place, ifft_in_place, Complex};
use airfinger_dsp::sbc::Sbc;
use airfinger_dsp::segment::{Segmenter, SegmenterConfig};
use airfinger_dsp::threshold::{inter_class_variance, otsu_threshold};
use airfinger_features::FeatureExtractor;
use airfinger_synth::gesture::{Gesture, SampleLabel};
use airfinger_synth::trajectory::{MotionParams, Trajectory};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 48;

fn rng_for(test: u64, case: usize) -> StdRng {
    StdRng::seed_from_u64(test.wrapping_mul(0x9e37_79b9_7f4a_7c15) + case as u64)
}

fn random_vec(rng: &mut StdRng, len: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

/// SBC removes any constant offset exactly.
#[test]
fn sbc_is_dc_invariant() {
    for case in 0..CASES {
        let mut rng = rng_for(1, case);
        let len = rng.gen_range(4..120);
        let base = random_vec(&mut rng, len, -500.0, 500.0);
        let offset = rng.gen_range(-1e4..1e4);
        let window = rng.gen_range(1..6usize);
        let sbc = Sbc::new(window);
        let shifted: Vec<f64> = base.iter().map(|v| v + offset).collect();
        let a = sbc.apply(&base);
        let b = sbc.apply(&shifted);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6 * (1.0 + x.abs()), "case {case}");
        }
    }
}

/// The Otsu threshold lies strictly between the two class means it induces,
/// and no grid candidate beats its inter-class variance.
#[test]
fn otsu_threshold_is_optimal_and_interior() {
    for case in 0..CASES {
        let mut rng = rng_for(2, case);
        let n_lo = rng.gen_range(8..60);
        let n_hi = rng.gen_range(8..60);
        let mut v = random_vec(&mut rng, n_lo, 0.0, 10.0);
        v.extend(random_vec(&mut rng, n_hi, 50.0, 200.0));
        let t = otsu_threshold(&v);
        assert!(t > 0.0 && t < 200.0, "case {case}: t = {t}");
        let best = inter_class_variance(&v, t);
        for k in 0..40 {
            let cand = 5.0 * k as f64;
            assert!(
                best >= inter_class_variance(&v, cand) - 1e-9,
                "case {case}: candidate {cand} beats Otsu"
            );
        }
    }
}

/// Segments are sorted, disjoint and within bounds for any input.
#[test]
fn segments_are_sorted_disjoint_bounded() {
    for case in 0..CASES {
        let mut rng = rng_for(3, case);
        let len = rng.gen_range(0..400);
        let delta = random_vec(&mut rng, len, 0.0, 100.0);
        let threshold = rng.gen_range(1.0..80.0);
        let gap = rng.gen_range(0..20usize);
        let pad = rng.gen_range(0..10usize);
        let seg = Segmenter::new(SegmenterConfig {
            merge_gap: gap,
            min_len: 1,
            pad,
        });
        let out = seg.segment(&delta, threshold);
        for w in out.windows(2) {
            assert!(w[0].end <= w[1].start, "case {case}");
        }
        for s in &out {
            assert!(s.start < s.end, "case {case}");
            assert!(s.end <= delta.len(), "case {case}");
        }
    }
}

/// FFT round-trips arbitrary signals (power-of-two lengths).
#[test]
fn fft_roundtrip() {
    for case in 0..CASES {
        let mut rng = rng_for(4, case);
        let len = rng.gen_range(1..65);
        let x = random_vec(&mut rng, len, -100.0, 100.0);
        let n = x.len().next_power_of_two();
        let mut buf: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
        buf.resize(n, Complex::default());
        fft_in_place(&mut buf).unwrap();
        ifft_in_place(&mut buf).unwrap();
        for (orig, got) in x.iter().zip(&buf) {
            assert!((got.re - orig).abs() < 1e-6, "case {case}");
            assert!(got.im.abs() < 1e-6, "case {case}");
        }
    }
}

/// Every Table-I feature is finite on arbitrary (even hostile) input.
#[test]
fn features_always_finite() {
    let e = FeatureExtractor::table1();
    for case in 0..CASES {
        let mut rng = rng_for(5, case);
        let len = rng.gen_range(0..200);
        let x = random_vec(&mut rng, len, -1e6, 1e6);
        let f = e.extract(&x);
        assert_eq!(f.len(), e.len(), "case {case}");
        assert!(f.iter().all(|v| v.is_finite()), "case {case}");
    }
}

/// Trajectories stay in a physically plausible box and are smooth.
#[test]
fn trajectories_are_bounded_and_smooth() {
    for case in 0..CASES {
        let mut rng = rng_for(6, case);
        let g = Gesture::from_index(rng.gen_range(0..8)).unwrap();
        let amplitude = rng.gen_range(0.5..1.6);
        let speed = rng.gen_range(0.5..2.0);
        let seed = rng.gen_range(0..500u64);
        let params = MotionParams {
            amplitude,
            speed,
            ..Default::default()
        };
        let t = Trajectory::generate(SampleLabel::Gesture(g), &params, seed);
        for p in t.points() {
            assert!(p.x.abs() < 0.1, "case {case}: x = {}", p.x);
            assert!(p.y.abs() < 0.1, "case {case}: y = {}", p.y);
            assert!((0.003..0.2).contains(&p.z), "case {case}: z = {}", p.z);
        }
        assert!(
            t.max_step_m() < 0.004,
            "case {case}: step {}",
            t.max_step_m()
        );
    }
}

/// Mirroring a trajectory twice is the identity.
#[test]
fn trajectory_mirror_involution() {
    for case in 0..CASES {
        let mut rng = rng_for(7, case);
        let g = Gesture::from_index(rng.gen_range(0..8)).unwrap();
        let seed = rng.gen_range(0..200u64);
        let t = Trajectory::generate(SampleLabel::Gesture(g), &MotionParams::default(), seed);
        assert_eq!(t.mirrored().mirrored(), t, "case {case}");
    }
}

/// Displacement properties of a ZEBRA track, checked over a parameter grid
/// (constructing real tracked windows per random case would dominate
/// runtime).
#[test]
fn displacement_odd_and_monotone_over_grid() {
    use airfinger_core::zebra::{ScrollDirection, ScrollTrack, VelocitySource};
    for velocity in [20.0, 80.0, 250.0] {
        for duration in [0.2, 0.6, 1.5] {
            let up = ScrollTrack {
                direction: ScrollDirection::Up,
                velocity_mm_s: velocity,
                velocity_source: VelocitySource::Measured,
                delta_t_s: Some(0.1),
                duration_s: duration,
            };
            let down = ScrollTrack {
                direction: ScrollDirection::Down,
                ..up
            };
            let mut prev = 0.0;
            for k in 0..=20 {
                let t = duration * k as f64 / 10.0; // runs past T
                let d = up.displacement_mm(t);
                assert!(d >= prev);
                assert_eq!(d, -down.displacement_mm(t));
                prev = d;
            }
            assert_eq!(up.displacement_mm(duration), up.total_displacement_mm());
        }
    }
}

/// Any stratified split partitions the index set exactly.
#[test]
fn train_test_split_partitions() {
    use airfinger_ml::split::train_test_split;
    for case in 0..CASES {
        let mut rng = rng_for(8, case);
        let len = rng.gen_range(4..120usize);
        let labels: Vec<usize> = (0..len).map(|_| rng.gen_range(0..5usize)).collect();
        let frac = rng.gen_range(0.1..0.9);
        let seed = rng.gen_range(0..1000u64);
        let split = train_test_split(&labels, frac, seed);
        let mut all: Vec<usize> = split.train.iter().chain(&split.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..labels.len()).collect::<Vec<_>>(), "case {case}");
        // Every class with ≥ 2 samples appears in training.
        for class in 0..5 {
            let total = labels.iter().filter(|&&l| l == class).count();
            if total >= 2 {
                assert!(
                    split.train.iter().any(|&i| labels[i] == class),
                    "case {case}"
                );
            }
        }
    }
}

/// K-fold test sets tile the index set exactly once.
#[test]
fn k_fold_tiles_indices() {
    use airfinger_ml::split::stratified_k_fold;
    for case in 0..CASES {
        let mut rng = rng_for(9, case);
        let len = rng.gen_range(6..100usize);
        let labels: Vec<usize> = (0..len).map(|_| rng.gen_range(0..4usize)).collect();
        let k = rng.gen_range(2..6usize);
        let seed = rng.gen_range(0..1000u64);
        let folds = stratified_k_fold(&labels, k, seed);
        assert_eq!(folds.len(), k, "case {case}");
        let mut seen = vec![0usize; labels.len()];
        for f in &folds {
            for &i in &f.test {
                seen[i] += 1;
            }
            for &i in &f.train {
                assert!(!f.test.contains(&i), "case {case}");
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "case {case}");
    }
}

/// Confusion-matrix identities hold for arbitrary prediction vectors.
#[test]
fn confusion_matrix_identities() {
    use airfinger_ml::metrics::ConfusionMatrix;
    for case in 0..CASES {
        let mut rng = rng_for(10, case);
        let len = rng.gen_range(1..200);
        let truth: Vec<usize> = (0..len).map(|_| rng.gen_range(0..4usize)).collect();
        let pred: Vec<usize> = (0..len).map(|_| rng.gen_range(0..4usize)).collect();
        let m = ConfusionMatrix::from_predictions(&truth, &pred, 4);
        assert_eq!(m.total(), len, "case {case}");
        assert!((0.0..=1.0).contains(&m.accuracy()), "case {case}");
        // Row sums of the normalized matrix are 1 for non-empty rows.
        for (g, row) in m.normalized().iter().enumerate() {
            let has = truth.contains(&g);
            let sum: f64 = row.iter().sum();
            if has {
                assert!((sum - 1.0).abs() < 1e-9, "case {case}");
            } else {
                assert_eq!(sum, 0.0, "case {case}");
            }
            // Per-class F1 is within [0, 1] when defined.
            if let Some(f1) = m.f1(g) {
                assert!((0.0..=1.0 + 1e-12).contains(&f1), "case {case}");
            }
        }
    }
}

/// The streaming dynamic threshold always sits within the observed value
/// range (never above the max or below the floor of the data).
#[test]
fn dynamic_threshold_stays_in_range() {
    use airfinger_dsp::threshold::DynamicThreshold;
    for case in 0..CASES {
        let mut rng = rng_for(11, case);
        let lo = rng.gen_range(0.5..5.0);
        let hi = rng.gen_range(50.0..5000.0);
        let n_lo = rng.gen_range(100..400usize);
        let n_hi = rng.gen_range(30..200usize);
        let mut dt = DynamicThreshold::new(10.0, 1.0);
        for _ in 0..n_lo {
            dt.observe(lo);
        }
        for _ in 0..n_hi {
            dt.observe(hi);
        }
        dt.recalibrate();
        let t = dt.threshold();
        assert!(t >= lo.min(10.0) - 1e-9, "case {case}: t = {t}");
        assert!(t <= hi, "case {case}: t = {t} vs hi {hi}");
    }
}

/// The enrollment up-weight always lands the enrolled mass within one
/// trial's worth of the requested mix fraction (and never below 1×).
#[test]
fn adapter_boost_hits_the_mix_fraction() {
    use airfinger_core::adapt::UserAdapter;
    use airfinger_core::train::LabeledFeatures;

    for case in 0..64 {
        let mut rng = rng_for(12, case);
        let base_rows = rng.gen_range(1..5000);
        let enrolled = rng.gen_range(1..60usize);
        let mix = rng.gen_range(0.05..0.9);

        let mut base = LabeledFeatures::default();
        for i in 0..base_rows {
            base.x.push(vec![i as f64]);
            base.y.push(i % 8);
            base.users.push(0);
            base.sessions.push(0);
            base.reps.push(i);
        }
        let mut a = UserAdapter::new(base).with_mix(mix);
        for i in 0..enrolled {
            a.enroll_features(vec![i as f64], Gesture::ALL[i % 8]);
        }
        let boost = a.boost();
        assert!(boost >= 1, "case {case}");
        let mass = (boost * enrolled) as f64;
        let ideal = mix / (1.0 - mix) * base_rows as f64;
        if ideal / enrolled as f64 >= 0.5 {
            // Rounding to an integer boost moves the mass by at most half
            // a trial-count in either direction…
            assert!(
                (mass - ideal).abs() <= 0.5 * enrolled as f64 + 1e-9,
                "case {case}: mass {mass} vs ideal {ideal} (boost {boost})"
            );
        } else {
            // …unless the floor of 1× dominates (tiny bases), where each
            // trial simply counts once.
            assert_eq!(boost, 1, "case {case}");
        }
        if boost > 1 {
            let frac = mass / (mass + base_rows as f64);
            assert!(
                (frac - mix).abs() < 0.5 * enrolled as f64 / (mass + base_rows as f64) + 0.02,
                "case {case}: fraction {frac} vs mix {mix}"
            );
        }
    }
}
