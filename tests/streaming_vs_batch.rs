//! Streaming engine vs batch recognition: the real-time engine must find
//! the same gestures the offline processor does on a long multi-gesture
//! stream.

use airfinger_core::engine::StreamingEngine;
use airfinger_nir_sim::sampler::{Sampler, Scene};
use airfinger_nir_sim::trace::RssTrace;
use airfinger_nir_sim::SensorLayout;
use airfinger_synth::gesture::{Gesture, SampleLabel};
use airfinger_synth::profile::UserProfile;
use airfinger_synth::trajectory::Trajectory;
use airfinger_tests::{small_spec, trained_pipeline};

/// A 12-second stream with three scripted gestures.
fn scripted_stream(seed: u64) -> (RssTrace, Vec<(f64, Gesture)>) {
    let spec = small_spec(seed);
    let profile = UserProfile::sample(0, spec.seed);
    let script = [
        (1.0, Gesture::Click),
        (4.0, Gesture::Circle),
        (8.0, Gesture::ScrollUp),
    ];
    let trajectories: Vec<(f64, Trajectory)> = script
        .iter()
        .enumerate()
        .map(|(i, (start, g))| {
            let params = profile.trial_params(SampleLabel::Gesture(*g), 0, 900 + i, spec.seed);
            (
                *start,
                Trajectory::generate(SampleLabel::Gesture(*g), &params, seed + i as u64),
            )
        })
        .collect();
    let rest = profile.base;
    let sampler = Sampler::new(Scene::new(SensorLayout::paper_prototype()), 100.0);
    let trace = sampler.sample(12.0, seed, |t| {
        for (start, traj) in &trajectories {
            if t >= *start && t < *start + traj.duration_s() {
                return traj.position(t - *start);
            }
        }
        Some(rest)
    });
    (trace, script.to_vec())
}

#[test]
fn streaming_finds_the_scripted_gestures() {
    let (af, _) = trained_pipeline(31);
    let (trace, script) = scripted_stream(31);
    let mut engine = StreamingEngine::new(af, 3).expect("engine builds");
    let mut events = Vec::new();
    for i in 0..trace.len() {
        let s = [
            trace.channel(0)[i],
            trace.channel(1)[i],
            trace.channel(2)[i],
        ];
        if let Some(ev) = engine.push(&s).expect("push") {
            events.push((i, ev));
        }
    }
    if let Some(ev) = engine.flush().expect("flush") {
        events.push((trace.len(), ev));
    }
    // Every scripted gesture overlaps some emitted event's segment.
    for (start, g) in &script {
        let s0 = (start * 100.0) as usize;
        let s1 = s0 + 150;
        let hit = events.iter().any(|(_, ev)| {
            let seg = ev.segment();
            seg.start < s1 && s0 < seg.end
        });
        assert!(hit, "{g} at {start}s not covered by any event: {events:?}");
    }
    // No event storm: at most two events per scripted gesture.
    assert!(
        events.len() <= 2 * script.len(),
        "too many events: {}",
        events.len()
    );
}

#[test]
fn streaming_segments_align_with_batch_segments() {
    let (af, _) = trained_pipeline(32);
    let (trace, _) = scripted_stream(32);
    let batch_windows = af.processor().process(&trace);
    let mut engine = StreamingEngine::new(af.clone(), 3).expect("engine builds");
    let mut stream_segments = Vec::new();
    for i in 0..trace.len() {
        let s = [
            trace.channel(0)[i],
            trace.channel(1)[i],
            trace.channel(2)[i],
        ];
        if let Some(ev) = engine.push(&s).expect("push") {
            stream_segments.push(ev.segment());
        }
    }
    if let Some(ev) = engine.flush().expect("flush") {
        stream_segments.push(ev.segment());
    }
    // Each batch window overlaps a streaming segment (thresholds differ —
    // batch Otsu vs streaming accumulator — so boundaries may shift).
    let mut matched = 0;
    for w in &batch_windows {
        if stream_segments
            .iter()
            .any(|s| s.start < w.segment.end && w.segment.start < s.end)
        {
            matched += 1;
        }
    }
    assert!(
        matched * 3 >= batch_windows.len() * 2,
        "only {matched}/{} batch windows matched by streaming",
        batch_windows.len()
    );
}

#[test]
fn quiet_stream_stays_quiet() {
    let (af, _) = trained_pipeline(33);
    let mut engine = StreamingEngine::new(af, 3).expect("engine builds");
    for _ in 0..1500 {
        assert!(engine.push(&[250.0, 251.0, 249.0]).expect("push").is_none());
    }
    assert!(engine.flush().expect("flush").is_none());
}
