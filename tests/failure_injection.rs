//! Failure injection: the pipeline must degrade gracefully — never panic,
//! never emit nonsense — on pathological inputs: saturated ADCs, dead
//! photodiodes, constant traces, spike storms, direct IR remotes.

use airfinger_core::events::Recognition;
use airfinger_nir_sim::ambient::Interference;
use airfinger_nir_sim::noise::NoiseModel;
use airfinger_nir_sim::sampler::{Sampler, Scene};
use airfinger_nir_sim::trace::RssTrace;
use airfinger_nir_sim::{SensorLayout, Vec3};
use airfinger_tests::trained_pipeline;

#[test]
fn saturated_trace_does_not_panic() {
    let (af, _) = trained_pipeline(61);
    let trace = RssTrace::from_channels(vec![vec![1023.0; 300]; 3], 100.0);
    let events = af.recognize_trace(&trace).expect("no error on saturation");
    assert!(events.is_empty(), "a flat saturated trace holds no gesture");
}

#[test]
fn all_zero_trace_does_not_panic() {
    let (af, _) = trained_pipeline(62);
    let trace = RssTrace::from_channels(vec![vec![0.0; 300]; 3], 100.0);
    assert!(af.recognize_trace(&trace).expect("no error").is_empty());
}

#[test]
fn tiny_trace_does_not_panic() {
    let (af, _) = trained_pipeline(63);
    let trace = RssTrace::from_channels(vec![vec![100.0]; 3], 100.0);
    let _ = af
        .recognize_trace(&trace)
        .expect("no error on 1-sample trace");
    // primary_window falls back to the whole (1-sample) trace.
    let _ = af.recognize_primary(&trace).expect("no error");
}

#[test]
fn dead_photodiode_still_recognizes_something() {
    // Channel 2 stuck at zero (broken wire): the pipeline must not panic
    // and should still segment activity on the live channels.
    let (af, corpus) = trained_pipeline(64);
    let sample = &corpus.samples()[2];
    let mut channels = sample.trace.channels().to_vec();
    channels[2] = vec![0.0; channels[2].len()];
    let trace = RssTrace::from_channels(channels, sample.trace.sample_rate_hz());
    let events = af
        .recognize_trace(&trace)
        .expect("no error with dead channel");
    // Whatever the classification, every event must carry a valid segment.
    for e in &events {
        let seg = e.segment();
        assert!(seg.end <= trace.len() && seg.start < seg.end);
    }
}

#[test]
fn spike_storm_is_mostly_filtered() {
    // Hardware spike storm on an idle scene: 30 spikes in 10 s. Isolated
    // spikes are debounced away; only chance clusters within the t_e merge
    // window can survive, so far fewer windows than spikes may appear, and
    // every surviving window must be brief.
    let (af, _) = trained_pipeline(65);
    let scene = Scene::new(SensorLayout::paper_prototype()).with_noise(NoiseModel {
        shot_coeff: 0.0,
        thermal_sigma: 0.5,
        spike_rate_hz: 3.0,
        spike_amplitude: 120.0,
    });
    let trace = Sampler::new(scene, 100.0).sample(10.0, 65, |_| Some(Vec3::new(0.0, 0.0, 0.02)));
    let events = af.recognize_trace(&trace).expect("no error under spikes");
    assert!(
        events.len() <= 12,
        "spike storm produced {} windows",
        events.len()
    );
    for e in &events {
        assert!(
            e.segment().len() < 100,
            "spike window too long: {:?}",
            e.segment()
        );
    }
}

#[test]
fn direct_ir_remote_errors_are_bounded() {
    // The paper: a directly-pointed remote "will cause recognition
    // errors" — we require graceful behaviour, not correctness: no panic,
    // and segments within bounds.
    let (af, _) = trained_pipeline(66);
    let scene = Scene::new(SensorLayout::paper_prototype())
        .with_interference(Interference::ir_remote_direct());
    let trace = Sampler::new(scene, 100.0).sample(10.0, 66, |_| Some(Vec3::new(0.0, 0.0, 0.02)));
    let events = af
        .recognize_trace(&trace)
        .expect("no error under remote bursts");
    for e in &events {
        assert!(e.segment().end <= trace.len());
    }
}

#[test]
fn nan_free_features_even_on_adversarial_windows() {
    use airfinger_core::detect::prepare_features;
    use airfinger_core::processing::GestureWindow;
    use airfinger_dsp::segment::Segment;
    use airfinger_features::FeatureExtractor;
    let e = FeatureExtractor::table1();
    for channels in [
        vec![vec![0.0; 3]; 3],                                   // nearly empty
        vec![vec![1023.0; 50]; 3],                               // constant saturation
        vec![vec![0.0; 200], vec![1e12; 200], vec![-1e12; 200]], // absurd values
    ] {
        let n = channels[0].len();
        let w = GestureWindow {
            segment: Segment::new(0, n),
            raw: channels.clone(),
            delta: channels,
            thresholds: vec![10.0; 3],
            sample_rate_hz: 100.0,
        };
        let f = prepare_features(&e, &w);
        assert!(f.iter().all(|v| v.is_finite()), "non-finite feature");
    }
}

#[test]
fn rejected_windows_never_classify() {
    // A pipeline with a filter must emit Rejected (not a bogus gesture)
    // for obviously non-gestural bursts.
    use airfinger_core::pipeline::AirFinger;
    use airfinger_synth::dataset::{generate_corpus, generate_nongesture_corpus, CorpusSpec};
    use airfinger_tests::{small_spec, test_config};
    let spec = small_spec(67);
    let gestures = generate_corpus(&spec);
    let non = generate_nongesture_corpus(&CorpusSpec { reps: 12, ..spec });
    let mut af = AirFinger::new(test_config());
    af.train_on_corpus(&gestures, Some(&non)).expect("training");
    let scene = Scene::new(SensorLayout::paper_prototype());
    // A slow, large hand wave far above the board (out-of-band motion).
    let trace = Sampler::new(scene, 100.0).sample(4.0, 67, |t| {
        Some(Vec3::new(0.05 * (t * 0.8).sin(), 0.0, 0.06))
    });
    let events = af.recognize_trace(&trace).expect("no error");
    let accepted = events.iter().filter(|e| e.is_accepted()).count();
    let rejected = events
        .iter()
        .filter(|e| matches!(e, Recognition::Rejected { .. }))
        .count();
    assert!(
        accepted <= rejected + 1,
        "wave accepted {accepted} times vs rejected {rejected}"
    );
}
