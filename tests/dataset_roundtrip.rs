//! Dataset serialization, determinism and trajectory/ground-truth
//! consistency across the synth and nir-sim crates.

use airfinger_synth::dataset::{
    generate_corpus, generate_sample, trial_trajectory, Corpus, CorpusSpec,
};
use airfinger_synth::gesture::{Gesture, SampleLabel};
use airfinger_synth::profile::UserProfile;
use airfinger_tests::small_spec;

#[test]
fn corpus_json_roundtrip_preserves_everything() {
    let spec = CorpusSpec {
        users: 1,
        sessions: 1,
        reps: 2,
        gestures: vec![Gesture::Click, Gesture::ScrollUp],
        ..small_spec(21)
    };
    let corpus = generate_corpus(&spec);
    let mut buf = Vec::new();
    corpus.write_json(&mut buf).expect("serialize");
    let back = Corpus::read_json(&buf[..]).expect("deserialize");
    assert_eq!(back, corpus);
    assert_eq!(back.samples()[0].trace.sample_rate_hz(), 100.0);
}

#[test]
fn corpus_generation_is_fully_deterministic() {
    let spec = small_spec(22);
    assert_eq!(generate_corpus(&spec), generate_corpus(&spec));
}

#[test]
fn different_seeds_give_different_corpora() {
    let a = generate_corpus(&small_spec(23));
    let b = generate_corpus(&small_spec(24));
    assert_ne!(a, b);
}

#[test]
fn trial_trajectory_matches_sample_duration() {
    // The exposed ground-truth trajectory must describe the same trial the
    // recorded trace came from: equal durations (to sampling resolution).
    let spec = small_spec(25);
    let profile = UserProfile::sample(0, spec.seed);
    for g in Gesture::ALL {
        let label = SampleLabel::Gesture(g);
        let s = generate_sample(&profile, label, 0, 0, &spec);
        let traj = trial_trajectory(&profile, label, 0, 0, &spec);
        let trace_dur = s.trace.len() as f64 / s.trace.sample_rate_hz();
        assert!(
            (trace_dur - traj.duration_s()).abs() <= 0.02,
            "{g}: trace {trace_dur:.2}s vs trajectory {:.2}s",
            traj.duration_s()
        );
    }
}

#[test]
fn scroll_ground_truth_crosses_the_board() {
    let spec = small_spec(26);
    let profile = UserProfile::sample(1, spec.seed);
    let traj = trial_trajectory(
        &profile,
        SampleLabel::Gesture(Gesture::ScrollUp),
        0,
        0,
        &spec,
    );
    let x0 = traj.position(0.0).expect("start").x;
    let x1 = traj.position(traj.duration_s()).expect("end").x;
    assert!(x0 < -0.015 && x1 > x0 + 0.015, "sweep {x0:.3} → {x1:.3}");
}

#[test]
fn filters_partition_the_corpus() {
    let corpus = generate_corpus(&small_spec(27));
    let detect = corpus.detect_aimed();
    let track = corpus.track_aimed();
    assert_eq!(detect.len() + track.len(), corpus.len());
    assert!(detect
        .samples()
        .iter()
        .all(|s| s.label.gesture().is_some_and(|g| !g.is_track_aimed())));
    assert!(track
        .samples()
        .iter()
        .all(|s| s.label.gesture().is_some_and(|g| g.is_track_aimed())));
}
