//! The live scrape surface for the event journal, end to end: a real
//! [`ScrapeServer`] on an ephemeral loopback port must serve `/events`
//! with working `?after=` cursor semantics against the process-global
//! journal, answer garbage requests with explicit 400/405/404 bodies,
//! and fold the journal's state into `/health`.
//!
//! The global journal is process-wide, so every assertion tolerates
//! events published by other tests in this binary: lookups go through
//! marker events with reserved session ids rather than absolute counts.

use airfinger_obs::events::{global, Event, EventKind};
use airfinger_obs::ScrapeServer;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

fn get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
        .expect("request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response");
    response
}

fn raw(addr: SocketAddr, request: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request).expect("request");
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    response
}

/// Publish a recognizable marker into the global journal and return its
/// assigned sequence number.
fn publish_marker(session: u64) -> u64 {
    global().publish(Event {
        seq: 0,
        session_seq: 1,
        sample: 42,
        session: Some(session),
        shard: Some(session % 4),
        window: Some(3),
        kind: EventKind::SessionAdmitted,
    })
}

#[test]
fn events_endpoint_tails_the_global_journal() {
    let server = ScrapeServer::start("127.0.0.1:0").expect("bind loopback");
    let before = global().head_seq();
    let seq = publish_marker(990_001);

    // The plain tail carries the marker with all correlation fields.
    let response = get(server.addr(), "/events");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains("application/json"), "{response}");
    assert!(
        response.contains("\"session\": 990001"),
        "marker event missing from tail: {response}"
    );
    assert!(response.contains("airfinger-events-v1"), "{response}");

    // A cursor just before the marker returns it; a cursor at or past
    // the head returns an empty (but schema-valid) envelope.
    let after = get(server.addr(), &format!("/events?after={before}"));
    assert!(after.contains("\"session\": 990001"), "{after}");
    let beyond = get(server.addr(), &format!("/events?after={}", seq + 100_000));
    assert!(beyond.starts_with("HTTP/1.1 200 OK"), "{beyond}");
    assert!(
        !beyond.contains("\"session\": 990001"),
        "cursor past head must not replay events: {beyond}"
    );
    server.stop();
}

#[test]
fn events_endpoint_rejects_malformed_cursors() {
    let server = ScrapeServer::start("127.0.0.1:0").expect("bind loopback");
    let bad_after = get(server.addr(), "/events?after=banana");
    assert!(bad_after.starts_with("HTTP/1.1 400"), "{bad_after}");
    assert!(bad_after.contains("sequence number"), "{bad_after}");
    let bad_limit = get(server.addr(), "/events?limit=-3");
    assert!(bad_limit.starts_with("HTTP/1.1 400"), "{bad_limit}");
    server.stop();
}

#[test]
fn error_paths_name_themselves() {
    let server = ScrapeServer::start("127.0.0.1:0").expect("bind loopback");
    let missing = get(server.addr(), "/no-such-endpoint");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
    assert!(
        missing.contains("404 not found: /no-such-endpoint"),
        "404 body must name the unknown path: {missing}"
    );
    assert!(
        missing.contains("/events"),
        "404 body must list the known paths: {missing}"
    );

    let post = raw(server.addr(), b"POST /events HTTP/1.1\r\n\r\n");
    assert!(post.starts_with("HTTP/1.1 405"), "{post}");
    assert!(post.contains("Allow: GET"), "{post}");

    let truncated = raw(server.addr(), b"GET\r\n\r\n");
    assert!(truncated.starts_with("HTTP/1.1 400"), "{truncated}");
    server.stop();
}

#[test]
fn health_reports_journal_state() {
    let server = ScrapeServer::start("127.0.0.1:0").expect("bind loopback");
    publish_marker(990_002);
    let response = get(server.addr(), "/health");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    let body = response
        .split("\r\n\r\n")
        .nth(1)
        .expect("health has a body");
    let parsed = serde_json::from_str::<serde::Value>(body).expect("health JSON parses");
    let events = parsed
        .as_object()
        .and_then(|o| o.get("events"))
        .and_then(serde::Value::as_object)
        .expect("health carries an events section");
    let head = events
        .get("head")
        .and_then(serde::Value::as_f64)
        .expect("events.head present");
    assert!(head >= 1.0, "head reflects the published marker");
    for key in ["retained", "dropped", "capacity"] {
        assert!(events.get(key).is_some(), "events.{key} present in {body}");
    }
    server.stop();
}
