//! Allocation accounting: this binary installs the counting allocator
//! (each integration test is its own process, so the `#[global_allocator]`
//! here affects nobody else) and pins two properties:
//!
//! 1. the wrapper actually counts — heap activity moves the per-thread
//!    and process totals, and `publish()` mirrors them into the registry
//!    exactly once per delta; and
//! 2. the streaming hot path has a bounded steady-state allocation rate:
//!    quiet pushes on a warmed-up engine must average well under one
//!    allocation event per sample. This is the ratchet for the roadmap's
//!    zero-alloc hot-path goal — tighten the ceiling as the path improves,
//!    never loosen it to make a regression pass.

use airfinger_core::config::AirFingerConfig;
use airfinger_core::engine::StreamingEngine;
use airfinger_core::pipeline::AirFinger;
use airfinger_obs::alloc;
use airfinger_synth::dataset::generate_corpus;
use airfinger_tests::small_spec;

#[global_allocator]
static ALLOC: airfinger_obs::CountingAlloc = airfinger_obs::CountingAlloc::new();

/// Steady-state ceiling: allocation events per quiet push, averaged over
/// the measurement window. The current path is allocation-free between
/// window closes; the headroom below 0.05 covers incidental one-off
/// growth (a lazily-resized internal buffer) without letting a per-push
/// allocation (rate 1.0) sneak in.
const STEADY_STATE_ALLOCS_PER_PUSH: f64 = 0.05;

#[test]
fn counting_allocator_observes_heap_activity() {
    assert!(alloc::counting(), "global allocator wrapper not installed");
    let before = alloc::thread_stats();
    let v: Vec<u8> = Vec::with_capacity(4096);
    let delta = alloc::thread_stats().since(before);
    assert!(delta.count >= 1, "allocation not counted: {delta:?}");
    assert!(delta.bytes >= 4096, "bytes under-counted: {delta:?}");
    drop(v);
    // Process totals move at least as much as this thread's.
    let process = alloc::process_stats();
    assert!(process.count >= delta.count);
    assert!(process.bytes >= delta.bytes);
}

#[test]
fn publish_mirrors_deltas_into_the_registry_exactly_once() {
    if !airfinger_obs::recording() {
        return;
    }
    // First publish folds whatever this process allocated so far into the
    // counters; from then on, each publish adds exactly the delta.
    alloc::publish();
    let read = || {
        let snap = airfinger_obs::global().snapshot();
        (
            snap.counter_value("alloc_allocations_total", &[])
                .unwrap_or(0),
            snap.counter_value("alloc_bytes_total", &[]).unwrap_or(0),
        )
    };
    let (count0, bytes0) = read();
    let v: Vec<u8> = Vec::with_capacity(1 << 16);
    alloc::publish();
    let (count1, bytes1) = read();
    drop(v);
    assert!(count1 > count0, "publish did not advance the event counter");
    assert!(
        bytes1 >= bytes0 + (1 << 16),
        "publish did not carry the allocated bytes: {bytes0} -> {bytes1}"
    );
    // No activity → no movement (other test threads may allocate, so
    // tolerate growth but require the counters never run backwards).
    alloc::publish();
    let (count2, bytes2) = read();
    assert!(count2 >= count1 && bytes2 >= bytes1);
}

#[test]
fn streaming_push_is_allocation_free_at_steady_state() {
    let corpus = generate_corpus(&small_spec(11));
    let mut af = AirFinger::new(AirFingerConfig {
        forest_trees: 15,
        n_threads: 1,
        ..Default::default()
    });
    af.train_on_corpus(&corpus, None)
        .expect("training succeeds");
    let mut engine = StreamingEngine::new(af, 3).expect("engine builds");

    // A quiet carrier-level signal: the segmenter never opens a window,
    // so this measures the per-sample ingest path alone. Warm up past
    // every lazily-grown buffer (history ring, smoothing windows,
    // metric handles), then measure.
    let sample = vec![0.01; 3];
    for _ in 0..2_000 {
        engine.push(&sample).expect("warmup push succeeds");
    }
    let measured = 4_000u64;
    let before = alloc::thread_stats();
    for _ in 0..measured {
        engine.push(&sample).expect("measured push succeeds");
    }
    let delta = alloc::thread_stats().since(before);
    let per_push = delta.count as f64 / measured as f64;
    assert!(
        per_push <= STEADY_STATE_ALLOCS_PER_PUSH,
        "steady-state push allocates: {} events / {} bytes over {measured} pushes \
         ({per_push:.4} per push, ceiling {STEADY_STATE_ALLOCS_PER_PUSH})",
        delta.count,
        delta.bytes,
    );
}
