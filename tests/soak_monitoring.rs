//! The continuous-monitoring contract, end to end: a scripted fault
//! session streamed through a monitored [`StreamingEngine`] must walk the
//! health ladder deterministically (`healthy → degraded → unhealthy`,
//! never jumping straight to unhealthy), and the transition into
//! unhealthy must produce exactly one schema-valid flight-recorder dump
//! whose ring covers the breach window.

use airfinger_core::engine::StreamingEngine;
use airfinger_obs::recorder::Dump;
use airfinger_obs::{
    EngineMonitor, HealthState, MonitorConfig, RecorderConfig, SloRules, Transition, WindowConfig,
};
use airfinger_synth::session::{generate_session, standard_fault_schedule, SessionSpec};
use airfinger_tests::trained_pipeline;

const SAMPLES: usize = 3000;
const HORIZON: usize = 300;

/// Stream a session (faulted or clean) through a monitored engine and
/// return the transition log, the dumps, and the final health state.
fn run_soak(faulted: bool) -> (Vec<Transition>, Vec<Dump>, HealthState) {
    let (af, _) = trained_pipeline(11);
    let session = SessionSpec {
        samples: SAMPLES,
        seed: 11,
        faults: if faulted {
            standard_fault_schedule(SAMPLES, true, true)
        } else {
            Vec::new()
        },
        ..Default::default()
    };
    let trace = generate_session(&session);
    let channels = trace.channel_count();
    let mut engine = StreamingEngine::new(af, channels).expect("engine builds");
    engine.attach_monitor(EngineMonitor::new(MonitorConfig {
        window: WindowConfig { horizon: HORIZON },
        rules: SloRules::default(),
        recorder: RecorderConfig::default(),
        budget: airfinger_obs::BudgetConfig::default(),
    }));
    let mut sample = vec![0.0; channels];
    for i in 0..trace.len() {
        for (k, v) in sample.iter_mut().enumerate() {
            *v = trace.channel(k)[i];
        }
        engine.push(&sample).expect("push succeeds");
    }
    engine.flush().expect("flush succeeds");
    let monitor = engine.monitor_mut().expect("monitor attached");
    let transitions = monitor.transitions().to_vec();
    let health = monitor.health();
    let dumps = monitor.take_dumps();
    (transitions, dumps, health)
}

#[test]
fn clean_session_stays_healthy() {
    let (transitions, dumps, health) = run_soak(false);
    assert_eq!(health, HealthState::Healthy, "clean soak ends healthy");
    assert!(
        transitions.is_empty(),
        "clean soak has no transitions: {transitions:?}"
    );
    assert!(dumps.is_empty(), "clean soak produces no dumps");
}

#[test]
fn faults_walk_the_health_ladder_deterministically() {
    let (transitions, dumps, _) = run_soak(true);
    assert!(
        !transitions.is_empty(),
        "fault session must transition at least once"
    );
    // Entry into trouble is graded: the first transition leaves Healthy
    // for Degraded, and unhealthy is only ever reached *from* degraded.
    assert_eq!(transitions[0].from, HealthState::Healthy);
    assert_eq!(transitions[0].to.level(), 1, "first step is degradation");
    let unhealthy: Vec<&Transition> = transitions.iter().filter(|t| t.to.level() == 2).collect();
    assert_eq!(unhealthy.len(), 1, "one unhealthy episode: {transitions:?}");
    assert_eq!(
        unhealthy[0].from.level(),
        1,
        "unhealthy entered via the ladder, not a jump: {transitions:?}"
    );
    // Exactly one dump for the single unhealthy episode.
    assert_eq!(dumps.len(), 1, "exactly one dump per unhealthy episode");
    assert_eq!(dumps[0].trigger, "segmentation_stall");
    assert_eq!(
        dumps[0].window_index, unhealthy[0].window_index,
        "dump anchored to the breach window"
    );
    // Deterministic: a second identical run reproduces the transition log
    // bit for bit and anchors the dump to the same breach window. (The
    // dump JSON itself carries `push_seconds` — wall-clock scheduling
    // observations — so only its deterministic parts are compared.)
    let (again, dumps_again, _) = run_soak(true);
    assert_eq!(again, transitions, "transition log is deterministic");
    assert_eq!(dumps_again[0].window_index, dumps[0].window_index);
    assert_eq!(dumps_again[0].trigger, dumps[0].trigger);
    assert_eq!(
        ring_channels(&dumps_again[0]),
        ring_channels(&dumps[0]),
        "ring raw samples are deterministic"
    );
}

#[test]
fn dump_is_schema_valid_and_covers_the_breach() {
    let (transitions, dumps, _) = run_soak(true);
    assert_eq!(dumps.len(), 1);
    let dump = &dumps[0];
    let parsed = serde_json::from_str::<serde::Value>(&dump.json).expect("dump JSON parses");
    let obj = parsed.as_object().expect("dump is an object");
    assert_eq!(
        obj.get("schema").and_then(serde::Value::as_str),
        Some("airfinger-flight-recorder-v1")
    );
    assert_eq!(
        obj.get("trigger").and_then(serde::Value::as_str),
        Some("segmentation_stall")
    );

    // The breach window is embedded in the dump…
    let window = obj
        .get("window")
        .and_then(serde::Value::as_object)
        .expect("dump carries the breach window");
    let window_index = window
        .get("index")
        .and_then(serde::Value::as_u64)
        .expect("window index");
    assert_eq!(window_index, dump.window_index);
    let window_start = window
        .get("start_sample")
        .and_then(serde::Value::as_u64)
        .expect("window start");

    // …and the raw-sample ring actually covers it: the ring's span must
    // reach past the breach window's start.
    let ring = obj
        .get("ring")
        .and_then(serde::Value::as_object)
        .expect("dump carries the ring");
    let first = ring
        .get("first_sample")
        .and_then(serde::Value::as_u64)
        .expect("ring first_sample");
    let last = ring
        .get("last_sample")
        .and_then(serde::Value::as_u64)
        .expect("ring last_sample");
    assert!(first <= window_start, "ring starts at or before the breach");
    assert!(last >= window_start, "ring reaches into the breach window");

    // During the dropout the channels are frozen, so the ring's tail must
    // hold runs of identical values — the stuck-ADC signature the
    // post-mortem exists to show.
    let channels = ring
        .get("channels")
        .and_then(serde::Value::as_array)
        .expect("ring channels");
    assert!(!channels.is_empty());
    for ch in channels {
        let values = ch.as_array().expect("channel array");
        let tail: Vec<f64> = values
            .iter()
            .rev()
            .take(32)
            .map(|v| v.as_f64().expect("sample value"))
            .collect();
        assert!(
            tail.windows(2).all(|w| w[0] == w[1]),
            "dropout freezes the ring tail: {tail:?}"
        );
    }

    // The transition history up to the breach rides along for context —
    // the recovery transition happens after the dump, so the dump holds
    // the prefix ending at the unhealthy transition.
    let logged = obj
        .get("transitions")
        .and_then(serde::Value::as_array)
        .expect("dump carries transitions");
    let breach_position = transitions
        .iter()
        .position(|t| t.to.level() == 2)
        .expect("an unhealthy transition exists");
    assert_eq!(logged.len(), breach_position + 1);
}

/// The dump ring's raw channel samples, parsed out of the JSON.
fn ring_channels(dump: &Dump) -> Vec<Vec<f64>> {
    let parsed = serde_json::from_str::<serde::Value>(&dump.json).expect("dump JSON parses");
    parsed
        .as_object()
        .and_then(|o| o.get("ring"))
        .and_then(serde::Value::as_object)
        .and_then(|r| r.get("channels"))
        .and_then(serde::Value::as_array)
        .expect("ring channels present")
        .iter()
        .map(|ch| {
            ch.as_array()
                .expect("channel array")
                .iter()
                .map(|v| v.as_f64().expect("sample value"))
                .collect()
        })
        .collect()
}
