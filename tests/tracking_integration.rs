//! ZEBRA tracking against synthesis ground truth: direction, velocity and
//! displacement of real simulated scrolls.

use airfinger_core::processing::DataProcessor;
use airfinger_core::zebra::{ScrollDirection, VelocitySource, Zebra};
use airfinger_synth::dataset::{generate_sample, trial_trajectory, CorpusSpec};
use airfinger_synth::gesture::{Gesture, SampleLabel};
use airfinger_synth::profile::UserProfile;
use airfinger_tests::{small_spec, test_config};

fn true_crossing_dt(
    traj: &airfinger_synth::trajectory::Trajectory,
    direction_up: bool,
) -> Option<f64> {
    let dt = 0.005;
    let steps = (traj.duration_s() / dt) as usize;
    let sign = if direction_up { 1.0 } else { -1.0 };
    let (mut t1, mut t2) = (None, None);
    for k in 0..=steps {
        let t = k as f64 * dt;
        let x = traj.position(t)?.x * sign;
        if t1.is_none() && x >= -0.01 {
            t1 = Some(t);
        }
        if t2.is_none() && x >= 0.01 {
            t2 = Some(t);
        }
    }
    match (t1, t2) {
        (Some(a), Some(b)) if b > a => Some(b - a),
        _ => None,
    }
}

#[test]
fn full_scrolls_track_direction_and_velocity() {
    let spec = CorpusSpec {
        gestures: vec![Gesture::ScrollUp, Gesture::ScrollDown],
        ..small_spec(51)
    };
    let config = test_config();
    let processor = DataProcessor::new(config);
    let zebra = Zebra::new(config);
    let mut checked = 0;
    for user in 0..spec.users {
        let profile = UserProfile::sample(user, spec.seed);
        for (rep, g) in [(0, Gesture::ScrollUp), (0, Gesture::ScrollDown)] {
            let label = SampleLabel::Gesture(g);
            let traj = trial_trajectory(&profile, label, 0, rep, &spec);
            let Some(dt_true) = true_crossing_dt(&traj, g == Gesture::ScrollUp) else {
                continue; // partial sweep
            };
            let s = generate_sample(&profile, label, 0, rep, &spec);
            let w = processor.primary_window(&s.trace);
            let Some(track) = zebra.track(&w) else {
                continue;
            };
            if track.velocity_source != VelocitySource::Measured {
                continue;
            }
            checked += 1;
            let expect = if g == Gesture::ScrollUp {
                ScrollDirection::Up
            } else {
                ScrollDirection::Down
            };
            assert_eq!(track.direction, expect, "user {user}, {g}");
            let v_true = 20.0 / dt_true; // mm/s over the 20 mm baseline
            let ratio = track.velocity_mm_s / v_true;
            assert!(
                (0.4..=2.5).contains(&ratio),
                "user {user} {g}: v {:.0} vs true {v_true:.0} (ratio {ratio:.2})",
                track.velocity_mm_s
            );
        }
    }
    assert!(checked >= 2, "only {checked} scrolls fully tracked");
}

#[test]
fn displacement_is_consistent_with_velocity_and_duration() {
    let spec = CorpusSpec {
        gestures: vec![Gesture::ScrollUp],
        ..small_spec(52)
    };
    let config = test_config();
    let processor = DataProcessor::new(config);
    let zebra = Zebra::new(config);
    let profile = UserProfile::sample(0, spec.seed);
    let s = generate_sample(
        &profile,
        SampleLabel::Gesture(Gesture::ScrollUp),
        0,
        0,
        &spec,
    );
    let w = processor.primary_window(&s.trace);
    let track = zebra.track(&w).expect("scroll tracked");
    let t = track.duration_s / 2.0;
    assert!(
        (track.displacement_mm(t) - track.direction.alpha() * track.velocity_mm_s * t).abs() < 1e-9
    );
    assert_eq!(
        track.total_displacement_mm(),
        track.displacement_mm(track.duration_s * 10.0),
        "displacement saturates at T"
    );
}

#[test]
fn detect_gestures_rarely_produce_tracks() {
    // ZEBRA itself (without the class router) should find no scroll in
    // most click windows: the envelope lag of a stationary gesture is
    // small, so either `track` returns None or the window is classified
    // detect-aimed upstream. We assert the upstream contract: the full
    // pipeline routes clicks to Detect (see pipeline_integration) — here
    // we check the lag statistic directly.
    let spec = CorpusSpec {
        gestures: vec![Gesture::Click],
        ..small_spec(53)
    };
    let config = test_config();
    let processor = DataProcessor::new(config);
    let mut small_lag = 0;
    let mut total = 0;
    for user in 0..spec.users {
        let profile = UserProfile::sample(user, spec.seed);
        for rep in 0..3 {
            let s = generate_sample(
                &profile,
                SampleLabel::Gesture(Gesture::Click),
                0,
                rep,
                &spec,
            );
            let w = processor.primary_window(&s.trace);
            let timing = w.channel_timing(&config);
            total += 1;
            if timing.lag_samples.is_none_or(|l| l.unsigned_abs() < 15) {
                small_lag += 1;
            }
        }
    }
    assert!(
        small_lag * 3 >= total * 2,
        "{small_lag}/{total} clicks have small envelope lag"
    );
}
