//! Instrumentation must be an observer, never a participant:
//!
//! 1. every **counter** in the global registry is identical no matter how
//!    many worker threads the pipeline uses (timing histograms are
//!    scheduling observations and are deliberately excluded), and
//! 2. recognition output is bit-identical with recording enabled and
//!    disabled.
//!
//! The test functions share the process-wide metrics registry, so they
//! serialize on a local mutex and reset the registry around each run.

use airfinger_core::config::AirFingerConfig;
use airfinger_core::engine::StreamingEngine;
use airfinger_core::pipeline::AirFinger;
use airfinger_synth::dataset::{generate_corpus, Corpus};
use airfinger_tests::small_spec;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

fn registry_guard() -> MutexGuard<'static, ()> {
    REGISTRY_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn corpus() -> Corpus {
    generate_corpus(&small_spec(7))
}

fn config(n_threads: usize) -> AirFingerConfig {
    AirFingerConfig {
        forest_trees: 15,
        n_threads,
        ..Default::default()
    }
}

/// Train on `n_threads` workers, recognize every sample in batch, then
/// stream one sample through a *monitored* engine followed by a flat tail
/// long enough to stall the segmenter and walk the health ladder; return
/// the registry's counters plus the monitor's transition log.
fn counters_at(n_threads: usize, corpus: &Corpus) -> (BTreeMap<String, u64>, Vec<String>) {
    airfinger_obs::global().reset();
    airfinger_obs::latency::reset();
    let mut af = AirFinger::new(config(n_threads));
    af.train_on_corpus(corpus, None).expect("training succeeds");
    for s in corpus.samples() {
        af.recognize_primary(&s.trace)
            .expect("recognition succeeds");
    }
    let mut engine = StreamingEngine::new(af, 3).expect("engine builds");
    engine.attach_monitor(airfinger_obs::monitor::with_horizon(100));
    let trace = &corpus.samples()[0].trace;
    let mut last = vec![0.0; 3];
    for i in 0..trace.len() {
        let sample: Vec<f64> = (0..3).map(|k| trace.channel(k)[i]).collect();
        engine.push(&sample).expect("push succeeds");
        last = sample;
    }
    // Flat tail: five zero-segment windows walk degraded (2 consecutive
    // stalls) into unhealthy (4), exercising the transition counters and
    // the flight recorder deterministically.
    for _ in 0..500 {
        engine.push(&last).expect("push succeeds");
    }
    engine.flush().expect("flush succeeds");
    let transitions = engine
        .monitor()
        .map(|m| {
            m.transitions()
                .iter()
                .map(|t| format!("{}->{}@{}", t.from.tag(), t.to.tag(), t.window_index))
                .collect()
        })
        .unwrap_or_default();
    (
        airfinger_obs::global().snapshot().counter_map(),
        transitions,
    )
}

#[test]
fn counters_are_identical_across_thread_counts() {
    let _guard = registry_guard();
    let corpus = corpus();
    let (baseline, base_transitions) = counters_at(1, &corpus);
    // `recording()` reflects the obs crate's compile-time feature; with it
    // off the registry stays empty and the invariance check is vacuous.
    if airfinger_obs::recording() {
        assert!(
            baseline.contains_key("engine_samples_total"),
            "expected engine counters in {baseline:?}"
        );
        assert!(
            baseline
                .keys()
                .any(|k| k.starts_with("parallel_jobs_total")),
            "expected dispatch counters in {baseline:?}"
        );
        assert!(
            baseline.contains_key("ml_trees_trained_total"),
            "expected forest counters in {baseline:?}"
        );
        // The quality counters added for the regression gate must be part
        // of the same invariant: segmentation and family decisions are
        // pipeline outcomes, not scheduling artifacts.
        assert!(
            baseline.contains_key("pipeline_segments_found_total"),
            "expected segmentation counters in {baseline:?}"
        );
        assert!(
            baseline.contains_key("pipeline_segments_merged_total"),
            "expected merge counters in {baseline:?}"
        );
        assert!(
            baseline
                .keys()
                .any(|k| k.starts_with("pipeline_recognitions_total")),
            "expected recognition-kind counters in {baseline:?}"
        );
        // The continuous-monitoring counters are sample-count functions of
        // the input stream, so they join the same invariant.
        assert!(
            baseline.contains_key("engine_windows_closed_total"),
            "expected window counters in {baseline:?}"
        );
        assert!(
            baseline
                .keys()
                .any(|k| k.starts_with("health_transitions_total")),
            "expected health-transition counters in {baseline:?}"
        );
        assert!(
            baseline.contains_key("recorder_dumps_total"),
            "expected flight-recorder counters in {baseline:?}"
        );
        assert!(
            !base_transitions.is_empty(),
            "flat tail should stall the health model"
        );
    }
    for threads in [2, 3, 4, 8] {
        let (got, got_transitions) = counters_at(threads, &corpus);
        assert_eq!(got, baseline, "counters diverged at {threads} threads");
        assert_eq!(
            got_transitions, base_transitions,
            "health transitions diverged at {threads} threads"
        );
    }
}

/// Exporters must be deterministic *functions of logical state*: two
/// registries holding the same metrics — registered in different orders,
/// from different call sites — must export byte-identical JSON and
/// Prometheus documents. This is what makes scrape diffs and snapshot
/// comparisons meaningful.
#[test]
fn export_bytes_are_identical_across_insertion_orders() {
    let populate = |names: &[&str]| {
        let r = airfinger_obs::Registry::new();
        for name in names {
            match *name {
                "a_total" => r.counter("a_total", &[("kind", "x")], "a").add(7),
                "b_total" => r.counter("b_total", &[], "b").add(2),
                "depth" => r.gauge("depth", &[], "queue depth").set(2.25),
                "lat_seconds" => {
                    let h = r.histogram("lat_seconds", &[], vec![0.1, 1.0], "latency");
                    h.observe(0.05);
                    h.observe(0.75);
                }
                other => panic!("unknown fixture metric {other}"),
            }
        }
        r
    };
    let forward = populate(&["a_total", "b_total", "depth", "lat_seconds"]);
    let reversed = populate(&["lat_seconds", "depth", "b_total", "a_total"]);
    assert_eq!(
        forward.snapshot().to_json(),
        reversed.snapshot().to_json(),
        "JSON export depends on insertion order"
    );
    assert_eq!(
        forward.snapshot().to_prometheus(),
        reversed.snapshot().to_prometheus(),
        "Prometheus export depends on insertion order"
    );
    // And a snapshot taken twice renders the same bytes both times.
    assert_eq!(forward.snapshot().to_json(), forward.snapshot().to_json());
    assert_eq!(
        forward.snapshot().to_prometheus(),
        forward.snapshot().to_prometheus()
    );
}

/// Stream the first corpus trace through a freshly-trained engine with
/// the cost profiler enabled; return every scoped call path with its
/// deterministic coordinates (frame count and allocation pressure — the
/// nanosecond fields are scheduling observations and excluded).
fn profile_paths_at(n_threads: usize, corpus: &Corpus) -> BTreeMap<String, (u64, u64, u64)> {
    airfinger_obs::global().reset();
    airfinger_obs::latency::reset();
    airfinger_obs::profile::reset();
    let mut af = AirFinger::new(config(n_threads));
    af.train_on_corpus(corpus, None).expect("training succeeds");
    let mut engine = StreamingEngine::new(af, 3).expect("engine builds");
    let was_enabled = airfinger_obs::profile::enabled();
    airfinger_obs::profile::set_enabled(true);
    let trace = &corpus.samples()[0].trace;
    let span = airfinger_obs::span!("profile_stream_seconds");
    for i in 0..trace.len() {
        let sample: Vec<f64> = (0..3).map(|k| trace.channel(k)[i]).collect();
        engine.push(&sample).expect("push succeeds");
    }
    drop(span);
    airfinger_obs::profile::set_enabled(was_enabled);
    engine.flush().expect("flush succeeds");
    airfinger_obs::profile::snapshot()
        .under("profile_stream_seconds")
        .paths
        .iter()
        .map(|(p, s)| (p.clone(), (s.count, s.alloc.count, s.alloc.bytes)))
        .collect()
}

/// The profiler's *structural* output — which call paths exist, how many
/// frames each accumulated, and their allocation pressure — is a pure
/// function of the input stream, independent of training parallelism.
/// Only the nanosecond fields may differ between runs.
#[test]
fn profile_breakdown_is_identical_across_thread_counts() {
    let _guard = registry_guard();
    let corpus = corpus();
    let baseline = profile_paths_at(1, &corpus);
    if airfinger_obs::recording() {
        assert!(
            baseline.contains_key("profile_stream_seconds;engine_push_seconds"),
            "expected the push path in {baseline:?}"
        );
    }
    for threads in [4, 8] {
        let got = profile_paths_at(threads, &corpus);
        assert_eq!(got, baseline, "profile diverged at {threads} threads");
    }
}

/// Run the `perf` bench experiment with `n_threads` training workers;
/// return its deterministic-class metrics (DESIGN.md §9: everything
/// *not* suffix-marked as timing) plus every nanosecond-latency
/// histogram's record count. Timing-class gauges and histogram sums are
/// wall-clock observations and are deliberately excluded.
fn perf_deterministic_at(n_threads: usize) -> (BTreeMap<String, String>, Vec<(String, u64)>) {
    use airfinger_bench::diff::{metric_class, MetricClass};
    airfinger_obs::global().reset();
    airfinger_obs::latency::reset();
    let mut ctx =
        airfinger_bench::context::Context::new(airfinger_bench::context::Scale::Quick, 99);
    ctx.config.n_threads = n_threads;
    airfinger_bench::run_experiment("perf", &ctx).expect("perf experiment succeeds");
    let snapshot = airfinger_obs::global().snapshot();
    let mut deterministic = BTreeMap::new();
    for c in &snapshot.counters {
        let identity = c.id.to_string();
        if identity.starts_with("perf_") && metric_class(&identity) == MetricClass::Deterministic {
            deterministic.insert(identity, c.value.to_string());
        }
    }
    for g in &snapshot.gauges {
        let identity = g.id.to_string();
        if identity.starts_with("perf_") && metric_class(&identity) == MetricClass::Deterministic {
            // Exact decimal rendering: byte equality is the contract.
            deterministic.insert(identity, format!("{:?}", g.value));
        }
    }
    let latency_counts = airfinger_obs::latency::snapshot_all()
        .into_iter()
        .map(|s| (s.id.to_string(), s.count))
        .collect();
    (deterministic, latency_counts)
}

/// The perf experiment's deterministic metric class (work counters,
/// allocs-per-push) and the latency histograms' record counts are pure
/// functions of `(scale, seed)` — byte-identical no matter how many
/// worker threads trained the pipeline. This is the invariant that lets
/// `repro diff` gate them exactly across machines and `--threads`
/// settings.
#[test]
fn perf_deterministic_metrics_are_identical_across_thread_counts() {
    let _guard = registry_guard();
    let (baseline, base_latency) = perf_deterministic_at(1);
    if airfinger_obs::recording() {
        for key in [
            "perf_pushes_total",
            "perf_recognitions_total",
            "perf_rejections_total",
            "perf_repeats_total",
            "perf_allocs_per_push",
            "perf_alloc_bytes_per_push",
        ] {
            assert!(baseline.contains_key(key), "expected {key} in {baseline:?}");
        }
        assert!(
            base_latency
                .iter()
                .any(|(id, count)| id == "engine_push_ns" && *count > 0),
            "expected push-latency records in {base_latency:?}"
        );
        assert!(
            base_latency
                .iter()
                .any(|(id, _)| id.starts_with("pipeline_stage_ns")),
            "expected stage-latency histograms in {base_latency:?}"
        );
        // Timing-class names must have been classified out: a p99 gauge
        // leaking into the exact comparison would make this test flaky
        // by construction.
        assert!(
            baseline
                .keys()
                .all(|k| !k.ends_with("_ns") && !k.ends_with("_per_s")),
            "timing-class metric leaked into the deterministic set: {baseline:?}"
        );
    }
    for threads in [4, 8] {
        let (got, got_latency) = perf_deterministic_at(threads);
        assert_eq!(
            got, baseline,
            "deterministic perf metrics diverged at {threads} threads"
        );
        assert_eq!(
            got_latency, base_latency,
            "latency record counts diverged at {threads} threads"
        );
    }
}

#[test]
fn recognition_is_identical_with_obs_on_and_off() {
    let _guard = registry_guard();
    let corpus = corpus();
    let mut af = AirFinger::new(config(1));
    af.train_on_corpus(&corpus, None)
        .expect("training succeeds");

    airfinger_obs::set_recording(true);
    let on: Vec<_> = corpus
        .samples()
        .iter()
        .map(|s| {
            af.recognize_primary(&s.trace)
                .expect("recognition succeeds")
        })
        .collect();

    airfinger_obs::set_recording(false);
    let off: Vec<_> = corpus
        .samples()
        .iter()
        .map(|s| {
            af.recognize_primary(&s.trace)
                .expect("recognition succeeds")
        })
        .collect();
    airfinger_obs::set_recording(true);

    assert_eq!(on, off, "instrumentation changed recognition output");
}
