//! The fleet-serving contract, end to end: a sharded, batched fleet run
//! must be bit-identical to N solo [`StreamingEngine`] sessions (same
//! recognitions, same monitor state), invariant under the worker-thread
//! count, and an over-subscribed fleet must shed deterministically
//! without perturbing a single surviving session.

use airfinger_core::engine::StreamingEngine;
use airfinger_core::events::Recognition;
use airfinger_core::pipeline::AirFinger;
use airfinger_fleet::{drive, generate_population, Fleet, FleetConfig, PopulationSpec, ShedReason};
use airfinger_nir_sim::trace::RssTrace;
use airfinger_obs::monitor::with_horizon;
use airfinger_tests::trained_pipeline;
use std::sync::Arc;

const SAMPLES: usize = 500;
const HORIZON: usize = 100;

fn population(sessions: usize) -> (PopulationSpec, Vec<RssTrace>, Vec<u64>) {
    let pop = PopulationSpec {
        sessions,
        samples_per_session: SAMPLES,
        users: 3,
        seed: 29,
        fault_every: 3,
        arrival_stagger_rounds: 1,
        chunk: 32,
    };
    let traces = generate_population(&pop, 1);
    let ids = (0..sessions as u64).collect();
    (pop, traces, ids)
}

/// One solo monitored session over `trace`, with the fleet's error-skip
/// semantics: failed recognitions are dropped, the stream continues.
fn solo_run(
    pipeline: &Arc<AirFinger>,
    trace: &RssTrace,
    horizon: usize,
) -> (Vec<Recognition>, u64, u64) {
    let channels = trace.channel_count();
    let mut engine =
        StreamingEngine::with_shared(Arc::clone(pipeline), channels).expect("engine builds");
    if horizon > 0 {
        engine.attach_monitor(with_horizon(horizon));
    }
    let mut events = Vec::new();
    let mut sample = vec![0.0; channels];
    for i in 0..trace.len() {
        for (k, v) in sample.iter_mut().enumerate() {
            *v = trace.channel(k)[i];
        }
        if let Ok(Some(event)) = engine.push(&sample) {
            events.push(event);
        }
    }
    if let Ok(Some(event)) = engine.flush() {
        events.push(event);
    }
    let (seen, windows) = engine
        .monitor()
        .map_or((0, 0), |m| (m.samples_seen(), m.windows_closed()));
    (events, seen, windows)
}

fn run_fleet(pipeline: &Arc<AirFinger>, threads: usize) -> Fleet {
    let (pop, traces, ids) = population(6);
    let channels = traces[0].channel_count();
    let config = FleetConfig {
        shards: 2,
        sessions_per_shard: 3,
        queue_capacity: 256,
        quantum: 64,
        monitor_horizon: HORIZON,
        threads,
    };
    let mut fleet = Fleet::new(Arc::clone(pipeline), channels, config).expect("fleet builds");
    let report = drive(&mut fleet, &ids, &traces, &pop).expect("drive completes");
    fleet.flush_sessions();
    assert_eq!(fleet.admitted(), 6, "all sessions admitted");
    assert_eq!(fleet.shed(), 0, "nothing shed: {:?}", fleet.shed_log());
    assert!(report.fed > 0 && fleet.idle());
    fleet
}

#[test]
fn batched_fleet_is_bit_identical_to_solo_sessions() {
    let (af, _) = trained_pipeline(29);
    let pipeline = Arc::new(af);
    let (_, traces, ids) = population(6);
    let fleet = run_fleet(&pipeline, 1);
    assert!(
        fleet.batched_windows() > 0,
        "the batched classification path must engage"
    );
    for (id, trace) in ids.iter().zip(&traces) {
        let (events, seen, windows) = solo_run(&pipeline, trace, HORIZON);
        assert_eq!(
            fleet.session_recognitions(*id),
            Some(events.as_slice()),
            "session {id} recognitions diverge from its solo run"
        );
        let monitor = fleet.session_monitor(*id).expect("session monitored");
        assert_eq!(monitor.samples_seen(), seen, "session {id} monitor feed");
        assert_eq!(
            monitor.windows_closed(),
            windows,
            "session {id} monitor windows"
        );
    }
}

#[test]
fn fleet_run_is_thread_invariant() {
    let (af, _) = trained_pipeline(29);
    let pipeline = Arc::new(af);
    let serial = run_fleet(&pipeline, 1);
    let threaded = run_fleet(&pipeline, 4);
    assert_eq!(serial.rollup(), threaded.rollup());
    for id in serial.session_ids() {
        assert_eq!(
            serial.session_recognitions(id),
            threaded.session_recognitions(id),
            "session {id} diverges across thread counts"
        );
    }
}

/// Over-subscribe a 2-shard fleet and overflow one queue; admissions are
/// refused in arrival order, the eviction is logged, and the survivors
/// stay bit-identical to their solo runs.
#[test]
fn oversubscription_sheds_deterministically_and_isolates_survivors() {
    let (af, _) = trained_pipeline(29);
    let pipeline = Arc::new(af);
    let (_, traces, _) = population(6);
    let channels = traces[0].channel_count();
    let config = FleetConfig {
        shards: 2,
        sessions_per_shard: 2,
        queue_capacity: 64,
        quantum: 32,
        monitor_horizon: 0,
        threads: 1,
    };
    let shed_logs: Vec<Vec<(u64, ShedReason)>> = (0..2)
        .map(|_| {
            let mut fleet =
                Fleet::new(Arc::clone(&pipeline), channels, config).expect("fleet builds");
            // Sessions 0..4 fill both shards; 4 and 5 must be refused.
            for id in 0..4 {
                fleet.admit(id).expect("capacity admits four sessions");
            }
            assert!(fleet.admit(4).is_err(), "shard 0 is full");
            assert!(fleet.admit(5).is_err(), "shard 1 is full");

            // Overflow session 0's bounded queue: the 65th sample evicts it.
            let mut sample = vec![0.0; channels];
            for i in 0..=config.queue_capacity {
                for (k, v) in sample.iter_mut().enumerate() {
                    *v = traces[0].channel(k)[i];
                }
                let pushed = fleet.enqueue(0, &sample);
                assert_eq!(
                    pushed.is_err(),
                    i == config.queue_capacity,
                    "only the overflowing sample sheds (i = {i})"
                );
            }
            assert_eq!(fleet.active_sessions(), 3, "survivors stay live");

            // Feed the survivors to completion.
            for round in 0..SAMPLES.div_ceil(32) {
                for id in [1u64, 2, 3] {
                    let trace = &traces[id as usize];
                    for i in (round * 32).min(trace.len())..((round + 1) * 32).min(trace.len()) {
                        for (k, v) in sample.iter_mut().enumerate() {
                            *v = trace.channel(k)[i];
                        }
                        fleet.enqueue(id, &sample).expect("survivors never shed");
                    }
                }
                let _ = fleet.run_round().expect("round runs");
            }
            fleet.drain_all().expect("drains");
            fleet.flush_sessions();

            for id in [1u64, 2, 3] {
                let (events, _, _) = solo_run(&pipeline, &traces[id as usize], 0);
                assert_eq!(
                    fleet.session_recognitions(id),
                    Some(events.as_slice()),
                    "survivor {id} corrupted by the shed sessions"
                );
            }
            fleet
                .shed_log()
                .iter()
                .map(|e| (e.session, e.reason))
                .collect()
        })
        .collect();

    assert_eq!(
        shed_logs[0],
        vec![
            (4, ShedReason::Admission),
            (5, ShedReason::Admission),
            (0, ShedReason::Backpressure),
        ],
        "shed order is deterministic"
    );
    assert_eq!(shed_logs[0], shed_logs[1], "shed log replays identically");
}
