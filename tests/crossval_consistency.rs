//! Cross-validation harness consistency: the splits used by the paper's
//! protocols must partition correctly and produce deterministic results
//! over real extracted features.

use airfinger_core::train::{all_gesture_feature_set, detect_feature_set};
use airfinger_ml::classifier::Classifier;
use airfinger_ml::forest::{RandomForest, RandomForestConfig};
use airfinger_ml::split::{gather, leave_one_group_out, stratified_k_fold, train_test_split};
use airfinger_synth::dataset::generate_corpus;
use airfinger_tests::{small_spec, test_config};

#[test]
fn feature_sets_align_with_corpus_structure() {
    let spec = small_spec(41);
    let corpus = generate_corpus(&spec);
    let all = all_gesture_feature_set(&corpus, &test_config());
    assert_eq!(all.len(), corpus.len());
    let detect = detect_feature_set(&corpus, &test_config());
    assert_eq!(detect.len(), corpus.detect_aimed().len());
    // Groups enumerate the users and sessions of the spec.
    let mut users = all.users.clone();
    users.sort_unstable();
    users.dedup();
    assert_eq!(users, (0..spec.users).collect::<Vec<_>>());
    let mut sessions = all.sessions.clone();
    sessions.sort_unstable();
    sessions.dedup();
    assert_eq!(sessions, (0..spec.sessions).collect::<Vec<_>>());
}

#[test]
fn leave_one_user_out_covers_each_user_exactly_once() {
    let corpus = generate_corpus(&small_spec(42));
    let features = all_gesture_feature_set(&corpus, &test_config());
    let splits = leave_one_group_out(&features.users);
    let mut tested = vec![0usize; features.len()];
    for (user, split) in &splits {
        for &i in &split.test {
            assert_eq!(features.users[i], *user);
            tested[i] += 1;
        }
        for &i in &split.train {
            assert_ne!(features.users[i], *user);
        }
    }
    assert!(tested.iter().all(|&c| c == 1));
}

#[test]
fn k_fold_on_features_is_deterministic_end_to_end() {
    let corpus = generate_corpus(&small_spec(43));
    let features = all_gesture_feature_set(&corpus, &test_config());
    let run = || {
        let folds = stratified_k_fold(&features.y, 3, 9);
        let split = &folds[0];
        let (xtr, ytr) = gather(&features.x, &features.y, &split.train);
        let mut rf = RandomForest::new(RandomForestConfig {
            n_trees: 10,
            seed: 5,
            ..Default::default()
        });
        rf.fit(&xtr, &ytr).expect("fit");
        split
            .test
            .iter()
            .map(|&i| rf.predict(&features.x[i]).expect("predict"))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn train_test_split_respects_class_balance_on_real_labels() {
    let corpus = generate_corpus(&small_spec(44));
    let features = all_gesture_feature_set(&corpus, &test_config());
    let split = train_test_split(&features.y, 0.25, 1);
    for class in 0..8 {
        let total = features.y.iter().filter(|&&l| l == class).count();
        let in_test = split
            .test
            .iter()
            .filter(|&&i| features.y[i] == class)
            .count();
        let frac = in_test as f64 / total as f64;
        assert!(
            (0.1..=0.45).contains(&frac),
            "class {class}: test fraction {frac}"
        );
    }
}
