//! The event-journal and error-budget contract, end to end: journal
//! sequence numbers survive capacity wraparound with correct cursor
//! semantics, burn-rate alerts fire exactly once per fault episode and
//! never on a clean run, and a fleet-attached journal serializes to the
//! same bytes no matter how many worker threads drain the shards.

use airfinger_core::engine::StreamingEngine;
use airfinger_core::pipeline::AirFinger;
use airfinger_fleet::{drive, generate_population, Fleet, FleetConfig, PopulationSpec};
use airfinger_nir_sim::trace::RssTrace;
use airfinger_obs::events::{EventKind, Journal};
use airfinger_obs::{
    BudgetConfig, EngineMonitor, MonitorConfig, RecorderConfig, SloRules, WindowConfig,
};
use airfinger_synth::session::{generate_session, standard_fault_schedule, SessionSpec};
use airfinger_tests::trained_pipeline;
use std::sync::Arc;

const SAMPLES: usize = 3000;
const HORIZON: usize = 300;

/// Stream one scripted session through a monitored engine journaling
/// into `journal`; return the engine for budget inspection.
fn soak_with_journal(faulted: bool, journal: &Journal) -> StreamingEngine {
    let (af, _) = trained_pipeline(11);
    let session = SessionSpec {
        samples: SAMPLES,
        seed: 11,
        faults: if faulted {
            standard_fault_schedule(SAMPLES, true, true)
        } else {
            Vec::new()
        },
        ..Default::default()
    };
    let trace = generate_session(&session);
    let channels = trace.channel_count();
    let mut engine = StreamingEngine::new(af, channels).expect("engine builds");
    engine.attach_monitor(
        EngineMonitor::new(MonitorConfig {
            window: WindowConfig { horizon: HORIZON },
            rules: SloRules::default(),
            recorder: RecorderConfig::default(),
            budget: BudgetConfig::default(),
        })
        .with_journal(journal.clone()),
    );
    let mut sample = vec![0.0; channels];
    for i in 0..trace.len() {
        for (k, v) in sample.iter_mut().enumerate() {
            *v = trace.channel(k)[i];
        }
        engine.push(&sample).expect("push succeeds");
    }
    engine.flush().expect("flush succeeds");
    engine
}

/// A tiny journal wraps: sequence numbers stay globally monotone, the
/// tail is the newest `capacity` events, and the `after` cursor honors
/// strictly-greater semantics across the evicted prefix.
#[test]
fn journal_wraparound_keeps_cursor_semantics() {
    let journal = Journal::new(8);
    let engine = soak_with_journal(true, &journal);
    let emitted = engine.monitor().expect("monitor attached").events_emitted();
    assert!(
        emitted > 8,
        "fault soak must overflow the 8-slot journal, emitted {emitted}"
    );
    assert_eq!(journal.head_seq(), emitted, "every event got a sequence");
    assert_eq!(journal.len(), 8, "ring retains exactly its capacity");
    assert_eq!(journal.dropped(), emitted - 8, "the rest were evicted");

    let tail = journal.tail_after(0, journal.capacity());
    let seqs: Vec<u64> = tail.iter().map(|e| e.seq).collect();
    let expected: Vec<u64> = (emitted - 7..=emitted).collect();
    assert_eq!(seqs, expected, "tail is the newest events, oldest first");

    // Cursor into the retained region: strictly after.
    let mid = emitted - 3;
    let after_mid: Vec<u64> = journal
        .tail_after(mid, journal.capacity())
        .iter()
        .map(|e| e.seq)
        .collect();
    assert_eq!(after_mid, (mid + 1..=emitted).collect::<Vec<u64>>());
    // Cursor at and beyond the head: empty, not an error.
    assert!(journal.tail_after(emitted, 8).is_empty());
    assert!(journal.tail_after(emitted + 100, 8).is_empty());
    // Cursor inside the evicted prefix: yields the whole retained tail.
    assert_eq!(journal.tail_after(1, journal.capacity()).len(), 8);
}

/// The budget contract: a clean session never burns, a faulted session
/// trips the fast-burn alert exactly once (the latch holds through the
/// contiguous bad-window episode), and the journal carries one burn
/// event per fired alert.
#[test]
fn burn_alerts_fire_exactly_once_under_faults_and_never_clean() {
    let clean_journal = Journal::new(4096);
    let clean = soak_with_journal(false, &clean_journal);
    let budget = clean.monitor().expect("monitor attached").budget();
    assert_eq!(budget.fast_alerts(), 0, "clean run must not burn fast");
    assert_eq!(budget.slow_alerts(), 0, "clean run must not burn slow");
    assert!(
        (budget.remaining() - 1.0).abs() < 1e-9,
        "clean run keeps its whole budget, got {}",
        budget.remaining()
    );
    assert!(
        clean_journal
            .tail_after(0, clean_journal.capacity())
            .iter()
            .all(|e| !matches!(e.kind, EventKind::BurnAlert { .. })),
        "clean journal must carry no burn events"
    );

    let fault_journal = Journal::new(4096);
    let faulted = soak_with_journal(true, &fault_journal);
    let budget = faulted.monitor().expect("monitor attached").budget();
    assert_eq!(
        budget.fast_alerts(),
        1,
        "fault episode trips fast burn exactly once"
    );
    assert!(budget.slow_alerts() >= 1, "slow burn confirms the episode");
    assert!(budget.remaining() < 1.0, "faults spend budget");
    let burn_events = fault_journal
        .tail_after(0, fault_journal.capacity())
        .iter()
        .filter(|e| matches!(e.kind, EventKind::BurnAlert { .. }))
        .count() as u64;
    assert_eq!(
        burn_events,
        budget.fast_alerts() + budget.slow_alerts(),
        "one journal event per fired alert"
    );
}

fn fleet_journal_bytes(pipeline: &Arc<AirFinger>, traces: &[RssTrace], threads: usize) -> String {
    let pop = PopulationSpec {
        sessions: 6,
        samples_per_session: 500,
        users: 3,
        seed: 29,
        fault_every: 3,
        arrival_stagger_rounds: 1,
        chunk: 32,
    };
    let config = FleetConfig {
        shards: 2,
        sessions_per_shard: 3,
        queue_capacity: 256,
        quantum: 64,
        monitor_horizon: 100,
        threads,
    };
    let channels = traces[0].channel_count();
    let mut fleet = Fleet::new(Arc::clone(pipeline), channels, config).expect("fleet builds");
    let journal = Journal::new(4096);
    fleet.set_journal(journal.clone());
    let ids: Vec<u64> = (0..6).collect();
    drive(&mut fleet, &ids, traces, &pop).expect("drive completes");
    fleet.flush_sessions();
    assert_eq!(journal.dropped(), 0, "journal sized for the whole run");
    assert!(journal.len() > 6, "monitors journaled beyond admissions");
    journal.to_json_after(0, journal.capacity())
}

/// The fleet drains buffered monitor events at the serial round barrier
/// in (shard, session) order, so the journal's serialized bytes — seq
/// assignment included — are invariant under the worker-thread count.
#[test]
fn fleet_journal_is_byte_identical_across_thread_counts() {
    let (af, _) = trained_pipeline(29);
    let pipeline = Arc::new(af);
    let pop = PopulationSpec {
        sessions: 6,
        samples_per_session: 500,
        users: 3,
        seed: 29,
        fault_every: 3,
        arrival_stagger_rounds: 1,
        chunk: 32,
    };
    let traces = generate_population(&pop, 1);
    let serial = fleet_journal_bytes(&pipeline, &traces, 1);
    for threads in [2, 4] {
        let threaded = fleet_journal_bytes(&pipeline, &traces, threads);
        assert_eq!(
            serial, threaded,
            "fleet journal bytes diverged at {threads} threads"
        );
    }
}
