//! Shared fixtures for the cross-crate integration test suite.

use airfinger_core::config::AirFingerConfig;
use airfinger_core::pipeline::AirFinger;
use airfinger_synth::dataset::{generate_corpus, Corpus, CorpusSpec};

/// A small-but-meaningful corpus spec: 2 volunteers × 2 sessions × 3 reps.
#[must_use]
pub fn small_spec(seed: u64) -> CorpusSpec {
    CorpusSpec {
        users: 2,
        sessions: 2,
        reps: 3,
        seed,
        ..Default::default()
    }
}

/// A fast pipeline config for tests (fewer trees than production).
#[must_use]
pub fn test_config() -> AirFingerConfig {
    AirFingerConfig {
        forest_trees: 20,
        ..Default::default()
    }
}

/// A pipeline trained on [`small_spec`] data, plus the corpus it saw.
#[must_use]
pub fn trained_pipeline(seed: u64) -> (AirFinger, Corpus) {
    let corpus = generate_corpus(&small_spec(seed));
    let mut af = AirFinger::new(test_config());
    af.train_on_corpus(&corpus, None)
        .expect("training succeeds on a gesture corpus");
    (af, corpus)
}
