//! Bit-identical parallel determinism: the thread count is a pure
//! performance knob. A seeded forest trained on N threads must be
//! *exactly* the forest trained on one thread — same serialized trees,
//! same predictions, same importances — and the whole corpus-training
//! and streaming-recognition paths must be equally unaffected.

use airfinger_core::config::AirFingerConfig;
use airfinger_core::engine::StreamingEngine;
use airfinger_core::pipeline::AirFinger;
use airfinger_core::train::all_gesture_feature_set;
use airfinger_ml::classifier::Classifier;
use airfinger_ml::forest::{RandomForest, RandomForestConfig};
use airfinger_synth::dataset::generate_corpus;
use airfinger_tests::small_spec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREAD_COUNTS: [usize; 4] = [2, 3, 4, 8];

fn blob_data(seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Vec::new();
    let mut y = Vec::new();
    for c in 0..4usize {
        for _ in 0..50 {
            x.push(vec![
                c as f64 * 2.0 + rng.gen::<f64>(),
                -(c as f64) + rng.gen::<f64>(),
                rng.gen::<f64>(),
                rng.gen::<f64>() * 0.1,
            ]);
            y.push(c);
        }
    }
    (x, y)
}

fn fit_forest(n_threads: usize, x: &[Vec<f64>], y: &[usize]) -> RandomForest {
    let mut rf = RandomForest::new(RandomForestConfig {
        n_trees: 17,
        seed: 0xF0F0,
        n_threads,
        ..Default::default()
    });
    rf.fit(x, y).expect("forest fits");
    rf
}

#[test]
fn forest_is_bit_identical_across_thread_counts() {
    let (x, y) = blob_data(11);
    let base = fit_forest(1, &x, &y);
    // Serialize the whole model — every tree node, threshold and leaf — so
    // the comparison is structural, not just behavioural.
    let base_json = serde_json::to_string(&base).expect("forest serializes");
    for threads in THREAD_COUNTS {
        let other = fit_forest(threads, &x, &y);
        let other_json = serde_json::to_string(&other).expect("forest serializes");
        // The configs differ only in the thread knob itself; splice it out
        // by comparing models trained with the knob re-set.
        let normalize =
            |s: &str, t: usize| s.replace(&format!("\"n_threads\":{t}"), "\"n_threads\":_");
        assert_eq!(
            normalize(&base_json, 1),
            normalize(&other_json, threads),
            "threads = {threads}: serialized forests differ"
        );
        assert_eq!(
            base.feature_importances(),
            other.feature_importances(),
            "threads = {threads}"
        );
        let base_pred = base.predict_batch(&x).expect("predict");
        let other_pred = other.predict_batch(&x).expect("predict");
        assert_eq!(base_pred, other_pred, "threads = {threads}");
        for xi in x.iter().step_by(7) {
            assert_eq!(
                base.predict_proba(xi).expect("proba"),
                other.predict_proba(xi).expect("proba"),
                "threads = {threads}"
            );
        }
    }
}

#[test]
fn feature_extraction_is_invariant_to_thread_count() {
    let corpus = generate_corpus(&small_spec(21));
    let set_with = |n_threads| {
        let config = AirFingerConfig {
            n_threads,
            ..Default::default()
        };
        all_gesture_feature_set(&corpus, &config)
    };
    let base = set_with(1);
    assert!(!base.is_empty());
    for threads in THREAD_COUNTS {
        assert_eq!(base, set_with(threads), "threads = {threads}");
    }
}

#[test]
fn trained_pipeline_is_invariant_to_thread_count() {
    let corpus = generate_corpus(&small_spec(22));
    let train_with = |n_threads| {
        let config = AirFingerConfig {
            forest_trees: 15,
            n_threads,
            ..Default::default()
        };
        let mut af = AirFinger::new(config);
        af.train_on_corpus(&corpus, None)
            .expect("training succeeds");
        af
    };
    let base = train_with(1);
    let base_preds: Vec<_> = corpus
        .samples()
        .iter()
        .map(|s| format!("{}", base.recognize_primary(&s.trace).expect("recognize")))
        .collect();
    for threads in [2, 4] {
        let other = train_with(threads);
        let other_preds: Vec<_> = corpus
            .samples()
            .iter()
            .map(|s| format!("{}", other.recognize_primary(&s.trace).expect("recognize")))
            .collect();
        assert_eq!(base_preds, other_preds, "threads = {threads}");
    }
}

#[test]
fn streaming_engine_unaffected_by_thread_count() {
    let corpus = generate_corpus(&small_spec(23));
    let events_with = |n_threads| {
        let config = AirFingerConfig {
            forest_trees: 15,
            n_threads,
            ..Default::default()
        };
        let mut af = AirFinger::new(config);
        af.train_on_corpus(&corpus, None)
            .expect("training succeeds");
        let mut engine = StreamingEngine::new(af, 3).expect("engine builds");
        let trace = &corpus.samples()[0].trace;
        let mut events = Vec::new();
        for i in 0..trace.len() {
            let s = [
                trace.channel(0)[i],
                trace.channel(1)[i],
                trace.channel(2)[i],
            ];
            if let Some(ev) = engine.push(&s).expect("push") {
                events.push(format!("{ev}"));
            }
        }
        if let Some(ev) = engine.flush().expect("flush") {
            events.push(format!("{ev}"));
        }
        events
    };
    let base = events_with(1);
    for threads in [2, 4] {
        assert_eq!(base, events_with(threads), "threads = {threads}");
    }
}
