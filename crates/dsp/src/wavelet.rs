//! Continuous wavelet transform with the Ricker ("Mexican hat") wavelet.
//!
//! Backs the "Continuous Wavelet transform" feature family of Table I
//! (tsfresh's `cwt_coefficients` also uses the Ricker wavelet). A direct
//! time-domain convolution is used: gesture segments are short (a few
//! hundred samples), so `O(n·w)` is cheap and avoids padding artifacts.

/// Sample the Ricker wavelet of width parameter `a` at `points` points.
///
/// tsfresh/SciPy convention: total width `points`, wavelet
/// `A · (1 − t²/a²) · exp(−t²/(2a²))` with `A = 2 / (√(3a) · π^{1/4})`.
///
/// # Panics
///
/// Panics if `a` is not positive.
#[must_use]
pub fn ricker(points: usize, a: f64) -> Vec<f64> {
    assert!(a > 0.0, "wavelet width must be positive");
    let amp = 2.0 / ((3.0 * a).sqrt() * std::f64::consts::PI.powf(0.25));
    (0..points)
        .map(|i| {
            let t = i as f64 - (points as f64 - 1.0) / 2.0;
            let x2 = (t / a) * (t / a);
            amp * (1.0 - x2) * (-x2 / 2.0).exp()
        })
        .collect()
}

/// CWT row: convolve `x` with a Ricker wavelet of width `a` ("same" length
/// output, zero-padded boundaries).
#[must_use]
pub fn cwt_row(x: &[f64], a: f64) -> Vec<f64> {
    let w = ((10.0 * a) as usize).clamp(3, x.len().max(3)) | 1; // odd width
    let kernel = ricker(w, a);
    convolve_same(x, &kernel)
}

/// Full CWT matrix: one row per width in `widths`.
#[must_use]
pub fn cwt(x: &[f64], widths: &[f64]) -> Vec<Vec<f64>> {
    widths.iter().map(|&a| cwt_row(x, a)).collect()
}

/// "Same"-size linear convolution with zero padding.
#[must_use]
pub fn convolve_same(x: &[f64], kernel: &[f64]) -> Vec<f64> {
    if x.is_empty() || kernel.is_empty() {
        return vec![0.0; x.len()];
    }
    let half = kernel.len() / 2;
    (0..x.len())
        .map(|i| {
            let mut acc = 0.0;
            for (k, &kv) in kernel.iter().enumerate() {
                let idx = i as isize + half as isize - k as isize;
                if idx >= 0 && (idx as usize) < x.len() {
                    acc += kv * x[idx as usize];
                }
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ricker_is_symmetric() {
        let w = ricker(31, 4.0);
        for i in 0..15 {
            assert!((w[i] - w[30 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn ricker_peaks_at_center() {
        let w = ricker(21, 3.0);
        let center = w[10];
        assert!(w.iter().all(|&v| v <= center + 1e-12));
        assert!(center > 0.0);
    }

    #[test]
    fn ricker_has_near_zero_mean() {
        // The Ricker wavelet integrates to zero over the real line; the
        // finite sampling leaves a small residual.
        let w = ricker(101, 5.0);
        let sum: f64 = w.iter().sum();
        assert!(sum.abs() < 1e-3, "sum = {sum}");
    }

    #[test]
    fn cwt_of_zero_is_zero() {
        let rows = cwt(&vec![0.0; 50], &[2.0, 5.0]);
        assert!(rows.iter().flatten().all(|&v| v == 0.0));
    }

    #[test]
    fn cwt_responds_at_matching_scale() {
        // A bump of width ~8 responds more strongly at a=4 than at a=1.
        let x: Vec<f64> = (0..64)
            .map(|i| {
                let t = (i as f64 - 32.0) / 4.0;
                (-t * t / 2.0).exp()
            })
            .collect();
        let narrow = cwt_row(&x, 1.0);
        let matched = cwt_row(&x, 4.0);
        let peak = |v: &[f64]| v.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        assert!(peak(&matched) > peak(&narrow));
    }

    #[test]
    fn cwt_output_length_matches_input() {
        let x = vec![1.0; 37];
        assert_eq!(cwt_row(&x, 2.0).len(), 37);
    }

    #[test]
    fn convolution_identity_kernel() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let out = convolve_same(&x, &[1.0]);
        assert_eq!(out, x.to_vec());
    }

    #[test]
    fn convolution_empty_inputs() {
        assert!(convolve_same(&[], &[1.0]).is_empty());
        assert_eq!(convolve_same(&[1.0, 2.0], &[]), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn ricker_bad_width_panics() {
        let _ = ricker(11, 0.0);
    }
}
