//! Radix-2 decimation-in-time FFT.
//!
//! Backs the "Fast Fourier Transform" feature family of Table I. Only what
//! the feature bank needs is implemented: a forward/inverse complex FFT, a
//! real-input convenience wrapper that zero-pads to the next power of two,
//! and magnitude/power helpers.

use crate::error::DspError;

/// A complex number in rectangular form.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Construct from real and imaginary parts.
    #[must_use]
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    #[must_use]
    pub fn from_angle(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Magnitude `|z|`.
    #[must_use]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²`.
    #[must_use]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, other: Complex) -> Complex {
        Complex {
            re: self.re * other.re - self.im * other.im,
            im: self.re * other.im + self.im * other.re,
        }
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, other: Complex) -> Complex {
        Complex {
            re: self.re + other.re,
            im: self.im + other.im,
        }
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, other: Complex) -> Complex {
        Complex {
            re: self.re - other.re,
            im: self.im - other.im,
        }
    }
}

/// In-place forward FFT. Length must be a power of two.
///
/// # Errors
///
/// Returns [`DspError::NotPowerOfTwo`] otherwise.
pub fn fft_in_place(buf: &mut [Complex]) -> Result<(), DspError> {
    transform(buf, false)
}

/// In-place inverse FFT (includes the `1/N` normalization).
///
/// # Errors
///
/// Returns [`DspError::NotPowerOfTwo`] if the length is not a power of two.
pub fn ifft_in_place(buf: &mut [Complex]) -> Result<(), DspError> {
    transform(buf, true)?;
    let n = buf.len() as f64;
    for v in buf.iter_mut() {
        v.re /= n;
        v.im /= n;
    }
    Ok(())
}

fn transform(buf: &mut [Complex], inverse: bool) -> Result<(), DspError> {
    if !buf.len().is_power_of_two() && buf.len() > 1 {
        return Err(DspError::NotPowerOfTwo { len: buf.len() });
    }
    transform_pow2(buf, inverse);
    Ok(())
}

/// The radix-2 core; `buf.len()` must be a power of two (or ≤ 1). Callers
/// that pad to `next_power_of_two` use this directly and stay infallible.
fn transform_pow2(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    if n <= 1 {
        // Length 0 and 1 transforms are the identity (and the bit-reversal
        // shift below would be 64 bits wide for n = 1).
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            buf.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_angle(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = buf[i + k];
                let v = buf[i + k + len / 2] * w;
                buf[i + k] = u + v;
                buf[i + k + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// FFT of a real series, zero-padded to the next power of two. Returns the
/// full complex spectrum (length = padded size).
#[must_use]
pub fn rfft(x: &[f64]) -> Vec<Complex> {
    if x.is_empty() {
        return Vec::new();
    }
    let n = x.len().next_power_of_two();
    let mut buf: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
    buf.resize(n, Complex::default());
    transform_pow2(&mut buf, false);
    buf
}

/// One-sided magnitude spectrum of a real series (bins `0..=n/2`).
#[must_use]
pub fn magnitude_spectrum(x: &[f64]) -> Vec<f64> {
    let spec = rfft(x);
    let half = spec.len() / 2 + 1;
    spec.into_iter().take(half).map(Complex::abs).collect()
}

/// Index of the dominant non-DC bin of the one-sided spectrum, with its
/// frequency in Hz given `sample_rate`. Returns `None` for series shorter
/// than 2 samples.
#[must_use]
pub fn dominant_frequency(x: &[f64], sample_rate: f64) -> Option<(usize, f64)> {
    if x.len() < 2 {
        return None;
    }
    let mags = magnitude_spectrum(x);
    let padded = (mags.len() - 1) * 2;
    let (best, _) =
        mags.iter()
            .enumerate()
            .skip(1)
            .fold((1usize, f64::NEG_INFINITY), |(bi, bm), (i, &m)| {
                if m > bm {
                    (i, m)
                } else {
                    (bi, bm)
                }
            });
    Some((best, best as f64 * sample_rate / padded as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} !~ {b}");
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut buf = vec![Complex::default(); 8];
        buf[0] = Complex::new(1.0, 0.0);
        fft_in_place(&mut buf).unwrap();
        for v in &buf {
            assert_close(v.re, 1.0, 1e-12);
            assert_close(v.im, 0.0, 1e-12);
        }
    }

    #[test]
    fn fft_of_dc_concentrates_at_zero() {
        let mut buf = vec![Complex::new(2.0, 0.0); 16];
        fft_in_place(&mut buf).unwrap();
        assert_close(buf[0].re, 32.0, 1e-9);
        for v in &buf[1..] {
            assert_close(v.abs(), 0.0, 1e-9);
        }
    }

    #[test]
    fn fft_pure_tone_hits_its_bin() {
        let n = 64;
        let k = 5;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k as f64 * i as f64 / n as f64).cos())
            .collect();
        let mags = magnitude_spectrum(&x);
        let (max_bin, _) =
            mags.iter()
                .enumerate()
                .fold((0usize, f64::NEG_INFINITY), |(bi, bm), (i, &m)| {
                    if m > bm {
                        (i, m)
                    } else {
                        (bi, bm)
                    }
                });
        assert_eq!(max_bin, k);
    }

    #[test]
    fn fft_roundtrip() {
        let x: Vec<f64> = (0..32).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let mut buf: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
        fft_in_place(&mut buf).unwrap();
        ifft_in_place(&mut buf).unwrap();
        for (orig, got) in x.iter().zip(&buf) {
            assert_close(got.re, *orig, 1e-9);
            assert_close(got.im, 0.0, 1e-9);
        }
    }

    #[test]
    fn fft_rejects_non_power_of_two() {
        let mut buf = vec![Complex::default(); 12];
        assert_eq!(
            fft_in_place(&mut buf),
            Err(DspError::NotPowerOfTwo { len: 12 })
        );
    }

    #[test]
    fn parseval_holds() {
        let x: Vec<f64> = (0..16).map(|i| (i as f64 * 1.3).sin()).collect();
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let spec = rfft(&x);
        let freq_energy: f64 = spec.iter().map(|c| c.norm_sq()).sum::<f64>() / spec.len() as f64;
        assert_close(time_energy, freq_energy, 1e-9);
    }

    #[test]
    fn rfft_pads_to_power_of_two() {
        let spec = rfft(&[1.0; 10]);
        assert_eq!(spec.len(), 16);
    }

    #[test]
    fn dominant_frequency_of_tone() {
        let sr = 100.0;
        let f = 12.5; // exactly bin 16 of a 128-point FFT
        let x: Vec<f64> = (0..128)
            .map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / sr).sin())
            .collect();
        let (_, hz) = dominant_frequency(&x, sr).unwrap();
        assert_close(hz, f, 0.5);
    }

    #[test]
    fn dominant_frequency_short_input() {
        assert_eq!(dominant_frequency(&[1.0], 100.0), None);
    }

    #[test]
    fn empty_input_ok() {
        assert!(rfft(&[]).is_empty());
        assert!(magnitude_spectrum(&[]).is_empty());
        let mut empty: Vec<Complex> = Vec::new();
        assert!(fft_in_place(&mut empty).is_ok());
    }

    #[test]
    fn length_one_is_identity() {
        // Regression: the bit-reversal shift used to be 64 bits wide here.
        let mut one = vec![Complex::new(3.5, -1.25)];
        fft_in_place(&mut one).unwrap();
        assert_eq!(one[0], Complex::new(3.5, -1.25));
        ifft_in_place(&mut one).unwrap();
        assert_eq!(one[0], Complex::new(3.5, -1.25));
    }
}
