//! Signal-processing primitives for the airFinger NIR gesture pipeline.
//!
//! This crate implements, from scratch, every signal-processing building
//! block the airFinger paper relies on:
//!
//! * [`sbc`] — the **Square Based Calculation** (SBC) algorithm of §IV-B1:
//!   a sliding-window difference of received-signal-strength (RSS) readings,
//!   squared (`ΔRSS²`), which removes static reflections and relatively
//!   amplifies gesture energy. Available both as a batch transform and as a
//!   constant-memory streaming operator.
//! * [`threshold`] — the **Dynamic Threshold** (DT) of §IV-B2: Otsu's
//!   inter-class-variance maximization over accumulated `ΔRSS²` values,
//!   yielding a segmentation threshold that adapts to finger distance and
//!   ambient conditions.
//! * [`segment`] — gesture segmentation: start/end detection against a
//!   threshold plus the `t_e` merge rule that clusters segments separated by
//!   a short gap into a single gesture.
//! * [`ascent`] — per-photodiode *signal ascending point* detection, the
//!   primitive consumed by the ZEBRA tracker and the gesture-family
//!   distinguisher.
//! * [`fft`] / [`wavelet`] — radix-2 FFT and a Ricker-wavelet continuous
//!   wavelet transform, backing the frequency-domain features of Table I.
//! * [`stats`] / [`ar`] — time-series statistics (moments, quantiles,
//!   autocorrelation, linear trend) and autoregressive modelling
//!   (Durbin–Levinson, partial autocorrelation, augmented Dickey–Fuller).
//! * [`filter`] — moving-average / median / exponential smoothing filters
//!   and detrending helpers.
//!
//! # Example
//!
//! ```
//! use airfinger_dsp::sbc::Sbc;
//! use airfinger_dsp::threshold::otsu_threshold;
//! use airfinger_dsp::segment::{Segmenter, SegmenterConfig};
//!
//! // A trace with a quiet stretch, a burst, and another quiet stretch.
//! let mut rss = vec![100.0; 50];
//! rss.extend((0..30).map(|i| 100.0 + 40.0 * f64::sin(i as f64)));
//! rss.extend(vec![100.0; 50]);
//!
//! let delta = Sbc::new(1).apply(&rss);
//! let thr = otsu_threshold(&delta);
//! let segments = Segmenter::new(SegmenterConfig::default()).segment(&delta, thr);
//! assert_eq!(segments.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ar;
pub mod ascent;
pub mod error;
pub mod fft;
pub mod filter;
pub mod sbc;
pub mod segment;
pub mod stats;
pub mod threshold;
pub mod wavelet;

pub use error::DspError;
pub use sbc::Sbc;
pub use segment::{Segment, Segmenter, SegmenterConfig};
pub use threshold::{otsu_threshold, DynamicThreshold};
