//! Time-series statistics: moments, quantiles, autocorrelation, trends.
//!
//! These are the scalar building blocks behind the Table-I feature bank in
//! `airfinger-features` and the threshold computations in [`crate::threshold`].

use crate::error::DspError;

/// Arithmetic mean of `x`. Returns 0.0 for an empty slice.
#[must_use]
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().sum::<f64>() / x.len() as f64
}

/// Population variance (divides by `n`). Returns 0.0 for fewer than 2 samples.
#[must_use]
pub fn variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64
}

/// Population standard deviation.
#[must_use]
pub fn std_dev(x: &[f64]) -> f64 {
    variance(x).sqrt()
}

/// Third standardized moment (skewness). 0.0 when the variance vanishes.
#[must_use]
pub fn skewness(x: &[f64]) -> f64 {
    let n = x.len();
    if n < 3 {
        return 0.0;
    }
    let m = mean(x);
    let s = std_dev(x);
    if s <= f64::EPSILON {
        return 0.0;
    }
    x.iter().map(|v| ((v - m) / s).powi(3)).sum::<f64>() / n as f64
}

/// Excess kurtosis (fourth standardized moment minus 3). 0.0 when the
/// variance vanishes.
#[must_use]
pub fn kurtosis(x: &[f64]) -> f64 {
    let n = x.len();
    if n < 4 {
        return 0.0;
    }
    let m = mean(x);
    let s = std_dev(x);
    if s <= f64::EPSILON {
        return 0.0;
    }
    x.iter().map(|v| ((v - m) / s).powi(4)).sum::<f64>() / n as f64 - 3.0
}

/// Linear-interpolated quantile `q` in `[0, 1]` of `x`.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty slice and
/// [`DspError::InvalidParameter`] when `q` is outside `[0, 1]`.
pub fn quantile(x: &[f64], q: f64) -> Result<f64, DspError> {
    if x.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(DspError::InvalidParameter {
            name: "q",
            reason: "must lie in [0, 1]",
        });
    }
    let mut sorted = x.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (the 0.5 quantile). Returns 0.0 for an empty slice.
#[must_use]
pub fn median(x: &[f64]) -> f64 {
    quantile(x, 0.5).unwrap_or(0.0)
}

/// Minimum value; `f64::INFINITY` for an empty slice.
#[must_use]
pub fn min(x: &[f64]) -> f64 {
    x.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum value; `f64::NEG_INFINITY` for an empty slice.
#[must_use]
pub fn max(x: &[f64]) -> f64 {
    x.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Autocovariance at `lag` (biased estimator, divides by `n`).
#[must_use]
pub fn autocovariance(x: &[f64], lag: usize) -> f64 {
    let n = x.len();
    if lag >= n {
        return 0.0;
    }
    let m = mean(x);
    (0..n - lag)
        .map(|i| (x[i] - m) * (x[i + lag] - m))
        .sum::<f64>()
        / n as f64
}

/// Autocorrelation at `lag`: autocovariance normalized by lag-0 variance.
///
/// Returns 0.0 for a constant series (undefined autocorrelation).
#[must_use]
pub fn autocorrelation(x: &[f64], lag: usize) -> f64 {
    let c0 = autocovariance(x, 0);
    if c0 <= f64::EPSILON {
        return 0.0;
    }
    autocovariance(x, lag) / c0
}

/// Result of an ordinary least-squares line fit `y = slope * t + intercept`
/// against sample index `t = 0..n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope of the fitted line per sample step.
    pub slope: f64,
    /// Intercept at `t = 0`.
    pub intercept: f64,
    /// Pearson correlation coefficient between the series and the index.
    pub r_value: f64,
    /// Standard error of the slope estimate.
    pub stderr: f64,
}

/// Fit a least-squares line through `x` against its sample index.
///
/// # Errors
///
/// Returns [`DspError::TooShort`] when `x` has fewer than two samples.
pub fn linear_fit(x: &[f64]) -> Result<LinearFit, DspError> {
    let n = x.len();
    if n < 2 {
        return Err(DspError::TooShort { got: n, need: 2 });
    }
    let nf = n as f64;
    let t_mean = (nf - 1.0) / 2.0;
    let x_mean = mean(x);
    let mut s_tt = 0.0;
    let mut s_tx = 0.0;
    let mut s_xx = 0.0;
    for (i, &v) in x.iter().enumerate() {
        let dt = i as f64 - t_mean;
        let dx = v - x_mean;
        s_tt += dt * dt;
        s_tx += dt * dx;
        s_xx += dx * dx;
    }
    let slope = s_tx / s_tt;
    let intercept = x_mean - slope * t_mean;
    let r_value = if s_xx <= f64::EPSILON {
        0.0
    } else {
        s_tx / (s_tt * s_xx).sqrt()
    };
    let stderr = if n > 2 {
        let resid: f64 = x
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let e = v - (slope * i as f64 + intercept);
                e * e
            })
            .sum();
        (resid / ((nf - 2.0) * s_tt)).sqrt()
    } else {
        0.0
    };
    Ok(LinearFit {
        slope,
        intercept,
        r_value,
        stderr,
    })
}

/// Z-score normalize `x` in place; a constant series is left at zero mean.
pub fn zscore_in_place(x: &mut [f64]) {
    let m = mean(x);
    let s = std_dev(x);
    if s <= f64::EPSILON {
        for v in x.iter_mut() {
            *v -= m;
        }
    } else {
        for v in x.iter_mut() {
            *v = (*v - m) / s;
        }
    }
}

/// Sum of squared values (the "absolute energy" of tsfresh).
#[must_use]
pub fn abs_energy(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum()
}

/// Mean of absolute first differences.
#[must_use]
pub fn mean_abs_change(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    x.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (x.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} !~ {b}");
    }

    #[test]
    fn mean_basic() {
        assert_close(mean(&[1.0, 2.0, 3.0, 4.0]), 2.5, 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_and_std() {
        // Population variance of [2,4,4,4,5,5,7,9] is 4.
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_close(variance(&x), 4.0, 1e-12);
        assert_close(std_dev(&x), 2.0, 1e-12);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[3.0; 10]), 0.0);
    }

    #[test]
    fn skewness_symmetric_is_zero() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_close(skewness(&x), 0.0, 1e-12);
    }

    #[test]
    fn skewness_right_tail_positive() {
        let x = [1.0, 1.0, 1.0, 1.0, 10.0];
        assert!(skewness(&x) > 0.0);
    }

    #[test]
    fn kurtosis_of_constant_is_zero() {
        assert_eq!(kurtosis(&[5.0; 8]), 0.0);
    }

    #[test]
    fn kurtosis_heavy_tail_positive() {
        let mut x = vec![0.0; 50];
        x[0] = 30.0;
        x[49] = -30.0;
        assert!(kurtosis(&x) > 0.0);
    }

    #[test]
    fn quantile_endpoints_and_median() {
        let x = [3.0, 1.0, 2.0, 5.0, 4.0];
        assert_close(quantile(&x, 0.0).unwrap(), 1.0, 1e-12);
        assert_close(quantile(&x, 1.0).unwrap(), 5.0, 1e-12);
        assert_close(median(&x), 3.0, 1e-12);
    }

    #[test]
    fn quantile_interpolates() {
        let x = [0.0, 10.0];
        assert_close(quantile(&x, 0.25).unwrap(), 2.5, 1e-12);
    }

    #[test]
    fn quantile_rejects_bad_inputs() {
        assert_eq!(quantile(&[], 0.5), Err(DspError::EmptyInput));
        assert!(matches!(
            quantile(&[1.0], 1.5),
            Err(DspError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn autocorr_lag0_is_one() {
        let x = [1.0, 3.0, 2.0, 5.0, 4.0];
        assert_close(autocorrelation(&x, 0), 1.0, 1e-12);
    }

    #[test]
    fn autocorr_alternating_negative_lag1() {
        let x = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        assert!(autocorrelation(&x, 1) < -0.5);
    }

    #[test]
    fn autocorr_constant_is_zero() {
        assert_eq!(autocorrelation(&[2.0; 16], 1), 0.0);
    }

    #[test]
    fn autocov_lag_beyond_len_is_zero() {
        assert_eq!(autocovariance(&[1.0, 2.0], 5), 0.0);
    }

    #[test]
    fn linear_fit_exact_line() {
        let x: Vec<f64> = (0..10).map(|i| 3.0 * i as f64 + 2.0).collect();
        let fit = linear_fit(&x).unwrap();
        assert_close(fit.slope, 3.0, 1e-12);
        assert_close(fit.intercept, 2.0, 1e-12);
        assert_close(fit.r_value, 1.0, 1e-12);
        assert_close(fit.stderr, 0.0, 1e-9);
    }

    #[test]
    fn linear_fit_flat_line() {
        let fit = linear_fit(&[4.0; 8]).unwrap();
        assert_close(fit.slope, 0.0, 1e-12);
        assert_close(fit.intercept, 4.0, 1e-12);
        assert_eq!(fit.r_value, 0.0);
    }

    #[test]
    fn linear_fit_too_short() {
        assert_eq!(
            linear_fit(&[1.0]),
            Err(DspError::TooShort { got: 1, need: 2 })
        );
    }

    #[test]
    fn zscore_normalizes() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        zscore_in_place(&mut x);
        assert_close(mean(&x), 0.0, 1e-12);
        assert_close(std_dev(&x), 1.0, 1e-12);
    }

    #[test]
    fn zscore_constant_series_centers() {
        let mut x = vec![7.0; 4];
        zscore_in_place(&mut x);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn abs_energy_and_mean_abs_change() {
        assert_close(abs_energy(&[1.0, 2.0, 2.0]), 9.0, 1e-12);
        assert_close(mean_abs_change(&[1.0, 3.0, 0.0]), 2.5, 1e-12);
        assert_eq!(mean_abs_change(&[1.0]), 0.0);
    }

    #[test]
    fn min_max_basic() {
        let x = [3.0, -1.0, 7.0];
        assert_eq!(min(&x), -1.0);
        assert_eq!(max(&x), 7.0);
    }
}
