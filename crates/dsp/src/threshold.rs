//! The Dynamic Threshold (DT) algorithm (paper §IV-B2).
//!
//! A fixed threshold on `ΔRSS²` cannot separate gesture from rest because
//! finger distance changes the dynamic range. The paper adapts Otsu's
//! method: pick the threshold `I_seg` maximizing the inter-class variance
//! `ω₀·ω₁·(μ₀ − μ₁)²` between the gesture class `G = {r > I_seg}` and the
//! non-gesture class `NG = {r ≤ I_seg}` over accumulated readings.
//!
//! Two forms are provided: [`otsu_threshold`] for a batch slice, and
//! [`DynamicThreshold`], a streaming accumulator that starts from the
//! paper's initial guess (`I'_seg = 10`) and recalibrates as readings
//! accumulate.

use serde::{Deserialize, Serialize};

/// Number of histogram bins used by the streaming accumulator.
const BINS: usize = 256;

/// Inter-class variance `ω₀·ω₁·(μ₀−μ₁)²` for threshold `t` over `values`.
///
/// Exposed for tests and for the ablation bench comparing DT against fixed
/// thresholds.
#[must_use]
pub fn inter_class_variance(values: &[f64], t: f64) -> f64 {
    let m = values.len();
    if m == 0 {
        return 0.0;
    }
    let (mut n0, mut s0, mut n1, mut s1) = (0usize, 0.0f64, 0usize, 0.0f64);
    for &v in values {
        if v > t {
            n0 += 1;
            s0 += v;
        } else {
            n1 += 1;
            s1 += v;
        }
    }
    if n0 == 0 || n1 == 0 {
        return 0.0;
    }
    let w0 = n0 as f64 / m as f64;
    let w1 = n1 as f64 / m as f64;
    let mu0 = s0 / n0 as f64;
    let mu1 = s1 / n1 as f64;
    w0 * w1 * (mu0 - mu1) * (mu0 - mu1)
}

/// Batch Otsu threshold over `values`, evaluated exactly at every candidate
/// split between sorted distinct values.
///
/// Returns 0.0 for fewer than two samples or a constant series (any
/// threshold is equivalent then).
#[must_use]
pub fn otsu_threshold(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.len() < 2 {
        return 0.0;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len();
    let total: f64 = sorted.iter().sum();
    // Prefix sums: class NG = sorted[..=k] (values ≤ candidate), class G = rest.
    let mut best_t = 0.0;
    let mut best_var = -1.0;
    let mut prefix = 0.0;
    for k in 0..n - 1 {
        prefix += sorted[k];
        if sorted[k + 1] <= sorted[k] {
            continue; // not a distinct split point
        }
        let n1 = (k + 1) as f64; // NG size
        let n0 = (n - k - 1) as f64; // G size
        let mu1 = prefix / n1;
        let mu0 = (total - prefix) / n0;
        let w1 = n1 / n as f64;
        let w0 = n0 / n as f64;
        let var = w0 * w1 * (mu0 - mu1) * (mu0 - mu1);
        if var > best_var {
            best_var = var;
            // Split midway between the two distinct neighbours.
            best_t = 0.5 * (sorted[k] + sorted[k + 1]);
        }
    }
    if best_var < 0.0 {
        0.0 // constant series
    } else {
        best_t
    }
}

/// Streaming dynamic threshold: a histogram accumulator over `ΔRSS²`
/// readings that recomputes the Otsu threshold on demand.
///
/// The accumulator starts at the paper's initial guess `I'_seg = 10` and
/// keeps an exponentially-forgotten 256-bin histogram so the threshold
/// tracks changes in finger distance and ambient level. Memory is constant;
/// recalibration is `O(BINS)`.
///
/// # Example
///
/// ```
/// use airfinger_dsp::threshold::DynamicThreshold;
///
/// let mut dt = DynamicThreshold::default();
/// // Quiet floor near 1.0, gesture energy near 400.0.
/// for _ in 0..500 { dt.observe(1.0); }
/// for _ in 0..100 { dt.observe(400.0); }
/// let t = dt.threshold();
/// assert!(t > 1.0 && t < 400.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicThreshold {
    hist: Vec<f64>,
    /// Upper edge of the histogram range (log-scaled bins below).
    range_max: f64,
    initial: f64,
    forget: f64,
    observed: u64,
    cached: f64,
    recalibrate_every: u64,
}

impl DynamicThreshold {
    /// Create an accumulator with an `initial` threshold used before enough
    /// readings have been observed, and exponential forgetting factor
    /// `forget` in `(0, 1]` (1.0 = never forget).
    ///
    /// # Panics
    ///
    /// Panics if `forget` is outside `(0, 1]` or `initial` is negative.
    #[must_use]
    pub fn new(initial: f64, forget: f64) -> Self {
        assert!(
            forget > 0.0 && forget <= 1.0,
            "forget factor must be in (0, 1]"
        );
        assert!(initial >= 0.0, "initial threshold must be non-negative");
        DynamicThreshold {
            hist: vec![0.0; BINS],
            range_max: 1.0,
            initial,
            forget,
            observed: 0,
            cached: initial,
            recalibrate_every: 32,
        }
    }

    /// Number of readings observed so far.
    #[must_use]
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Feed one `ΔRSS²` reading into the accumulator.
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() || value < 0.0 {
            return;
        }
        // Grow the histogram range geometrically when a larger value arrives;
        // rescale existing mass into the new binning (coarse but adequate —
        // Otsu only needs the bimodal structure).
        if value > self.range_max {
            let mut new_max = self.range_max;
            while value > new_max {
                new_max *= 2.0;
            }
            let mut new_hist = vec![0.0; BINS];
            for (b, &mass) in self.hist.iter().enumerate() {
                if mass > 0.0 {
                    let center = self.bin_center(b);
                    let nb = Self::bin_for(center, new_max);
                    new_hist[nb] += mass;
                }
            }
            self.hist = new_hist;
            self.range_max = new_max;
        }
        if self.forget < 1.0 {
            for m in &mut self.hist {
                *m *= self.forget;
            }
        }
        let b = Self::bin_for(value, self.range_max);
        self.hist[b] += 1.0;
        self.observed += 1;
        if self.observed.is_multiple_of(self.recalibrate_every) {
            self.recalibrate();
        }
    }

    /// Feed a whole slice of readings.
    pub fn observe_all(&mut self, values: &[f64]) {
        for &v in values {
            self.observe(v);
        }
    }

    /// Current threshold `I_seg`, floored at the initial guess (the
    /// paper's `I'_seg` also acts as the minimum sensible level — below
    /// it the split would run inside the noise floor). Returns the initial
    /// guess until at least 64 readings have been observed.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        if self.observed < 64 {
            self.initial
        } else {
            self.cached.max(self.initial)
        }
    }

    /// Force an immediate Otsu recalibration from the histogram.
    ///
    /// The inter-class variance is maximized over **log magnitudes** (the
    /// bin index — bins are log-spaced). `ΔRSS²` spans decades: the noise
    /// floor sits orders of magnitude below the gesture cluster, and over
    /// an accumulating history the gesture magnitudes themselves spread
    /// widely. In the linear domain Otsu then splits *inside* the gesture
    /// cluster (the squared tail dominates `(μ₀−μ₁)²`) and the threshold
    /// ratchets upward after every strong gesture; in the log domain the
    /// noise/gesture split is the dominant mode, which is the separation
    /// the paper's DT exists to find.
    pub fn recalibrate(&mut self) {
        let total: f64 = self.hist.iter().sum();
        if total <= 0.0 {
            return;
        }
        // Otsu over the log-spaced histogram: the metric is the bin index.
        let weighted_sum: f64 = self
            .hist
            .iter()
            .enumerate()
            .map(|(b, m)| m * b as f64)
            .sum();
        let mut w1 = 0.0;
        let mut s1 = 0.0;
        let mut best_var = -1.0;
        let mut first_best = 0usize;
        let mut last_best = 0usize;
        for b in 0..BINS - 1 {
            w1 += self.hist[b];
            s1 += self.hist[b] * b as f64;
            if w1 <= 0.0 || w1 >= total {
                continue;
            }
            let w0 = total - w1;
            let mu1 = s1 / w1;
            let mu0 = (weighted_sum - s1) / w0;
            let var = (w0 / total) * (w1 / total) * (mu0 - mu1) * (mu0 - mu1);
            if var > best_var * (1.0 + 1e-9) {
                best_var = var;
                first_best = b;
                last_best = b;
            } else if var >= best_var * (1.0 - 1e-9) {
                // Empty bins between the two clusters tie exactly; keep the
                // plateau's extent so the threshold lands mid-gap rather
                // than hugging the noise cluster.
                last_best = b;
            }
        }
        if best_var >= 0.0 {
            let mid = (first_best + last_best) / 2;
            self.cached = 0.5 * (self.bin_center(mid) + self.bin_center(mid + 1));
        }
    }

    /// Log-scaled bin index for `value` within `[0, range_max]`.
    ///
    /// `ΔRSS²` spans orders of magnitude (squaring!), so logarithmic bins
    /// keep resolution near the noise floor where the split usually falls.
    fn bin_for(value: f64, range_max: f64) -> usize {
        if value <= 0.0 {
            return 0;
        }
        // Map [range_max * 2^-(BINS/8), range_max] logarithmically.
        let floor = range_max * (2.0f64).powi(-((BINS / 8) as i32));
        if value <= floor {
            return 0;
        }
        let frac = (value / floor).log2() / (range_max / floor).log2();
        ((frac * (BINS - 1) as f64).round() as usize).min(BINS - 1)
    }

    fn bin_center(&self, bin: usize) -> f64 {
        let floor = self.range_max * (2.0f64).powi(-((BINS / 8) as i32));
        if bin == 0 {
            return floor * 0.5;
        }
        let frac = bin as f64 / (BINS - 1) as f64;
        floor * (self.range_max / floor).powf(frac)
    }
}

impl Default for DynamicThreshold {
    /// The paper's initial guess `I'_seg = 10` with mild forgetting so the
    /// threshold tracks condition changes.
    fn default() -> Self {
        DynamicThreshold::new(10.0, 0.9995)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_otsu_separates_bimodal() {
        let mut v = vec![1.0; 100];
        v.extend(vec![100.0; 30]);
        let t = otsu_threshold(&v);
        assert!(t > 1.0 && t < 100.0, "t = {t}");
    }

    #[test]
    fn batch_otsu_constant_is_zero() {
        assert_eq!(otsu_threshold(&[5.0; 20]), 0.0);
    }

    #[test]
    fn batch_otsu_two_values() {
        let t = otsu_threshold(&[0.0, 10.0]);
        assert!(t > 0.0 && t < 10.0);
    }

    #[test]
    fn batch_otsu_maximizes_icv() {
        // The returned threshold should achieve at least the inter-class
        // variance of a grid of alternatives.
        let mut v: Vec<f64> = (0..200)
            .map(|i| if i % 3 == 0 { 50.0 } else { 2.0 })
            .collect();
        v.push(49.0);
        let t = otsu_threshold(&v);
        let best = inter_class_variance(&v, t);
        for cand in (0..60).map(|i| i as f64) {
            assert!(
                best >= inter_class_variance(&v, cand) - 1e-9,
                "candidate {cand} beats otsu {t}"
            );
        }
    }

    #[test]
    fn batch_otsu_threshold_between_class_means() {
        let mut v = vec![3.0; 50];
        v.extend(vec![80.0; 50]);
        let t = otsu_threshold(&v);
        assert!(t > 3.0 && t < 80.0);
    }

    #[test]
    fn streaming_starts_at_initial() {
        let dt = DynamicThreshold::new(10.0, 1.0);
        assert_eq!(dt.threshold(), 10.0);
    }

    #[test]
    fn streaming_adapts_to_scale() {
        // Low-range scene: floor 0.5, gesture 20 → threshold well below 20.
        let mut lo = DynamicThreshold::new(10.0, 1.0);
        for _ in 0..400 {
            lo.observe(0.5);
        }
        for _ in 0..80 {
            lo.observe(20.0);
        }
        lo.recalibrate();
        let t_lo = lo.threshold();
        assert!(t_lo > 0.5 && t_lo < 20.0, "t_lo = {t_lo}");

        // High-range scene: floor 50, gesture 5000 → threshold scales up.
        let mut hi = DynamicThreshold::new(10.0, 1.0);
        for _ in 0..400 {
            hi.observe(50.0);
        }
        for _ in 0..80 {
            hi.observe(5000.0);
        }
        hi.recalibrate();
        let t_hi = hi.threshold();
        assert!(t_hi > 50.0 && t_hi < 5000.0, "t_hi = {t_hi}");
        assert!(t_hi > t_lo);
    }

    #[test]
    fn streaming_ignores_non_finite() {
        let mut dt = DynamicThreshold::default();
        dt.observe(f64::NAN);
        dt.observe(f64::INFINITY);
        dt.observe(-3.0);
        assert_eq!(dt.observed(), 0);
    }

    #[test]
    fn forgetting_tracks_condition_change() {
        let mut dt = DynamicThreshold::new(10.0, 0.995);
        // First regime: tiny values.
        for _ in 0..1000 {
            dt.observe(0.2);
        }
        for _ in 0..200 {
            dt.observe(8.0);
        }
        dt.recalibrate();
        let t1 = dt.threshold();
        // Regime shift: closer finger, everything 100x larger.
        for _ in 0..2000 {
            dt.observe(20.0);
        }
        for _ in 0..400 {
            dt.observe(800.0);
        }
        dt.recalibrate();
        let t2 = dt.threshold();
        assert!(t2 > t1 * 5.0, "t1 = {t1}, t2 = {t2}");
    }

    #[test]
    #[should_panic(expected = "forget factor")]
    fn bad_forget_panics() {
        let _ = DynamicThreshold::new(10.0, 0.0);
    }

    #[test]
    fn icv_degenerate_cases() {
        assert_eq!(inter_class_variance(&[], 1.0), 0.0);
        assert_eq!(inter_class_variance(&[5.0, 5.0], 10.0), 0.0); // one empty class
    }
}
