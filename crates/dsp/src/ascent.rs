//! Signal ascending point detection (paper §IV-D1, §IV-E).
//!
//! ZEBRA determines scroll direction from the *order* in which each
//! photodiode's signal starts ascending, and the gesture-family
//! distinguisher compares the spread of ascending points across photodiodes
//! to the `I_g` threshold. The paper finds ascending points "using the SBC
//! algorithm": the first sample within a gesture window where the SBC energy
//! of a channel exceeds the segmentation threshold.

use crate::sbc::Sbc;

/// Detector for per-channel signal ascending points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AscentDetector {
    sbc: Sbc,
    /// Require this many consecutive above-threshold samples before
    /// declaring an ascent (debounce against single-sample noise spikes).
    confirm: usize,
}

impl AscentDetector {
    /// Create a detector with the given SBC operator and confirmation run
    /// length.
    ///
    /// # Panics
    ///
    /// Panics if `confirm` is zero.
    #[must_use]
    pub fn new(sbc: Sbc, confirm: usize) -> Self {
        assert!(confirm > 0, "confirmation run must be positive");
        AscentDetector { sbc, confirm }
    }

    /// First ascending point of a raw RSS channel against `threshold`
    /// (applied to the SBC-transformed trace), or `None` if the channel
    /// never ascends.
    #[must_use]
    pub fn first_ascent(&self, rss: &[f64], threshold: f64) -> Option<usize> {
        let delta = self.sbc.apply(rss);
        self.first_ascent_delta(&delta, threshold)
    }

    /// Like [`AscentDetector::first_ascent`] but over an already
    /// SBC-transformed trace.
    #[must_use]
    pub fn first_ascent_delta(&self, delta: &[f64], threshold: f64) -> Option<usize> {
        let mut run = 0usize;
        for (i, &v) in delta.iter().enumerate() {
            if v > threshold {
                run += 1;
                if run >= self.confirm {
                    return Some(i + 1 - run);
                }
            } else {
                run = 0;
            }
        }
        None
    }

    /// Ascending points for every channel of a gesture window; one entry per
    /// channel, `None` where a channel never ascends.
    #[must_use]
    pub fn ascents(&self, channels: &[Vec<f64>], thresholds: &[f64]) -> Vec<Option<usize>> {
        channels
            .iter()
            .enumerate()
            .map(|(k, c)| {
                let t = thresholds.get(k).copied().unwrap_or(0.0);
                self.first_ascent(c, t)
            })
            .collect()
    }

    /// Spread (max − min, in samples) of the ascending points that exist.
    /// Returns `None` when fewer than two channels ascend — the
    /// distinguisher then falls back to the single-channel rules of Alg. 1.
    #[must_use]
    pub fn ascent_spread(ascents: &[Option<usize>]) -> Option<usize> {
        let present: Vec<usize> = ascents.iter().flatten().copied().collect();
        if present.len() < 2 {
            return None;
        }
        let (lo, hi) = present
            .iter()
            .fold((usize::MAX, 0), |(lo, hi), &a| (lo.min(a), hi.max(a)));
        Some(hi - lo)
    }
}

impl Default for AscentDetector {
    /// Paper-consistent defaults: 1-sample SBC window, 2-sample
    /// confirmation.
    fn default() -> Self {
        AscentDetector::new(Sbc::default(), 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_trace(step_at: usize, len: usize, amp: f64) -> Vec<f64> {
        (0..len)
            .map(|i| {
                if i >= step_at {
                    amp * ((i - step_at) as f64 * 0.9).sin().abs() + amp
                } else {
                    1.0
                }
            })
            .collect()
    }

    #[test]
    fn detects_step_onset() {
        let rss = step_trace(20, 60, 50.0);
        let det = AscentDetector::default();
        let a = det.first_ascent(&rss, 10.0).unwrap();
        assert!((19..=22).contains(&a), "ascent at {a}");
    }

    #[test]
    fn quiet_channel_has_no_ascent() {
        let rss = vec![5.0; 40];
        assert_eq!(AscentDetector::default().first_ascent(&rss, 1.0), None);
    }

    #[test]
    fn confirmation_rejects_single_spike() {
        let mut delta = vec![0.0; 30];
        delta[10] = 100.0; // lone spike
        let det = AscentDetector::new(Sbc::default(), 2);
        assert_eq!(det.first_ascent_delta(&delta, 1.0), None);
    }

    #[test]
    fn confirmation_accepts_sustained_rise() {
        let mut delta = vec![0.0; 30];
        for v in delta.iter_mut().take(15).skip(10) {
            *v = 100.0;
        }
        let det = AscentDetector::new(Sbc::default(), 3);
        assert_eq!(det.first_ascent_delta(&delta, 1.0), Some(10));
    }

    #[test]
    fn ordering_of_two_channels() {
        let early = step_trace(10, 80, 40.0);
        let late = step_trace(40, 80, 40.0);
        let det = AscentDetector::default();
        let ascents = det.ascents(&[early, late], &[10.0, 10.0]);
        let a0 = ascents[0].unwrap();
        let a1 = ascents[1].unwrap();
        assert!(a0 < a1, "P1 {a0} should ascend before P3 {a1}");
    }

    #[test]
    fn spread_requires_two_channels() {
        assert_eq!(AscentDetector::ascent_spread(&[Some(5), None, None]), None);
        assert_eq!(
            AscentDetector::ascent_spread(&[Some(5), None, Some(25)]),
            Some(20)
        );
        assert_eq!(AscentDetector::ascent_spread(&[None, None]), None);
    }

    #[test]
    fn spread_zero_for_simultaneous() {
        assert_eq!(
            AscentDetector::ascent_spread(&[Some(7), Some(7), Some(7)]),
            Some(0)
        );
    }

    #[test]
    #[should_panic(expected = "confirmation run")]
    fn zero_confirm_panics() {
        let _ = AscentDetector::new(Sbc::default(), 0);
    }
}
