//! The Square Based Calculation (SBC) algorithm (paper §IV-B1).
//!
//! The paper models raw photodiode readings as
//! `RSS = S_ges + N_static + N_dyn`: the gesture signal, a static reflection
//! offset (the rest of the hand, fixed surroundings) and a low-magnitude
//! dynamic component (ambient drift, moving objects outside the shield).
//!
//! SBC slides a window of size `w` over the readings, subtracts each window
//! from the previous one, and squares the magnitude. Differencing removes
//! `N_static` exactly; squaring relatively suppresses the small `N_dyn`
//! while amplifying the larger gesture-induced swings. The transform is a
//! single pass — `O(n)` time, as the paper highlights.

use crate::error::DspError;

/// Batch and streaming implementation of the Square Based Calculation.
///
/// `w` is the window size in samples. The paper uses `w = 10 ms`, i.e. one
/// sample at the prototype's 100 Hz sampling rate.
///
/// # Example
///
/// ```
/// use airfinger_dsp::sbc::Sbc;
///
/// // A constant offset (static noise) vanishes entirely.
/// let out = Sbc::new(1).apply(&[5.0, 5.0, 5.0, 5.0]);
/// assert!(out.iter().all(|&v| v == 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sbc {
    window: usize,
}

impl Sbc {
    /// Create an SBC operator with window size `window` (in samples).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "sbc window must be positive");
        Sbc { window }
    }

    /// The configured window size in samples.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Apply SBC to a whole trace, producing one `ΔRSS²` value per input
    /// sample. The first `window` outputs are zero (no previous window yet),
    /// so the output length equals the input length.
    #[must_use]
    pub fn apply(&self, rss: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; rss.len()];
        for i in self.window..rss.len() {
            let d = rss[i] - rss[i - self.window];
            out[i] = d * d;
        }
        out
    }

    /// Apply SBC to several channels at once, preserving channel order.
    #[must_use]
    pub fn apply_multi(&self, channels: &[Vec<f64>]) -> Vec<Vec<f64>> {
        channels.iter().map(|c| self.apply(c)).collect()
    }

    /// Create a constant-memory streaming state for sample-by-sample
    /// processing (used by the real-time engine).
    #[must_use]
    pub fn stream(&self) -> SbcStream {
        SbcStream {
            window: self.window,
            ring: Vec::with_capacity(self.window),
            head: 0,
        }
    }
}

impl Default for Sbc {
    /// The paper's setting: `w = 10 ms` = 1 sample at 100 Hz.
    fn default() -> Self {
        Sbc::new(1)
    }
}

/// Streaming SBC state: holds the last `window` samples in a ring buffer.
///
/// Produced by [`Sbc::stream`]; feeding a full trace through
/// [`SbcStream::push`] yields exactly the same values as [`Sbc::apply`].
#[derive(Debug, Clone)]
pub struct SbcStream {
    window: usize,
    ring: Vec<f64>,
    head: usize,
}

impl SbcStream {
    /// Push one raw RSS sample; returns the `ΔRSS²` value for this sample
    /// (zero until the ring buffer has filled).
    pub fn push(&mut self, rss: f64) -> f64 {
        if self.ring.len() < self.window {
            self.ring.push(rss);
            return 0.0;
        }
        let prev = self.ring[self.head];
        self.ring[self.head] = rss;
        self.head = (self.head + 1) % self.window;
        let d = rss - prev;
        d * d
    }

    /// Discard all buffered state.
    pub fn reset(&mut self) {
        self.ring.clear();
        self.head = 0;
    }
}

/// Gesture/rest contrast diagnostic used by the Fig. 5 experiment.
///
/// The paper observes that "RSS values are relatively stable when no gesture
/// is performed and there exist significant changes when a gesture is
/// performed" and that "after the process of SBC, this observation will be
/// more obvious". This helper quantifies that: the ratio of mean in-gesture
/// magnitude to mean out-of-gesture magnitude, computed on the raw RSS
/// (which still carries the static offset `N_static`) and on the SBC output.
///
/// `gesture_spans` are `(start, end)` sample ranges known to contain
/// gestures. Returns `(contrast_raw, contrast_sbc)`; SBC should raise the
/// contrast by orders of magnitude because it removes `N_static`.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `rss` is empty or the spans cover
/// none or all of the trace (no reference remains on one side).
pub fn snr_improvement(
    rss: &[f64],
    gesture_spans: &[(usize, usize)],
    sbc: Sbc,
) -> Result<(f64, f64), DspError> {
    if rss.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let delta = sbc.apply(rss);
    let contrast = |signal: &[f64]| -> Result<f64, DspError> {
        let mut mask = vec![false; signal.len()];
        for &(s, e) in gesture_spans {
            for m in mask.iter_mut().take(e.min(signal.len())).skip(s) {
                *m = true;
            }
        }
        let (mut in_sum, mut in_n, mut out_sum, mut out_n) = (0.0, 0usize, 0.0, 0usize);
        for (i, &v) in signal.iter().enumerate() {
            if mask[i] {
                in_sum += v.abs();
                in_n += 1;
            } else {
                out_sum += v.abs();
                out_n += 1;
            }
        }
        if in_n == 0 || out_n == 0 {
            return Err(DspError::EmptyInput);
        }
        let rest = (out_sum / out_n as f64).max(f64::MIN_POSITIVE);
        Ok((in_sum / in_n as f64) / rest)
    };
    Ok((contrast(rss)?, contrast(&delta)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_constant_offset() {
        let rss = vec![42.0; 100];
        let out = Sbc::new(3).apply(&rss);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn first_window_outputs_are_zero() {
        let rss = [1.0, 2.0, 3.0, 4.0];
        let out = Sbc::new(2).apply(&rss);
        assert_eq!(out[0], 0.0);
        assert_eq!(out[1], 0.0);
        assert_eq!(out[2], 4.0); // (3-1)^2
        assert_eq!(out[3], 4.0); // (4-2)^2
    }

    #[test]
    fn output_length_matches_input() {
        for n in [0usize, 1, 5, 17] {
            let rss: Vec<f64> = (0..n).map(|i| i as f64).collect();
            assert_eq!(Sbc::new(4).apply(&rss).len(), n);
        }
    }

    #[test]
    fn squares_differences() {
        let rss = [0.0, 3.0, -1.0];
        let out = Sbc::new(1).apply(&rss);
        assert_eq!(out, vec![0.0, 9.0, 16.0]);
    }

    #[test]
    fn amplifies_large_swings_relative_to_small() {
        // Small dynamic noise (amplitude 1) vs gesture swing (amplitude 10):
        // squaring turns a 10x input ratio into a 100x output ratio.
        let noise = Sbc::new(1).apply(&[0.0, 1.0]);
        let ges = Sbc::new(1).apply(&[0.0, 10.0]);
        assert!((ges[1] / noise[1] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn streaming_matches_batch() {
        let rss: Vec<f64> = (0..50).map(|i| ((i * 7919) % 23) as f64 * 0.5).collect();
        for w in [1usize, 2, 5, 10] {
            let sbc = Sbc::new(w);
            let batch = sbc.apply(&rss);
            let mut stream = sbc.stream();
            let streamed: Vec<f64> = rss.iter().map(|&v| stream.push(v)).collect();
            assert_eq!(batch, streamed, "window {w}");
        }
    }

    #[test]
    fn stream_reset_restarts() {
        let sbc = Sbc::new(2);
        let mut s = sbc.stream();
        s.push(1.0);
        s.push(2.0);
        s.push(3.0);
        s.reset();
        assert_eq!(s.push(9.0), 0.0);
        assert_eq!(s.push(9.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = Sbc::new(0);
    }

    #[test]
    fn multi_channel_preserves_order() {
        let chans = vec![vec![0.0, 1.0], vec![0.0, 2.0]];
        let out = Sbc::new(1).apply_multi(&chans);
        assert_eq!(out[0][1], 1.0);
        assert_eq!(out[1][1], 4.0);
    }

    #[test]
    fn snr_improves_after_sbc() {
        // Quiet baseline with slow drift + strong burst in the middle.
        let n = 300;
        let mut rss: Vec<f64> = (0..n)
            .map(|i| 100.0 + 0.5 * (i as f64 * 0.01).sin())
            .collect();
        for (k, v) in rss.iter_mut().enumerate().take(180).skip(120) {
            *v += 30.0 * ((k as f64) * 0.8).sin();
        }
        let (raw, after) = snr_improvement(&rss, &[(120, 180)], Sbc::default()).unwrap();
        assert!(after > raw, "snr should improve: raw={raw}, sbc={after}");
    }

    #[test]
    fn snr_empty_input_errors() {
        assert!(snr_improvement(&[], &[(0, 1)], Sbc::default()).is_err());
    }

    #[test]
    fn default_window_is_one_sample() {
        assert_eq!(Sbc::default().window(), 1);
    }
}
