//! Autoregressive modelling: Yule–Walker AR fits (Durbin–Levinson),
//! partial autocorrelation, and the augmented Dickey–Fuller statistic.
//!
//! These back the "AR", "Partial autocorrelation" and "Augmented dickey
//! fuller" feature families of Table I.

use crate::error::DspError;
use crate::stats::autocovariance;

/// Fit an AR(`order`) model by the Yule–Walker equations using the
/// Durbin–Levinson recursion. Returns the coefficients `φ₁..φ_p` such that
/// `x_t ≈ Σ φ_k · x_{t−k}` (after mean removal).
///
/// # Errors
///
/// Returns [`DspError::TooShort`] when `x.len() <= order`, and
/// [`DspError::Numerical`] when the series has zero variance.
pub fn ar_coefficients(x: &[f64], order: usize) -> Result<Vec<f64>, DspError> {
    if order == 0 {
        return Ok(Vec::new());
    }
    if x.len() <= order {
        return Err(DspError::TooShort {
            got: x.len(),
            need: order + 1,
        });
    }
    let r: Vec<f64> = (0..=order).map(|k| autocovariance(x, k)).collect();
    if r[0] <= f64::EPSILON {
        return Err(DspError::Numerical("zero-variance series has no ar fit"));
    }
    let (phi, _) = durbin_levinson(&r, order)?;
    Ok(phi)
}

/// Partial autocorrelation function up to `max_lag` (lag 0 entry is 1.0).
///
/// The PACF at lag `k` is the last coefficient of the AR(`k`) Yule–Walker
/// fit — exactly how tsfresh/statsmodels compute it.
///
/// # Errors
///
/// Returns [`DspError::TooShort`] when `x.len() <= max_lag`.
pub fn partial_autocorrelation(x: &[f64], max_lag: usize) -> Result<Vec<f64>, DspError> {
    if x.len() <= max_lag {
        return Err(DspError::TooShort {
            got: x.len(),
            need: max_lag + 1,
        });
    }
    let mut out = Vec::with_capacity(max_lag + 1);
    out.push(1.0);
    if max_lag == 0 {
        return Ok(out);
    }
    let r: Vec<f64> = (0..=max_lag).map(|k| autocovariance(x, k)).collect();
    if r[0] <= f64::EPSILON {
        // Constant series: PACF is zero at every positive lag.
        out.extend(std::iter::repeat_n(0.0, max_lag));
        return Ok(out);
    }
    // Durbin–Levinson produces every intermediate reflection coefficient.
    let (_, reflections) = durbin_levinson(&r, max_lag)?;
    out.extend(reflections);
    Ok(out)
}

/// Durbin–Levinson recursion over autocovariances `r[0..=order]`.
/// Returns (final AR coefficients, reflection coefficients per order).
fn durbin_levinson(r: &[f64], order: usize) -> Result<(Vec<f64>, Vec<f64>), DspError> {
    let mut phi = vec![0.0; order];
    let mut prev = vec![0.0; order];
    let mut reflections = Vec::with_capacity(order);
    let mut err = r[0];
    for k in 1..=order {
        let mut acc = r[k];
        for j in 1..k {
            acc -= prev[j - 1] * r[k - j];
        }
        if err <= f64::EPSILON {
            // Perfectly predictable: remaining reflections are zero.
            reflections.extend(std::iter::repeat_n(0.0, order - k + 1));
            phi[..k - 1].copy_from_slice(&prev[..k - 1]);
            return Ok((phi, reflections));
        }
        let kappa = acc / err;
        reflections.push(kappa);
        phi[k - 1] = kappa;
        for j in 1..k {
            phi[j - 1] = prev[j - 1] - kappa * prev[k - 1 - j];
        }
        prev[..k].copy_from_slice(&phi[..k]);
        err *= 1.0 - kappa * kappa;
    }
    Ok((phi, reflections))
}

/// Augmented Dickey–Fuller t-statistic with `lags` lagged differences and a
/// constant term. Strongly negative values indicate stationarity.
///
/// Model: `Δx_t = α + γ·x_{t−1} + Σ β_i·Δx_{t−i} + ε_t`; the statistic is
/// `γ̂ / se(γ̂)`.
///
/// # Errors
///
/// Returns [`DspError::TooShort`] when too few observations remain after
/// lagging, and [`DspError::Numerical`] for singular regressions (e.g. a
/// constant series).
#[allow(clippy::needless_range_loop)] // parallel-indexing several matrices
pub fn adf_stat(x: &[f64], lags: usize) -> Result<f64, DspError> {
    let n = x.len();
    let need = lags + 4;
    if n < need {
        return Err(DspError::TooShort { got: n, need });
    }
    let dx: Vec<f64> = x.windows(2).map(|w| w[1] - w[0]).collect();
    // Rows: t = lags..dx.len(); regressors: [1, x[t], dx[t-1..t-lags]].
    let p = 2 + lags;
    let rows = dx.len() - lags;
    if rows <= p {
        return Err(DspError::TooShort {
            got: n,
            need: p + lags + 2,
        });
    }
    // Row-major p×p normal matrix; one flat buffer, factored in place by
    // the dual-RHS solve below (no per-solve clone).
    let mut xtx = vec![0.0; p * p];
    // Column-major RHS pair: column 0 is Xᵀy, column 1 is e₁ (whose
    // solution is the second column of (XᵀX)⁻¹). Solving both against one
    // factorization replaces the former two clone-and-refactor passes.
    let mut rhs = vec![0.0; 2 * p];
    let mut yty = 0.0;
    let mut design_row = vec![0.0; p];
    for t in lags..dx.len() {
        design_row[0] = 1.0;
        design_row[1] = x[t];
        for i in 0..lags {
            design_row[2 + i] = dx[t - 1 - i];
        }
        let y = dx[t];
        yty += y * y;
        for a in 0..p {
            rhs[a] += design_row[a] * y;
            for b in a..p {
                xtx[a * p + b] += design_row[a] * design_row[b];
            }
        }
    }
    for a in 0..p {
        for b in 0..a {
            xtx[a * p + b] = xtx[b * p + a];
        }
    }
    rhs[p + 1] = 1.0; // e₁ for the [(XᵀX)⁻¹]_{11} entry
    if !solve_spd_multi(&mut xtx, p, &mut rhs) {
        return Err(DspError::Numerical("singular adf regression"));
    }
    let (beta, inv_col) = rhs.split_at(p);
    // Residual variance via β·(Xᵀy); the solve overwrote Xᵀy in place,
    // so rebuild the inner product with one pass over the design rows.
    let mut explained = 0.0;
    for t in lags..dx.len() {
        let mut fit = beta[0] + beta[1] * x[t];
        for i in 0..lags {
            fit += beta[2 + i] * dx[t - 1 - i];
        }
        explained += fit * dx[t];
    }
    let dof = rows - p;
    let sigma2 = ((yty - explained) / dof as f64).max(0.0);
    // se(γ̂) = sqrt(σ² · [(XᵀX)⁻¹]_{11}) from the e₁ solution column.
    let var_gamma = sigma2 * inv_col[1];
    if var_gamma <= 0.0 {
        return Err(DspError::Numerical(
            "non-positive variance for adf statistic",
        ));
    }
    Ok(beta[1] / var_gamma.sqrt())
}

/// Solve `A·X = B` in place for symmetric positive-definite-ish `A`
/// (row-major `n×n` in `a`) and one or more right-hand-side columns
/// stored column-major in `rhs` (`rhs.len()` a multiple of `n`), by
/// Gaussian elimination with partial pivoting. On success the solution
/// columns overwrite `rhs`; `a` is consumed as factorization scratch —
/// nothing is cloned or reallocated. Returns `false` when singular.
#[allow(clippy::needless_range_loop)] // classic pivoting index dance
fn solve_spd_multi(a: &mut [f64], n: usize, rhs: &mut [f64]) -> bool {
    debug_assert_eq!(a.len(), n * n);
    debug_assert_eq!(rhs.len() % n.max(1), 0);
    let cols = rhs.len().checked_div(n).unwrap_or(0);
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        for r in col + 1..n {
            if a[r * n + col].abs() > a[piv * n + col].abs() {
                piv = r;
            }
        }
        if a[piv * n + col].abs() < 1e-12 {
            return false;
        }
        if piv != col {
            for c in 0..n {
                a.swap(col * n + c, piv * n + c);
            }
            for k in 0..cols {
                rhs.swap(k * n + col, k * n + piv);
            }
        }
        // Eliminate.
        for r in col + 1..n {
            let f = a[r * n + col] / a[col * n + col];
            for c in col..n {
                a[r * n + c] -= f * a[col * n + c];
            }
            for k in 0..cols {
                rhs[k * n + r] -= f * rhs[k * n + col];
            }
        }
    }
    // Back substitution, per column.
    for k in 0..cols {
        for col in (0..n).rev() {
            for c in col + 1..n {
                let sub = a[col * n + c] * rhs[k * n + c];
                rhs[k * n + col] -= sub;
            }
            rhs[k * n + col] /= a[col * n + col];
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-noise in [-0.5, 0.5] (splitmix64 finalizer).
    fn noise(i: usize) -> f64 {
        let mut z = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ((z >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    }

    #[test]
    fn ar1_recovers_coefficient() {
        // x_t = 0.7 x_{t-1} + ε
        let mut x = vec![0.0f64; 3000];
        for i in 1..x.len() {
            x[i] = 0.7 * x[i - 1] + noise(i);
        }
        let phi = ar_coefficients(&x, 1).unwrap();
        assert!((phi[0] - 0.7).abs() < 0.08, "phi = {}", phi[0]);
    }

    #[test]
    fn ar2_recovers_both_coefficients() {
        let (a1, a2) = (0.5, -0.3);
        let mut x = vec![0.0f64; 5000];
        for i in 2..x.len() {
            x[i] = a1 * x[i - 1] + a2 * x[i - 2] + noise(i);
        }
        let phi = ar_coefficients(&x, 2).unwrap();
        assert!((phi[0] - a1).abs() < 0.1, "phi1 = {}", phi[0]);
        assert!((phi[1] - a2).abs() < 0.1, "phi2 = {}", phi[1]);
    }

    #[test]
    fn ar_order_zero_is_empty() {
        assert!(ar_coefficients(&[1.0, 2.0, 3.0], 0).unwrap().is_empty());
    }

    #[test]
    fn ar_too_short_errors() {
        assert!(matches!(
            ar_coefficients(&[1.0, 2.0], 5),
            Err(DspError::TooShort { .. })
        ));
    }

    #[test]
    fn ar_constant_errors() {
        assert!(matches!(
            ar_coefficients(&[4.0; 50], 2),
            Err(DspError::Numerical(_))
        ));
    }

    #[test]
    fn pacf_lag0_is_one() {
        let x: Vec<f64> = (0..100).map(noise).collect();
        let p = partial_autocorrelation(&x, 5).unwrap();
        assert_eq!(p[0], 1.0);
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn pacf_of_ar1_cuts_off_after_lag1() {
        let mut x = vec![0.0f64; 5000];
        for i in 1..x.len() {
            x[i] = 0.8 * x[i - 1] + noise(i);
        }
        let p = partial_autocorrelation(&x, 4).unwrap();
        assert!(p[1] > 0.6, "pacf(1) = {}", p[1]);
        for (k, v) in p.iter().enumerate().skip(2) {
            assert!(v.abs() < 0.12, "pacf({k}) = {v}");
        }
    }

    #[test]
    fn pacf_of_white_noise_is_small() {
        let x: Vec<f64> = (0..4000).map(noise).collect();
        let p = partial_autocorrelation(&x, 5).unwrap();
        for (k, v) in p.iter().enumerate().skip(1) {
            assert!(v.abs() < 0.1, "pacf({k}) = {v}");
        }
    }

    #[test]
    fn pacf_constant_series_is_zero() {
        let p = partial_autocorrelation(&[2.0; 40], 3).unwrap();
        assert_eq!(&p[1..], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn adf_stationary_is_strongly_negative() {
        // White noise is maximally stationary: ADF should be very negative.
        let x: Vec<f64> = (0..500).map(noise).collect();
        let t = adf_stat(&x, 1).unwrap();
        assert!(t < -5.0, "adf = {t}");
    }

    #[test]
    fn adf_random_walk_is_near_zero() {
        let mut x = vec![0.0f64; 500];
        for i in 1..x.len() {
            x[i] = x[i - 1] + noise(i);
        }
        let t = adf_stat(&x, 1).unwrap();
        assert!(t > -3.0, "adf = {t}"); // fails to reject unit root strongly
    }

    #[test]
    fn adf_stationary_more_negative_than_walk() {
        let stat: Vec<f64> = (0..400).map(noise).collect();
        let mut walk = vec![0.0f64; 400];
        for i in 1..walk.len() {
            walk[i] = walk[i - 1] + noise(i + 7);
        }
        let t_s = adf_stat(&stat, 2).unwrap();
        let t_w = adf_stat(&walk, 2).unwrap();
        assert!(t_s < t_w, "stationary {t_s} vs walk {t_w}");
    }

    #[test]
    fn adf_too_short_errors() {
        assert!(matches!(
            adf_stat(&[1.0, 2.0, 3.0], 2),
            Err(DspError::TooShort { .. })
        ));
    }

    #[test]
    fn adf_constant_errors() {
        assert!(adf_stat(&[5.0; 100], 1).is_err());
    }

    #[test]
    fn solver_solves_small_system() {
        let mut a = [4.0, 1.0, 1.0, 3.0];
        let mut rhs = [1.0, 2.0];
        assert!(solve_spd_multi(&mut a, 2, &mut rhs));
        assert!((4.0 * rhs[0] + rhs[1] - 1.0).abs() < 1e-9);
        assert!((rhs[0] + 3.0 * rhs[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn solver_handles_multiple_rhs_columns_in_one_factorization() {
        // Solve against b₀ = (1, 2) and b₁ = e₁ simultaneously; the second
        // column must land on the first column of A⁻¹ — exactly how
        // adf_stat extracts [(XᵀX)⁻¹]_{11} without a second factorization.
        let mut a = [4.0, 1.0, 1.0, 3.0];
        let mut rhs = [1.0, 2.0, 1.0, 0.0];
        assert!(solve_spd_multi(&mut a, 2, &mut rhs));
        assert!((4.0 * rhs[0] + rhs[1] - 1.0).abs() < 1e-9);
        assert!((rhs[0] + 3.0 * rhs[1] - 2.0).abs() < 1e-9);
        // A⁻¹ = (1/11)·[[3, -1], [-1, 4]]; its first column is (3, -1)/11.
        assert!((rhs[2] - 3.0 / 11.0).abs() < 1e-9);
        assert!((rhs[3] + 1.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn solver_pivots_rows_to_avoid_tiny_leading_entries() {
        // Leading 0 forces a row swap; both RHS columns must swap with it.
        let mut a = [0.0, 2.0, 3.0, 1.0];
        let mut rhs = [4.0, 5.0, 2.0, 0.0];
        assert!(solve_spd_multi(&mut a, 2, &mut rhs));
        assert!((2.0 * rhs[1] - 4.0).abs() < 1e-9, "x = {rhs:?}");
        assert!((3.0 * rhs[0] + rhs[1] - 5.0).abs() < 1e-9, "x = {rhs:?}");
        assert!((2.0 * rhs[3] - 2.0).abs() < 1e-9, "x = {rhs:?}");
        assert!((3.0 * rhs[2] + rhs[3]).abs() < 1e-9, "x = {rhs:?}");
    }

    #[test]
    fn solver_detects_singular() {
        let mut a = [1.0, 2.0, 2.0, 4.0];
        let mut rhs = [1.0, 2.0];
        assert!(!solve_spd_multi(&mut a, 2, &mut rhs));
    }
}
