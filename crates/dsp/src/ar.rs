//! Autoregressive modelling: Yule–Walker AR fits (Durbin–Levinson),
//! partial autocorrelation, and the augmented Dickey–Fuller statistic.
//!
//! These back the "AR", "Partial autocorrelation" and "Augmented dickey
//! fuller" feature families of Table I.

use crate::error::DspError;
use crate::stats::autocovariance;

/// Fit an AR(`order`) model by the Yule–Walker equations using the
/// Durbin–Levinson recursion. Returns the coefficients `φ₁..φ_p` such that
/// `x_t ≈ Σ φ_k · x_{t−k}` (after mean removal).
///
/// # Errors
///
/// Returns [`DspError::TooShort`] when `x.len() <= order`, and
/// [`DspError::Numerical`] when the series has zero variance.
pub fn ar_coefficients(x: &[f64], order: usize) -> Result<Vec<f64>, DspError> {
    if order == 0 {
        return Ok(Vec::new());
    }
    if x.len() <= order {
        return Err(DspError::TooShort {
            got: x.len(),
            need: order + 1,
        });
    }
    let r: Vec<f64> = (0..=order).map(|k| autocovariance(x, k)).collect();
    if r[0] <= f64::EPSILON {
        return Err(DspError::Numerical("zero-variance series has no ar fit"));
    }
    let (phi, _) = durbin_levinson(&r, order)?;
    Ok(phi)
}

/// Partial autocorrelation function up to `max_lag` (lag 0 entry is 1.0).
///
/// The PACF at lag `k` is the last coefficient of the AR(`k`) Yule–Walker
/// fit — exactly how tsfresh/statsmodels compute it.
///
/// # Errors
///
/// Returns [`DspError::TooShort`] when `x.len() <= max_lag`.
pub fn partial_autocorrelation(x: &[f64], max_lag: usize) -> Result<Vec<f64>, DspError> {
    if x.len() <= max_lag {
        return Err(DspError::TooShort {
            got: x.len(),
            need: max_lag + 1,
        });
    }
    let mut out = Vec::with_capacity(max_lag + 1);
    out.push(1.0);
    if max_lag == 0 {
        return Ok(out);
    }
    let r: Vec<f64> = (0..=max_lag).map(|k| autocovariance(x, k)).collect();
    if r[0] <= f64::EPSILON {
        // Constant series: PACF is zero at every positive lag.
        out.extend(std::iter::repeat_n(0.0, max_lag));
        return Ok(out);
    }
    // Durbin–Levinson produces every intermediate reflection coefficient.
    let (_, reflections) = durbin_levinson(&r, max_lag)?;
    out.extend(reflections);
    Ok(out)
}

/// Durbin–Levinson recursion over autocovariances `r[0..=order]`.
/// Returns (final AR coefficients, reflection coefficients per order).
fn durbin_levinson(r: &[f64], order: usize) -> Result<(Vec<f64>, Vec<f64>), DspError> {
    let mut phi = vec![0.0; order];
    let mut prev = vec![0.0; order];
    let mut reflections = Vec::with_capacity(order);
    let mut err = r[0];
    for k in 1..=order {
        let mut acc = r[k];
        for j in 1..k {
            acc -= prev[j - 1] * r[k - j];
        }
        if err <= f64::EPSILON {
            // Perfectly predictable: remaining reflections are zero.
            reflections.extend(std::iter::repeat_n(0.0, order - k + 1));
            phi[..k - 1].copy_from_slice(&prev[..k - 1]);
            return Ok((phi, reflections));
        }
        let kappa = acc / err;
        reflections.push(kappa);
        phi[k - 1] = kappa;
        for j in 1..k {
            phi[j - 1] = prev[j - 1] - kappa * prev[k - 1 - j];
        }
        prev[..k].copy_from_slice(&phi[..k]);
        err *= 1.0 - kappa * kappa;
    }
    Ok((phi, reflections))
}

/// Augmented Dickey–Fuller t-statistic with `lags` lagged differences and a
/// constant term. Strongly negative values indicate stationarity.
///
/// Model: `Δx_t = α + γ·x_{t−1} + Σ β_i·Δx_{t−i} + ε_t`; the statistic is
/// `γ̂ / se(γ̂)`.
///
/// # Errors
///
/// Returns [`DspError::TooShort`] when too few observations remain after
/// lagging, and [`DspError::Numerical`] for singular regressions (e.g. a
/// constant series).
#[allow(clippy::needless_range_loop)] // parallel-indexing several matrices
pub fn adf_stat(x: &[f64], lags: usize) -> Result<f64, DspError> {
    let n = x.len();
    let need = lags + 4;
    if n < need {
        return Err(DspError::TooShort { got: n, need });
    }
    let dx: Vec<f64> = x.windows(2).map(|w| w[1] - w[0]).collect();
    // Rows: t = lags..dx.len(); regressors: [1, x[t], dx[t-1..t-lags]].
    let p = 2 + lags;
    let rows = dx.len() - lags;
    if rows <= p {
        return Err(DspError::TooShort {
            got: n,
            need: p + lags + 2,
        });
    }
    let mut xtx = vec![vec![0.0; p]; p];
    let mut xty = vec![0.0; p];
    let mut yty = 0.0;
    let mut design_row = vec![0.0; p];
    for t in lags..dx.len() {
        design_row[0] = 1.0;
        design_row[1] = x[t];
        for i in 0..lags {
            design_row[2 + i] = dx[t - 1 - i];
        }
        let y = dx[t];
        yty += y * y;
        for a in 0..p {
            xty[a] += design_row[a] * y;
            for b in a..p {
                xtx[a][b] += design_row[a] * design_row[b];
            }
        }
    }
    for a in 0..p {
        for b in 0..a {
            xtx[a][b] = xtx[b][a];
        }
    }
    let beta =
        solve_spd(&mut xtx.clone(), &xty).ok_or(DspError::Numerical("singular adf regression"))?;
    // Residual variance.
    let explained: f64 = beta.iter().zip(&xty).map(|(b, v)| b * v).sum();
    let dof = rows - p;
    let sigma2 = ((yty - explained) / dof as f64).max(0.0);
    // se(γ̂) = sqrt(σ² · [(XᵀX)⁻¹]_{11}); get that entry by solving against e₁.
    let mut e1 = vec![0.0; p];
    e1[1] = 1.0;
    let inv_col =
        solve_spd(&mut xtx.clone(), &e1).ok_or(DspError::Numerical("singular adf regression"))?;
    let var_gamma = sigma2 * inv_col[1];
    if var_gamma <= 0.0 {
        return Err(DspError::Numerical(
            "non-positive variance for adf statistic",
        ));
    }
    Ok(beta[1] / var_gamma.sqrt())
}

/// Solve `A·x = b` for symmetric positive-definite-ish `A` by Gaussian
/// elimination with partial pivoting. Returns `None` when singular.
#[allow(clippy::needless_range_loop)] // classic pivoting index dance
fn solve_spd(a: &mut [Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let n = b.len();
    let mut x = b.to_vec();
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        for r in col + 1..n {
            if a[r][col].abs() > a[piv][col].abs() {
                piv = r;
            }
        }
        if a[piv][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, piv);
        x.swap(col, piv);
        // Eliminate.
        for r in col + 1..n {
            let f = a[r][col] / a[col][col];
            for c in col..n {
                a[r][c] -= f * a[col][c];
            }
            x[r] -= f * x[col];
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        for c in col + 1..n {
            x[col] -= a[col][c] * x[c];
        }
        x[col] /= a[col][col];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-noise in [-0.5, 0.5] (splitmix64 finalizer).
    fn noise(i: usize) -> f64 {
        let mut z = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ((z >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    }

    #[test]
    fn ar1_recovers_coefficient() {
        // x_t = 0.7 x_{t-1} + ε
        let mut x = vec![0.0f64; 3000];
        for i in 1..x.len() {
            x[i] = 0.7 * x[i - 1] + noise(i);
        }
        let phi = ar_coefficients(&x, 1).unwrap();
        assert!((phi[0] - 0.7).abs() < 0.08, "phi = {}", phi[0]);
    }

    #[test]
    fn ar2_recovers_both_coefficients() {
        let (a1, a2) = (0.5, -0.3);
        let mut x = vec![0.0f64; 5000];
        for i in 2..x.len() {
            x[i] = a1 * x[i - 1] + a2 * x[i - 2] + noise(i);
        }
        let phi = ar_coefficients(&x, 2).unwrap();
        assert!((phi[0] - a1).abs() < 0.1, "phi1 = {}", phi[0]);
        assert!((phi[1] - a2).abs() < 0.1, "phi2 = {}", phi[1]);
    }

    #[test]
    fn ar_order_zero_is_empty() {
        assert!(ar_coefficients(&[1.0, 2.0, 3.0], 0).unwrap().is_empty());
    }

    #[test]
    fn ar_too_short_errors() {
        assert!(matches!(
            ar_coefficients(&[1.0, 2.0], 5),
            Err(DspError::TooShort { .. })
        ));
    }

    #[test]
    fn ar_constant_errors() {
        assert!(matches!(
            ar_coefficients(&[4.0; 50], 2),
            Err(DspError::Numerical(_))
        ));
    }

    #[test]
    fn pacf_lag0_is_one() {
        let x: Vec<f64> = (0..100).map(noise).collect();
        let p = partial_autocorrelation(&x, 5).unwrap();
        assert_eq!(p[0], 1.0);
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn pacf_of_ar1_cuts_off_after_lag1() {
        let mut x = vec![0.0f64; 5000];
        for i in 1..x.len() {
            x[i] = 0.8 * x[i - 1] + noise(i);
        }
        let p = partial_autocorrelation(&x, 4).unwrap();
        assert!(p[1] > 0.6, "pacf(1) = {}", p[1]);
        for (k, v) in p.iter().enumerate().skip(2) {
            assert!(v.abs() < 0.12, "pacf({k}) = {v}");
        }
    }

    #[test]
    fn pacf_of_white_noise_is_small() {
        let x: Vec<f64> = (0..4000).map(noise).collect();
        let p = partial_autocorrelation(&x, 5).unwrap();
        for (k, v) in p.iter().enumerate().skip(1) {
            assert!(v.abs() < 0.1, "pacf({k}) = {v}");
        }
    }

    #[test]
    fn pacf_constant_series_is_zero() {
        let p = partial_autocorrelation(&[2.0; 40], 3).unwrap();
        assert_eq!(&p[1..], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn adf_stationary_is_strongly_negative() {
        // White noise is maximally stationary: ADF should be very negative.
        let x: Vec<f64> = (0..500).map(noise).collect();
        let t = adf_stat(&x, 1).unwrap();
        assert!(t < -5.0, "adf = {t}");
    }

    #[test]
    fn adf_random_walk_is_near_zero() {
        let mut x = vec![0.0f64; 500];
        for i in 1..x.len() {
            x[i] = x[i - 1] + noise(i);
        }
        let t = adf_stat(&x, 1).unwrap();
        assert!(t > -3.0, "adf = {t}"); // fails to reject unit root strongly
    }

    #[test]
    fn adf_stationary_more_negative_than_walk() {
        let stat: Vec<f64> = (0..400).map(noise).collect();
        let mut walk = vec![0.0f64; 400];
        for i in 1..walk.len() {
            walk[i] = walk[i - 1] + noise(i + 7);
        }
        let t_s = adf_stat(&stat, 2).unwrap();
        let t_w = adf_stat(&walk, 2).unwrap();
        assert!(t_s < t_w, "stationary {t_s} vs walk {t_w}");
    }

    #[test]
    fn adf_too_short_errors() {
        assert!(matches!(
            adf_stat(&[1.0, 2.0, 3.0], 2),
            Err(DspError::TooShort { .. })
        ));
    }

    #[test]
    fn adf_constant_errors() {
        assert!(adf_stat(&[5.0; 100], 1).is_err());
    }

    #[test]
    fn solver_solves_small_system() {
        let mut a = vec![vec![4.0, 1.0], vec![1.0, 3.0]];
        let x = solve_spd(&mut a, &[1.0, 2.0]).unwrap();
        assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-9);
        assert!((x[0] + 3.0 * x[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn solver_detects_singular() {
        let mut a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve_spd(&mut a, &[1.0, 2.0]).is_none());
    }
}
