//! Error types for the DSP crate.

use std::error::Error;
use std::fmt;

/// Errors produced by DSP operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DspError {
    /// The input series is empty where a non-empty series is required.
    EmptyInput,
    /// The input series is shorter than the minimum length the operation
    /// needs (e.g. an AR fit of order `p` needs more than `p` samples).
    TooShort {
        /// Number of samples the caller provided.
        got: usize,
        /// Minimum number of samples the operation requires.
        need: usize,
    },
    /// A parameter is outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: &'static str,
    },
    /// The FFT input length is not a power of two.
    NotPowerOfTwo {
        /// Length of the offending input.
        len: usize,
    },
    /// A numeric computation failed to converge or produced a non-finite
    /// value.
    Numerical(&'static str),
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::EmptyInput => write!(f, "input series is empty"),
            DspError::TooShort { got, need } => {
                write!(
                    f,
                    "input series too short: got {got} samples, need at least {need}"
                )
            }
            DspError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            DspError::NotPowerOfTwo { len } => {
                write!(f, "fft input length {len} is not a power of two")
            }
            DspError::Numerical(what) => write!(f, "numerical failure: {what}"),
        }
    }
}

impl Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = DspError::TooShort { got: 3, need: 8 };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('8'));
        assert!(s.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DspError>();
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", DspError::EmptyInput).is_empty());
    }
}
