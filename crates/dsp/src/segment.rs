//! Gesture segmentation against a (dynamic) threshold (paper §IV-B2).
//!
//! A starting point is declared when `ΔRSS²` exceeds the threshold and an
//! ending point when it falls back below. Segments separated by less than
//! `t_e` (the paper uses 100 ms) are clustered into a single gesture —
//! this is what keeps a *double click* from splitting into two clicks.

use serde::{Deserialize, Serialize};

/// A half-open sample range `[start, end)` containing one gesture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Segment {
    /// First sample index of the gesture.
    pub start: usize,
    /// One past the last sample index of the gesture.
    pub end: usize,
}

impl Segment {
    /// Construct a segment; `start` must not exceed `end`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    #[must_use]
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start <= end, "segment start after end");
        Segment { start, end }
    }

    /// Segment length in samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the segment covers no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Slice `trace` to this segment (clamped to the trace length).
    #[must_use]
    pub fn slice<'a>(&self, trace: &'a [f64]) -> &'a [f64] {
        let s = self.start.min(trace.len());
        let e = self.end.min(trace.len());
        &trace[s..e]
    }
}

/// Configuration for the [`Segmenter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmenterConfig {
    /// Maximum gap (in samples) between segments that are still clustered
    /// into one gesture — the paper's `t_e` (100 ms = 10 samples at 100 Hz).
    pub merge_gap: usize,
    /// Discard merged segments shorter than this many samples (debounce
    /// against single-sample spikes).
    pub min_len: usize,
    /// Pad each final segment by this many samples on both sides so the
    /// attack and release of the gesture are retained for feature
    /// extraction.
    pub pad: usize,
}

impl Default for SegmenterConfig {
    /// Paper settings at 100 Hz: `t_e` = 100 ms → 10 samples; a 50 ms
    /// debounce; 30 ms padding.
    fn default() -> Self {
        SegmenterConfig {
            merge_gap: 10,
            min_len: 5,
            pad: 3,
        }
    }
}

/// Batch gesture segmenter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Segmenter {
    config: SegmenterConfig,
}

impl Segmenter {
    /// Create a segmenter with the given configuration.
    #[must_use]
    pub fn new(config: SegmenterConfig) -> Self {
        Segmenter { config }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> SegmenterConfig {
        self.config
    }

    /// Segment a `ΔRSS²` trace against `threshold`.
    ///
    /// Raw above-threshold runs are found first, then runs separated by at
    /// most `merge_gap` samples are merged, short results are discarded and
    /// the survivors are padded.
    #[must_use]
    pub fn segment(&self, delta: &[f64], threshold: f64) -> Vec<Segment> {
        let raw = raw_runs(delta, threshold);
        let merged = merge_runs(&raw, self.config.merge_gap);
        let padded: Vec<Segment> = merged
            .into_iter()
            .filter(|s| s.len() >= self.config.min_len)
            .map(|s| Segment {
                start: s.start.saturating_sub(self.config.pad),
                end: (s.end + self.config.pad).min(delta.len()),
            })
            .collect();
        // Padding can make neighbours overlap (two short runs separated by
        // slightly more than the merge gap but less than twice the pad);
        // fuse any such pairs so the output stays sorted and disjoint.
        merge_runs(&padded, 0)
    }

    /// Segment a multi-channel `ΔRSS²` trace: a sample is "active" if any
    /// channel exceeds its threshold. `thresholds` must have one entry per
    /// channel.
    ///
    /// # Panics
    ///
    /// Panics if `thresholds.len() != channels.len()`.
    #[must_use]
    pub fn segment_multi(&self, channels: &[Vec<f64>], thresholds: &[f64]) -> Vec<Segment> {
        assert_eq!(
            channels.len(),
            thresholds.len(),
            "one threshold per channel"
        );
        if channels.is_empty() {
            return Vec::new();
        }
        let n = channels.iter().map(Vec::len).min().unwrap_or(0);
        let combined: Vec<f64> = (0..n)
            .map(|i| {
                channels
                    .iter()
                    .zip(thresholds)
                    .map(|(c, &t)| if t > 0.0 { c[i] / t } else { c[i] })
                    .fold(0.0f64, f64::max)
            })
            .collect();
        // After normalization each channel's threshold maps to 1.0.
        self.segment(&combined, 1.0)
    }
}

/// Contiguous above-threshold runs with no merging.
fn raw_runs(delta: &[f64], threshold: f64) -> Vec<Segment> {
    let mut out = Vec::new();
    let mut start: Option<usize> = None;
    for (i, &v) in delta.iter().enumerate() {
        if v > threshold {
            if start.is_none() {
                start = Some(i);
            }
        } else if let Some(s) = start.take() {
            out.push(Segment::new(s, i));
        }
    }
    if let Some(s) = start {
        out.push(Segment::new(s, delta.len()));
    }
    out
}

/// Merge runs whose gap is at most `gap` samples.
fn merge_runs(runs: &[Segment], gap: usize) -> Vec<Segment> {
    let mut out: Vec<Segment> = Vec::with_capacity(runs.len());
    for &r in runs {
        match out.last_mut() {
            Some(last) if r.start <= last.end + gap => last.end = r.end.max(last.end),
            _ => out.push(r),
        }
    }
    out
}

/// Streaming segmenter: feed `ΔRSS²` samples one at a time and receive a
/// completed [`Segment`] once the trailing gap exceeds `merge_gap`.
///
/// This is the form the real-time engine uses; feeding a whole trace through
/// produces the same segments as [`Segmenter::segment`] (modulo the final
/// unterminated segment, retrievable with [`StreamingSegmenter::flush`]).
#[derive(Debug, Clone)]
pub struct StreamingSegmenter {
    config: SegmenterConfig,
    position: usize,
    current: Option<Segment>,
    gap: usize,
}

impl StreamingSegmenter {
    /// Create a streaming segmenter.
    #[must_use]
    pub fn new(config: SegmenterConfig) -> Self {
        StreamingSegmenter {
            config,
            position: 0,
            current: None,
            gap: 0,
        }
    }

    /// Sample index of the next sample to be pushed.
    #[must_use]
    pub fn position(&self) -> usize {
        self.position
    }

    /// Whether a gesture is currently open (above threshold or within the
    /// merge gap).
    #[must_use]
    pub fn in_gesture(&self) -> bool {
        self.current.is_some()
    }

    /// Push one `ΔRSS²` value with its segmentation threshold. Returns a
    /// finished segment when one closes.
    pub fn push(&mut self, delta: f64, threshold: f64) -> Option<Segment> {
        let i = self.position;
        self.position += 1;
        if delta > threshold {
            match &mut self.current {
                Some(seg) => seg.end = i + 1,
                None => self.current = Some(Segment::new(i, i + 1)),
            }
            self.gap = 0;
            None
        } else if let Some(seg) = self.current {
            self.gap += 1;
            if self.gap > self.config.merge_gap {
                self.current = None;
                self.gap = 0;
                self.finalize(seg)
            } else {
                None
            }
        } else {
            None
        }
    }

    /// Close and return any open segment (end of stream).
    pub fn flush(&mut self) -> Option<Segment> {
        let seg = self.current.take()?;
        self.gap = 0;
        self.finalize(seg)
    }

    fn finalize(&self, seg: Segment) -> Option<Segment> {
        if seg.len() < self.config.min_len {
            return None;
        }
        Some(Segment {
            start: seg.start.saturating_sub(self.config.pad),
            end: (seg.end + self.config.pad).min(self.position),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(merge_gap: usize, min_len: usize, pad: usize) -> SegmenterConfig {
        SegmenterConfig {
            merge_gap,
            min_len,
            pad,
        }
    }

    #[test]
    fn single_burst_detected() {
        let mut d = vec![0.0; 20];
        for v in d.iter_mut().take(15).skip(5) {
            *v = 10.0;
        }
        let segs = Segmenter::new(cfg(2, 1, 0)).segment(&d, 1.0);
        assert_eq!(segs, vec![Segment::new(5, 15)]);
    }

    #[test]
    fn nearby_bursts_merge() {
        let mut d = vec![0.0; 40];
        for v in d.iter_mut().take(10).skip(5) {
            *v = 10.0;
        }
        // Gap of 3 samples, merge_gap = 5 → one gesture.
        for v in d.iter_mut().take(20).skip(13) {
            *v = 10.0;
        }
        let segs = Segmenter::new(cfg(5, 1, 0)).segment(&d, 1.0);
        assert_eq!(segs, vec![Segment::new(5, 20)]);
    }

    #[test]
    fn distant_bursts_stay_separate() {
        let mut d = vec![0.0; 60];
        for v in d.iter_mut().take(10).skip(5) {
            *v = 10.0;
        }
        for v in d.iter_mut().take(45).skip(40) {
            *v = 10.0;
        }
        let segs = Segmenter::new(cfg(5, 1, 0)).segment(&d, 1.0);
        assert_eq!(segs.len(), 2);
    }

    #[test]
    fn short_spikes_discarded() {
        let mut d = vec![0.0; 30];
        d[10] = 100.0; // one-sample spike
        let segs = Segmenter::new(cfg(2, 3, 0)).segment(&d, 1.0);
        assert!(segs.is_empty());
    }

    #[test]
    fn padding_applied_and_clamped() {
        let mut d = vec![0.0; 12];
        for v in d.iter_mut().take(10).skip(1) {
            *v = 5.0;
        }
        let segs = Segmenter::new(cfg(1, 1, 4)).segment(&d, 1.0);
        assert_eq!(segs, vec![Segment::new(0, 12)]); // clamped both ends
    }

    #[test]
    fn burst_running_to_end_is_closed() {
        let mut d = vec![0.0; 10];
        for v in d.iter_mut().skip(6) {
            *v = 9.0;
        }
        let segs = Segmenter::new(cfg(2, 1, 0)).segment(&d, 1.0);
        assert_eq!(segs, vec![Segment::new(6, 10)]);
    }

    #[test]
    fn empty_input_no_segments() {
        assert!(Segmenter::default().segment(&[], 1.0).is_empty());
    }

    #[test]
    fn all_below_threshold_no_segments() {
        assert!(Segmenter::default().segment(&[0.1; 50], 1.0).is_empty());
    }

    #[test]
    fn segments_never_overlap_and_are_sorted() {
        // Pseudo-random activity pattern.
        let d: Vec<f64> = (0..500)
            .map(|i| {
                if (i * 2654435761u64 as usize) % 7 < 2 {
                    10.0
                } else {
                    0.0
                }
            })
            .collect();
        let segs = Segmenter::new(cfg(3, 2, 1)).segment(&d, 1.0);
        for w in segs.windows(2) {
            assert!(w[0].end <= w[1].start, "{w:?}");
        }
    }

    #[test]
    fn multi_channel_any_active() {
        let c1 = {
            let mut v = vec![0.0; 30];
            for x in v.iter_mut().take(10).skip(5) {
                *x = 10.0;
            }
            v
        };
        let c2 = {
            let mut v = vec![0.0; 30];
            for x in v.iter_mut().take(22).skip(18) {
                *x = 10.0;
            }
            v
        };
        let segs = Segmenter::new(cfg(2, 1, 0)).segment_multi(&[c1, c2], &[1.0, 1.0]);
        assert_eq!(segs.len(), 2);
    }

    #[test]
    #[should_panic(expected = "one threshold per channel")]
    fn multi_channel_threshold_count_mismatch_panics() {
        let _ = Segmenter::default().segment_multi(&[vec![0.0]], &[1.0, 2.0]);
    }

    #[test]
    fn streaming_matches_batch() {
        let mut d = vec![0.0; 200];
        for v in d.iter_mut().take(30).skip(20) {
            *v = 10.0;
        }
        for v in d.iter_mut().take(38).skip(34) {
            *v = 10.0;
        } // merges with previous (gap 4 < 5)
        for v in d.iter_mut().take(120).skip(100) {
            *v = 10.0;
        }
        let config = cfg(5, 2, 2);
        let batch = Segmenter::new(config).segment(&d, 1.0);
        let mut stream = StreamingSegmenter::new(config);
        let mut streamed = Vec::new();
        for &v in &d {
            if let Some(s) = stream.push(v, 1.0) {
                streamed.push(s);
            }
        }
        if let Some(s) = stream.flush() {
            streamed.push(s);
        }
        assert_eq!(batch, streamed);
    }

    #[test]
    fn streaming_flush_returns_open_segment() {
        let mut s = StreamingSegmenter::new(cfg(3, 2, 0));
        for _ in 0..5 {
            s.push(10.0, 1.0);
        }
        assert!(s.in_gesture());
        let seg = s.flush().unwrap();
        assert_eq!(seg, Segment::new(0, 5));
        assert!(!s.in_gesture());
    }

    #[test]
    fn streaming_discards_short() {
        let mut s = StreamingSegmenter::new(cfg(1, 5, 0));
        s.push(10.0, 1.0);
        s.push(0.0, 1.0);
        let closed = s.push(0.0, 1.0);
        assert!(closed.is_none());
    }

    #[test]
    fn segment_slice_clamps() {
        let t = [1.0, 2.0, 3.0];
        assert_eq!(Segment::new(1, 10).slice(&t), &[2.0, 3.0]);
        assert!(Segment::new(5, 9).slice(&t).is_empty());
    }

    #[test]
    #[should_panic(expected = "segment start after end")]
    fn inverted_segment_panics() {
        let _ = Segment::new(5, 2);
    }
}
