//! Smoothing and detrending filters.
//!
//! The prototype's amplifier chain low-pass filters the photodiode output;
//! these helpers play that role in the simulator and also back a few
//! Table-I features (e.g. trend removal before entropy estimation).

/// Centered moving average with window `w` (clamped at the edges).
///
/// # Panics
///
/// Panics if `w` is zero.
#[must_use]
pub fn moving_average(x: &[f64], w: usize) -> Vec<f64> {
    assert!(w > 0, "window must be positive");
    if x.is_empty() {
        return Vec::new();
    }
    let half = w / 2;
    let mut out = Vec::with_capacity(x.len());
    // Prefix sums for O(n).
    let mut prefix = Vec::with_capacity(x.len() + 1);
    prefix.push(0.0);
    let mut running = 0.0;
    for &v in x {
        running += v;
        prefix.push(running);
    }
    for i in 0..x.len() {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(x.len());
        out.push((prefix[hi] - prefix[lo]) / (hi - lo) as f64);
    }
    out
}

/// Sliding median with window `w` (clamped at the edges). `O(n · w log w)`.
///
/// # Panics
///
/// Panics if `w` is zero.
#[must_use]
pub fn median_filter(x: &[f64], w: usize) -> Vec<f64> {
    assert!(w > 0, "window must be positive");
    let half = w / 2;
    (0..x.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(x.len());
            let mut win: Vec<f64> = x[lo..hi].to_vec();
            win.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            win[win.len() / 2]
        })
        .collect()
}

/// First-order exponential smoothing with factor `alpha` in `(0, 1]`.
///
/// # Panics
///
/// Panics if `alpha` is outside `(0, 1]`.
#[must_use]
pub fn exponential_smooth(x: &[f64], alpha: f64) -> Vec<f64> {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
    let mut out = Vec::with_capacity(x.len());
    let mut state = match x.first() {
        Some(&v) => v,
        None => return out,
    };
    for &v in x {
        state = alpha * v + (1.0 - alpha) * state;
        out.push(state);
    }
    out
}

/// Remove the least-squares linear trend from `x`.
#[must_use]
pub fn detrend(x: &[f64]) -> Vec<f64> {
    match crate::stats::linear_fit(x) {
        Ok(fit) => x
            .iter()
            .enumerate()
            .map(|(i, &v)| v - (fit.slope * i as f64 + fit.intercept))
            .collect(),
        Err(_) => x.to_vec(),
    }
}

/// Resample `x` to exactly `n` points by linear interpolation (endpoint
/// preserving). Used to put gesture windows of different durations on a
/// common time base for template comparison.
///
/// # Panics
///
/// Panics if `n` is zero.
#[must_use]
pub fn resample_linear(x: &[f64], n: usize) -> Vec<f64> {
    assert!(n > 0, "target length must be positive");
    if x.is_empty() {
        return vec![0.0; n];
    }
    if x.len() == 1 {
        return vec![x[0]; n];
    }
    (0..n)
        .map(|i| {
            let pos = i as f64 * (x.len() - 1) as f64 / (n - 1).max(1) as f64;
            let lo = pos.floor() as usize;
            let hi = (lo + 1).min(x.len() - 1);
            x[lo] + (x[hi] - x[lo]) * (pos - lo as f64)
        })
        .collect()
}

/// Streaming single-pole low-pass filter (RC filter), the discrete model of
/// the prototype's amplifier bandwidth limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LowPass {
    alpha: f64,
    state: Option<f64>,
}

impl LowPass {
    /// Build from a cutoff frequency and sample rate (both Hz).
    ///
    /// # Panics
    ///
    /// Panics if either rate is non-positive.
    #[must_use]
    pub fn from_cutoff(cutoff_hz: f64, sample_rate_hz: f64) -> Self {
        assert!(
            cutoff_hz > 0.0 && sample_rate_hz > 0.0,
            "rates must be positive"
        );
        let rc = 1.0 / (2.0 * std::f64::consts::PI * cutoff_hz);
        let dt = 1.0 / sample_rate_hz;
        LowPass {
            alpha: dt / (rc + dt),
            state: None,
        }
    }

    /// Filter one sample.
    pub fn push(&mut self, v: f64) -> f64 {
        let s = match self.state {
            Some(prev) => prev + self.alpha * (v - prev),
            None => v,
        };
        self.state = Some(s);
        s
    }

    /// Clear filter memory.
    pub fn reset(&mut self) {
        self.state = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_constant_unchanged() {
        let x = vec![3.0; 10];
        assert_eq!(moving_average(&x, 5), x);
    }

    #[test]
    fn moving_average_smooths_spike() {
        let mut x = vec![0.0; 11];
        x[5] = 10.0;
        let y = moving_average(&x, 5);
        assert!(y[5] < 10.0 && y[5] > 0.0);
        // Mass is conserved within the interior.
        assert!((y.iter().sum::<f64>() - 10.0).abs() < 1.0);
    }

    #[test]
    fn moving_average_window_one_identity() {
        let x = [1.0, 5.0, 2.0];
        assert_eq!(moving_average(&x, 1), x.to_vec());
    }

    #[test]
    fn median_filter_kills_impulse() {
        let mut x = vec![1.0; 9];
        x[4] = 100.0;
        let y = median_filter(&x, 3);
        assert_eq!(y[4], 1.0);
    }

    #[test]
    fn median_filter_preserves_step() {
        let x: Vec<f64> = (0..10).map(|i| if i < 5 { 0.0 } else { 10.0 }).collect();
        let y = median_filter(&x, 3);
        assert_eq!(y[2], 0.0);
        assert_eq!(y[7], 10.0);
    }

    #[test]
    fn exponential_smooth_converges_to_constant() {
        let x = vec![10.0; 50];
        let y = exponential_smooth(&x, 0.3);
        assert!((y[49] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn exponential_alpha_one_is_identity() {
        let x = [1.0, 4.0, 2.0];
        assert_eq!(exponential_smooth(&x, 1.0), x.to_vec());
    }

    #[test]
    fn detrend_removes_line() {
        let x: Vec<f64> = (0..20).map(|i| 2.0 * i as f64 + 5.0).collect();
        let y = detrend(&x);
        assert!(y.iter().all(|&v| v.abs() < 1e-9));
    }

    #[test]
    fn detrend_keeps_oscillation() {
        let x: Vec<f64> = (0..64)
            .map(|i| (i as f64 * 0.7).sin() + 0.1 * i as f64)
            .collect();
        let y = detrend(&x);
        let amp = y.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(amp > 0.5);
    }

    #[test]
    fn lowpass_attenuates_high_freq() {
        let mut lp = LowPass::from_cutoff(5.0, 100.0);
        // 40 Hz sine at 100 Hz sampling: should be strongly attenuated.
        let hi: Vec<f64> = (0..200)
            .map(|i| (2.0 * std::f64::consts::PI * 40.0 * i as f64 / 100.0).sin())
            .collect();
        let out: Vec<f64> = hi.iter().map(|&v| lp.push(v)).collect();
        let in_amp = hi.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let out_amp = out[100..].iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(out_amp < 0.4 * in_amp, "out {out_amp} vs in {in_amp}");
    }

    #[test]
    fn lowpass_passes_dc() {
        let mut lp = LowPass::from_cutoff(5.0, 100.0);
        let mut last = 0.0;
        for _ in 0..500 {
            last = lp.push(7.0);
        }
        assert!((last - 7.0).abs() < 1e-6);
    }

    #[test]
    fn empty_inputs() {
        assert!(moving_average(&[], 3).is_empty());
        assert!(median_filter(&[], 3).is_empty());
        assert!(exponential_smooth(&[], 0.5).is_empty());
        assert!(detrend(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn moving_average_zero_window_panics() {
        let _ = moving_average(&[1.0], 0);
    }

    #[test]
    fn resample_preserves_endpoints() {
        let x = [1.0, 5.0, 2.0, 8.0];
        let y = resample_linear(&x, 9);
        assert_eq!(y.len(), 9);
        assert_eq!(y[0], 1.0);
        assert_eq!(y[8], 8.0);
    }

    #[test]
    fn resample_identity_at_same_length() {
        let x = [1.0, 2.0, 3.0];
        assert_eq!(resample_linear(&x, 3), x.to_vec());
    }

    #[test]
    fn resample_handles_degenerate_inputs() {
        assert_eq!(resample_linear(&[], 4), vec![0.0; 4]);
        assert_eq!(resample_linear(&[7.0], 3), vec![7.0; 3]);
    }

    #[test]
    fn resample_downsamples_linearly() {
        let x: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let y = resample_linear(&x, 11);
        for (k, v) in y.iter().enumerate() {
            assert!((v - 10.0 * k as f64).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "target length")]
    fn resample_zero_target_panics() {
        let _ = resample_linear(&[1.0], 0);
    }
}
