//! Fleet serving: many concurrent streaming-engine sessions behind one
//! trained model.
//!
//! The paper's end state is airFinger running on every smart device; this
//! crate is the serving layer that takes the single-session
//! [`StreamingEngine`](airfinger_core::engine::StreamingEngine) and
//! multiplexes N independent sessions over the workspace's bounded worker
//! pool. The design splits into four pieces:
//!
//! - **Sharding** ([`shard`]): sessions are partitioned by
//!   `session_id % shards`; each shard exclusively owns its session table
//!   and is drained by exactly one worker per round via
//!   [`airfinger_parallel::par_for_each_mut`], so the push path takes no
//!   locks at all — not per sample, not per shard.
//! - **Batched inference** ([`Fleet::run_round`]): a session whose push
//!   closes a gesture window *pauses* instead of classifying inline; at
//!   the end of the round every pending feature row across every shard is
//!   classified in one matrix-shaped
//!   [`predict_features_batch`](airfinger_core::detect::DetectRecognizer::predict_features_batch)
//!   pass. The forest's batch path is pinned bit-identical to its serial
//!   path, and the engine's deferred-push protocol replays each monitor
//!   observation exactly as an inline `push` would have — so a fleet run
//!   produces the same recognitions, in the same order, as N solo runs.
//! - **Admission and backpressure** ([`Fleet::admit`],
//!   [`Fleet::enqueue`]): shard capacity bounds admissions and a bounded
//!   per-session queue bounds memory; a producer that overruns its queue
//!   has its session deterministically shed (the whole session is evicted
//!   and logged, surviving sessions are untouched).
//! - **SLO rollup** ([`rollup`]): every session carries its own
//!   [`EngineMonitor`](airfinger_obs::monitor::EngineMonitor); per-shard
//!   worst-health and fleet-wide aggregates publish through the global
//!   registry under the `fleet_*` schema rows (DESIGN.md §9/§12).
//!
//! [`population`] generates deterministic synthetic session populations
//! (distinct per-user profiles, staggered arrivals, scripted faults on a
//! subset) and drives a fleet to completion — the harness behind the
//! `airfinger fleet` CLI subcommand and the `repro fleet` bench
//! experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod fleet;
pub mod population;
pub mod rollup;
mod shard;

pub use config::FleetConfig;
pub use fleet::{Fleet, RoundStats, ShedEvent, ShedReason};
pub use population::{drive, generate_population, session_spec, DriveReport, PopulationSpec};
pub use rollup::{FleetRollup, ShardHealth};

use airfinger_core::error::AirFingerError;

/// Errors surfaced by the fleet layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FleetError {
    /// The fleet configuration failed validation.
    InvalidConfig(&'static str),
    /// Admission refused: the target shard's session table is full.
    ShardFull {
        /// The shard that refused the session.
        shard: usize,
        /// The refused session id.
        session: u64,
    },
    /// Admission refused: a session with this id is already live.
    DuplicateSession(u64),
    /// No live session with this id (never admitted, or already shed).
    UnknownSession(u64),
    /// The session overran its bounded queue and was evicted.
    SessionShed(u64),
    /// An underlying engine or pipeline error.
    Engine(AirFingerError),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::InvalidConfig(why) => write!(f, "invalid fleet config: {why}"),
            FleetError::ShardFull { shard, session } => {
                write!(f, "shard {shard} is full; session {session} refused")
            }
            FleetError::DuplicateSession(id) => write!(f, "session {id} is already live"),
            FleetError::UnknownSession(id) => write!(f, "no live session {id}"),
            FleetError::SessionShed(id) => {
                write!(f, "session {id} shed under backpressure")
            }
            FleetError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<AirFingerError> for FleetError {
    fn from(e: AirFingerError) -> Self {
        FleetError::Engine(e)
    }
}
