//! The fleet orchestrator: admission, ingestion, and the round loop.

use crate::config::FleetConfig;
use crate::rollup::{FleetRollup, ShardHealth};
use crate::shard::Shard;
use crate::FleetError;
use airfinger_core::engine::StreamingEngine;
use airfinger_core::error::AirFingerError;
use airfinger_core::events::Recognition;
use airfinger_core::pipeline::AirFinger;
use airfinger_obs::events::{Event, EventKind, Journal};
use airfinger_obs::monitor::with_horizon;
use airfinger_obs::HealthState;
use std::sync::Arc;

/// Why a session was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// Refused at admission: the target shard was full.
    Admission,
    /// Evicted under backpressure: the session overran its bounded queue.
    Backpressure,
}

impl ShedReason {
    /// Stable label value for the `fleet_sessions_shed_total{reason}`
    /// counter.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            ShedReason::Admission => "admission",
            ShedReason::Backpressure => "backpressure",
        }
    }
}

/// One entry of the deterministic shed log, in shed order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedEvent {
    /// The shed session.
    pub session: u64,
    /// Why it was shed.
    pub reason: ShedReason,
}

/// Per-round statistics returned by [`Fleet::run_round`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundStats {
    /// Samples drained through session engines this round.
    pub processed: u64,
    /// Gesture windows classified in this round's batch pass.
    pub batched: usize,
    /// Live sessions after the round.
    pub active: usize,
    /// Samples still queued across all sessions after the round.
    pub queued: usize,
}

/// A sharded multi-session serving plane over one trained pipeline.
#[derive(Debug)]
pub struct Fleet {
    pipeline: Arc<AirFinger>,
    config: FleetConfig,
    channel_count: usize,
    shards: Vec<Shard>,
    shed_log: Vec<ShedEvent>,
    admitted: u64,
    rounds: u64,
    batches: u64,
    batched_windows: u64,
    processed_total: u64,
    /// Event sink. Fleet-level events (admit/shed) publish immediately
    /// from the serial control path; per-session monitor events buffer
    /// in their monitors during the parallel drain and are published at
    /// the round barrier in (shard, session-id) order, which keeps the
    /// journal byte-identical across worker thread counts.
    journal: Option<Journal>,
    /// Fleet-level emitter ordinal (`session_seq` of fleet events).
    events_emitted: u64,
    /// Pre-rendered `shard` label values, indexed by shard id, so the
    /// per-round rollup publish never formats on the hot path.
    shard_labels: Vec<String>,
}

impl Fleet {
    /// Build an empty fleet serving `pipeline` for `channel_count`-wide
    /// samples. Registers every `fleet_*` counter up front so a snapshot
    /// taken after a clean run still shows the shed counters at zero.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] for zero-valued sizing knobs,
    /// and [`FleetError::Engine`] for an untrained pipeline or zero
    /// channel count.
    pub fn new(
        pipeline: Arc<AirFinger>,
        channel_count: usize,
        config: FleetConfig,
    ) -> Result<Self, FleetError> {
        config.validate().map_err(FleetError::InvalidConfig)?;
        if !pipeline.is_trained() {
            return Err(FleetError::Engine(AirFingerError::NotTrained));
        }
        if channel_count == 0 {
            return Err(FleetError::Engine(AirFingerError::InvalidTrainingData(
                "zero channel count",
            )));
        }
        airfinger_obs::counter!("fleet_sessions_admitted_total").add(0);
        airfinger_obs::counter!("fleet_sessions_shed_total", reason = "admission").add(0);
        airfinger_obs::counter!("fleet_sessions_shed_total", reason = "backpressure").add(0);
        airfinger_obs::counter!("fleet_samples_queued_total").add(0);
        airfinger_obs::counter!("fleet_samples_processed_total").add(0);
        airfinger_obs::counter!("fleet_batches_total").add(0);
        airfinger_obs::counter!("fleet_batch_windows_total").add(0);
        airfinger_obs::counter!("fleet_rounds_total").add(0);
        let shards = (0..config.shards)
            .map(|_| Shard::new(config.quantum))
            .collect();
        let shard_labels = (0..config.shards).map(|i| i.to_string()).collect();
        Ok(Fleet {
            pipeline,
            config,
            channel_count,
            shards,
            shed_log: Vec::new(),
            admitted: 0,
            rounds: 0,
            batches: 0,
            batched_windows: 0,
            processed_total: 0,
            journal: None,
            events_emitted: 0,
            shard_labels,
        })
    }

    /// Attach a journal. Fleet admit/shed events publish into it
    /// immediately; session monitors keep buffering and are drained into
    /// it at every round barrier (and on flush) in deterministic (shard,
    /// session-id) order.
    pub fn set_journal(&mut self, journal: Journal) {
        self.journal = Some(journal);
    }

    /// The attached journal, if any.
    #[must_use]
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// The fleet configuration.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Admit a new session. The session lands on shard
    /// `id % config.shards` and shares the fleet's one trained pipeline;
    /// with a nonzero `monitor_horizon` it gets its own health monitor.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::DuplicateSession`] for a live id and
    /// [`FleetError::ShardFull`] when the shard's table is at capacity
    /// (which is also recorded in the shed log and counters).
    pub fn admit(&mut self, id: u64) -> Result<(), FleetError> {
        let shard_index = self.config.shard_of(id);
        if self.shards[shard_index].contains(id) {
            return Err(FleetError::DuplicateSession(id));
        }
        if self.shards[shard_index].len() >= self.config.sessions_per_shard {
            self.record_shed(id, ShedReason::Admission);
            return Err(FleetError::ShardFull {
                shard: shard_index,
                session: id,
            });
        }
        let mut engine =
            StreamingEngine::with_shared(Arc::clone(&self.pipeline), self.channel_count)
                .map_err(FleetError::Engine)?;
        if self.config.monitor_horizon > 0 {
            engine.attach_monitor(
                with_horizon(self.config.monitor_horizon).with_identity(id, shard_index as u64),
            );
        }
        self.shards[shard_index].insert(id, engine);
        self.admitted += 1;
        airfinger_obs::counter!("fleet_sessions_admitted_total").inc();
        airfinger_obs::gauge!("fleet_sessions_active").set(self.active_sessions() as f64);
        self.emit(EventKind::SessionAdmitted, id);
        Ok(())
    }

    /// Queue one sample for a session. The push path proper runs later,
    /// inside [`Fleet::run_round`]; enqueueing only touches the target
    /// session's own queue.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::UnknownSession`] for an id that is not live,
    /// [`FleetError::Engine`] for a wrong-width sample, and
    /// [`FleetError::SessionShed`] when this sample overran the bounded
    /// queue — in which case the session has been evicted.
    pub fn enqueue(&mut self, id: u64, sample: &[f64]) -> Result<(), FleetError> {
        if sample.len() != self.channel_count {
            return Err(FleetError::Engine(AirFingerError::InvalidTrainingData(
                "sample width mismatch",
            )));
        }
        let shard_index = self.config.shard_of(id);
        let capacity = self.config.queue_capacity;
        let Some(session) = self.shards[shard_index].session_mut(id) else {
            return Err(FleetError::UnknownSession(id));
        };
        if session.queue.len() >= capacity {
            self.shards[shard_index].evict(id);
            self.record_shed(id, ShedReason::Backpressure);
            airfinger_obs::gauge!("fleet_sessions_active").set(self.active_sessions() as f64);
            return Err(FleetError::SessionShed(id));
        }
        session.queue.push_back(sample.to_vec());
        airfinger_obs::counter!("fleet_samples_queued_total").inc();
        Ok(())
    }

    /// Run one serving round: drain every shard in parallel (one worker
    /// per shard, each owning its sessions outright), then classify every
    /// pending gesture window across all shards in a single batched
    /// forest pass and resolve the deferred monitor observations.
    ///
    /// # Errors
    ///
    /// Propagates a batch-classification failure as
    /// [`FleetError::Engine`]; per-session recognition errors are counted
    /// against the session instead.
    // lint: hot-path-root — the serving loop's drain + batch + resolve round
    pub fn run_round(&mut self) -> Result<RoundStats, FleetError> {
        let _span = airfinger_obs::span!("fleet_round_seconds");
        self.rounds += 1;
        airfinger_obs::counter!("fleet_rounds_total").inc();
        let threads = airfinger_parallel::effective_threads(match self.config.threads {
            0 => None,
            n => Some(n),
        })
        .min(self.shards.len().max(1));
        {
            let _drain = airfinger_obs::span!("fleet_drain_seconds");
            airfinger_parallel::par_for_each_mut(&mut self.shards, threads, |_, shard| {
                shard.drain()
            });
        }

        // Gather pending rows in (shard, session-id) order — the same
        // order a sequential sweep would visit them.
        let mut rows: Vec<(usize, u64)> = Vec::new();
        let mut matrix: Vec<Vec<f64>> = Vec::new();
        for (shard_index, shard) in self.shards.iter_mut().enumerate() {
            for entry in shard.take_batch() {
                rows.push((shard_index, entry.session));
                matrix.push(entry.features);
            }
        }
        let batched = rows.len();
        if batched > 0 {
            self.batches += 1;
            self.batched_windows += batched as u64;
            airfinger_obs::counter!("fleet_batches_total").inc();
            airfinger_obs::counter!("fleet_batch_windows_total").add(batched as u64);
            let predictions = {
                let _s = airfinger_obs::span!("fleet_batch_predict_seconds");
                self.pipeline
                    .detect_recognizer()
                    .predict_features_batch(&matrix)
                    .map_err(FleetError::Engine)?
            };
            for ((shard_index, session), predicted) in rows.iter().zip(predictions) {
                self.shards[*shard_index].finish_pending(*session, &self.pipeline, predicted);
            }
        }

        let stats = RoundStats {
            processed: self.shards.iter().map(Shard::drained_last_round).sum(),
            batched,
            active: self.active_sessions(),
            queued: self.shards.iter().map(Shard::queued).sum(),
        };
        self.processed_total += stats.processed;
        self.drain_events();
        self.publish_rollup();
        Ok(stats)
    }

    /// Run rounds until every queue is empty. Terminates because each
    /// round with queued samples drains at least one.
    ///
    /// # Errors
    ///
    /// Propagates the first [`Fleet::run_round`] error.
    pub fn drain_all(&mut self) -> Result<(), FleetError> {
        while !self.idle() {
            let _ = self.run_round()?;
        }
        Ok(())
    }

    /// Flush every session's engine at end of stream, logging any final
    /// recognition. Call after [`Fleet::drain_all`]; recognition errors
    /// are counted against the session, exactly like in-round errors.
    pub fn flush_sessions(&mut self) {
        for shard in &mut self.shards {
            for session in shard.sessions_mut() {
                match session.engine.flush() {
                    Ok(Some(recognition)) => session.recognitions.push(recognition),
                    Ok(None) => {}
                    Err(_) => session.errors += 1,
                }
            }
        }
        self.drain_events();
        self.publish_rollup();
    }

    /// Whether every session's queue is empty and nothing is pending.
    #[must_use]
    pub fn idle(&self) -> bool {
        self.shards.iter().all(Shard::idle)
    }

    /// Live session count.
    #[must_use]
    pub fn active_sessions(&self) -> usize {
        self.shards.iter().map(Shard::len).sum()
    }

    /// Sessions ever admitted.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Sessions ever shed (admission refusals plus evictions).
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.shed_log.len() as u64
    }

    /// The deterministic shed log, in shed order.
    #[must_use]
    pub fn shed_log(&self) -> &[ShedEvent] {
        &self.shed_log
    }

    /// Serving rounds run so far.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Batched forest passes run so far.
    #[must_use]
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Gesture windows classified through the batch path so far.
    #[must_use]
    pub fn batched_windows(&self) -> u64 {
        self.batched_windows
    }

    /// Live session ids, in (shard, id) order.
    #[must_use]
    pub fn session_ids(&self) -> Vec<u64> {
        self.shards
            .iter()
            .flat_map(|shard| shard.sessions().iter().map(|s| s.id))
            .collect()
    }

    /// A live session's recognition log, oldest first.
    #[must_use]
    pub fn session_recognitions(&self, id: u64) -> Option<&[Recognition]> {
        self.shards[self.config.shard_of(id)]
            .session(id)
            .map(|s| s.recognitions.as_slice())
    }

    /// Samples a live session has pushed through its engine.
    #[must_use]
    pub fn session_samples_processed(&self, id: u64) -> Option<u64> {
        self.shards[self.config.shard_of(id)]
            .session(id)
            .map(|s| s.samples_processed)
    }

    /// A live session's health monitor (`None` when the id is not live or
    /// monitors are disabled).
    #[must_use]
    pub fn session_monitor(&self, id: u64) -> Option<&airfinger_obs::monitor::EngineMonitor> {
        self.shards[self.config.shard_of(id)]
            .session(id)
            .and_then(|s| s.engine.monitor())
    }

    /// A live session's current health (`None` when the id is not live or
    /// monitors are disabled).
    #[must_use]
    pub fn session_health(&self, id: u64) -> Option<HealthState> {
        self.session_monitor(id)
            .map(airfinger_obs::monitor::EngineMonitor::health)
    }

    /// Drain every session's pending flight-recorder dumps as
    /// `(session_id, dumps)` pairs, in (shard, id) order.
    #[must_use]
    pub fn take_dumps(&mut self) -> Vec<(u64, Vec<airfinger_obs::recorder::Dump>)> {
        let mut out = Vec::new();
        for shard in &mut self.shards {
            for session in shard.sessions_mut() {
                if let Some(monitor) = session.engine.monitor_mut() {
                    let dumps = monitor.take_dumps();
                    if !dumps.is_empty() {
                        out.push((session.id, dumps));
                    }
                }
            }
        }
        out
    }

    /// The fleet-level SLO view: per-shard session/health tallies plus
    /// fleet-wide aggregates.
    #[must_use]
    pub fn rollup(&self) -> FleetRollup {
        let shards: Vec<ShardHealth> = self
            .shards
            .iter()
            .enumerate()
            .map(|(index, shard)| {
                let mut health = ShardHealth {
                    shard: index,
                    sessions: shard.len(),
                    queued: shard.queued(),
                    healthy: 0,
                    degraded: 0,
                    unhealthy: 0,
                    worst: HealthState::Healthy,
                    burn_fast: 0.0,
                    burn_slow: 0.0,
                    budget_remaining: 1.0,
                };
                for session in shard.sessions() {
                    // Sessions without monitors count as healthy: no
                    // evidence of breach.
                    let state = session.engine.monitor().map_or(
                        HealthState::Healthy,
                        airfinger_obs::monitor::EngineMonitor::health,
                    );
                    match state.level() {
                        0 => health.healthy += 1,
                        1 => health.degraded += 1,
                        _ => health.unhealthy += 1,
                    }
                    if state.level() > health.worst.level() {
                        health.worst = state;
                    }
                    if let Some(budget) = session.engine.monitor().map(|m| m.budget()) {
                        health.burn_fast = health.burn_fast.max(budget.burn_fast());
                        health.burn_slow = health.burn_slow.max(budget.burn_slow());
                        health.budget_remaining = health.budget_remaining.min(budget.remaining());
                    }
                }
                health
            })
            // lint: hot-path — one shard-count-sized Vec per round, returned to the caller
            .collect();
        let mut worst = HealthState::Healthy;
        let mut burn_fast_worst = 0.0f64;
        let mut burn_slow_worst = 0.0f64;
        let mut budget_remaining_min = 1.0f64;
        for shard in &shards {
            if shard.worst.level() > worst.level() {
                worst = shard.worst;
            }
            burn_fast_worst = burn_fast_worst.max(shard.burn_fast);
            burn_slow_worst = burn_slow_worst.max(shard.burn_slow);
            budget_remaining_min = budget_remaining_min.min(shard.budget_remaining);
        }
        FleetRollup {
            sessions_active: self.active_sessions(),
            sessions_admitted: self.admitted,
            sessions_shed: self.shed(),
            samples_processed: self
                .shards
                .iter()
                .flat_map(|s| s.sessions().iter().map(|x| x.samples_processed))
                .sum(),
            recognitions: self
                .shards
                .iter()
                .flat_map(|s| s.sessions().iter().map(|x| x.recognitions.len() as u64))
                .sum(),
            errors: self
                .shards
                .iter()
                .flat_map(|s| s.sessions().iter().map(|x| x.errors))
                .sum(),
            worst,
            burn_fast_worst,
            burn_slow_worst,
            budget_remaining_min,
            shards,
        }
    }

    fn record_shed(&mut self, session: u64, reason: ShedReason) {
        self.shed_log.push(ShedEvent { session, reason });
        airfinger_obs::counter_with("fleet_sessions_shed_total", &[("reason", reason.tag())]).inc();
        self.emit(
            EventKind::SessionShed {
                reason: reason.tag(),
            },
            session,
        );
    }

    /// Journal one fleet-level event (admission/shedding), stamped with
    /// the target session's identity and the fleet's processed-sample
    /// clock. No-op without a journal: the fleet's control path has no
    /// bounded buffer of its own, and these events are reconstructable
    /// from the shed log.
    fn emit(&mut self, kind: EventKind, session: u64) {
        let Some(journal) = &self.journal else {
            return;
        };
        airfinger_obs::events::count_emitted(&kind);
        let event = Event {
            seq: 0,
            session_seq: self.events_emitted,
            sample: self.processed_total,
            session: Some(session),
            shard: Some(self.config.shard_of(session) as u64),
            window: None,
            kind,
        };
        self.events_emitted += 1;
        let _ = journal.publish(event);
    }

    /// Publish every session monitor's buffered events into the journal
    /// in (shard, session-id) order — the deterministic round-barrier
    /// step that makes the journal thread-count invariant.
    fn drain_events(&mut self) {
        let Some(journal) = &self.journal else {
            return;
        };
        for shard in &mut self.shards {
            for session in shard.sessions_mut() {
                if let Some(monitor) = session.engine.monitor_mut() {
                    journal.publish_all(monitor.take_events());
                }
            }
        }
    }

    /// Publish the per-shard and fleet-wide health gauges.
    fn publish_rollup(&self) {
        if !airfinger_obs::recording() {
            return;
        }
        let rollup = self.rollup();
        airfinger_obs::gauge!("fleet_sessions_active").set(rollup.sessions_active as f64);
        airfinger_obs::gauge!("fleet_health_worst").set(f64::from(rollup.worst.level()));
        airfinger_obs::gauge!("fleet_burn_fast_worst").set(rollup.burn_fast_worst);
        airfinger_obs::gauge!("fleet_burn_slow_worst").set(rollup.burn_slow_worst);
        airfinger_obs::gauge!("fleet_budget_remaining_min").set(rollup.budget_remaining_min);
        for shard in &rollup.shards {
            let label = self.shard_labels[shard.shard].as_str();
            airfinger_obs::gauge_with("fleet_shard_health", &[("shard", label)])
                .set(f64::from(shard.worst.level()));
            airfinger_obs::gauge_with("fleet_shard_burn_fast", &[("shard", label)])
                .set(shard.burn_fast);
            airfinger_obs::gauge_with("fleet_shard_burn_slow", &[("shard", label)])
                .set(shard.burn_slow);
        }
    }
}
