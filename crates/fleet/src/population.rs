//! Deterministic synthetic session populations and the drive loop.
//!
//! A [`PopulationSpec`] scripts a whole user base: each session ordinal
//! maps to a distinct [`SessionSpec`] (its own user profile, its own seed
//! stream, optionally the standard fault schedule), arrivals are
//! staggered across rounds, and the producer feeds each live session a
//! fixed chunk of samples per round — the open-loop ingest pattern a
//! device gateway would present. Everything derives from the spec, so two
//! drives of the same population are bit-identical.

use crate::fleet::Fleet;
use crate::FleetError;
use airfinger_nir_sim::trace::RssTrace;
use airfinger_synth::session::{generate_session, standard_fault_schedule, SessionSpec};

/// A scripted session population.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationSpec {
    /// Number of sessions.
    pub sessions: usize,
    /// Samples per session trace.
    pub samples_per_session: usize,
    /// Distinct user profiles, cycled over session ordinals.
    pub users: usize,
    /// Master seed; each session derives an independent stream.
    pub seed: u64,
    /// Every `fault_every`-th session (ordinals 0, k, 2k, …) runs the
    /// standard spike+dropout fault schedule; `0` keeps every session
    /// clean.
    pub fault_every: usize,
    /// Session ordinal `j` arrives at round `j * arrival_stagger_rounds`.
    pub arrival_stagger_rounds: usize,
    /// Samples fed to each live session per round.
    pub chunk: usize,
}

impl Default for PopulationSpec {
    fn default() -> Self {
        PopulationSpec {
            sessions: 8,
            samples_per_session: 1000,
            users: 4,
            seed: 0x41F1_6E12,
            fault_every: 0,
            arrival_stagger_rounds: 1,
            chunk: 64,
        }
    }
}

/// The scripted [`SessionSpec`] of one session ordinal: a distinct user
/// profile (cycled), an independent seed stream, and the standard fault
/// schedule on the configured subset.
#[must_use]
pub fn session_spec(pop: &PopulationSpec, ordinal: usize) -> SessionSpec {
    let faults = if pop.fault_every > 0 && ordinal.is_multiple_of(pop.fault_every) {
        standard_fault_schedule(pop.samples_per_session, true, true)
    } else {
        Vec::new()
    };
    SessionSpec {
        samples: pop.samples_per_session,
        seed: pop
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(ordinal as u64 + 1)),
        user: ordinal % pop.users.max(1),
        faults,
        ..SessionSpec::default()
    }
}

/// Render every session trace of the population, in ordinal order, using
/// up to `threads` workers (trace rendering dominates harness setup time
/// and each trace is independent).
#[must_use]
pub fn generate_population(pop: &PopulationSpec, threads: usize) -> Vec<RssTrace> {
    let ordinals: Vec<usize> = (0..pop.sessions).collect();
    airfinger_parallel::par_map(&ordinals, threads, |&ordinal| {
        generate_session(&session_spec(pop, ordinal))
    })
}

/// What happened while driving a population through a fleet.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DriveReport {
    /// Samples accepted into session queues.
    pub fed: u64,
    /// Serving rounds run.
    pub rounds: u64,
    /// Sessions refused at admission, in refusal order.
    pub shed_on_admission: Vec<u64>,
    /// Sessions evicted under backpressure, in eviction order.
    pub shed_on_backpressure: Vec<u64>,
}

/// Drive a population to completion: admit session `j` (id `ids[j]`,
/// trace `traces[j]`) at round `j * arrival_stagger_rounds`, feed every
/// live session `chunk` samples per round, and run rounds until every
/// arrival has happened, every surviving trace is fully fed, and the
/// fleet is idle. Shed sessions (at admission or under backpressure) are
/// recorded and skipped thereafter.
///
/// # Errors
///
/// Propagates fleet errors other than the expected shed signals.
pub fn drive(
    fleet: &mut Fleet,
    ids: &[u64],
    traces: &[RssTrace],
    pop: &PopulationSpec,
) -> Result<DriveReport, FleetError> {
    let n = ids.len().min(traces.len());
    let chunk = pop.chunk.max(1);
    let mut report = DriveReport::default();
    let mut position = vec![0usize; n];
    let mut admitted = vec![false; n];
    let mut dead = vec![false; n];
    let mut sample = Vec::new();
    let mut round = 0usize;
    loop {
        // Staggered arrivals.
        for j in 0..n {
            if admitted[j] || round < j.saturating_mul(pop.arrival_stagger_rounds) {
                continue;
            }
            admitted[j] = true;
            match fleet.admit(ids[j]) {
                Ok(()) => {}
                Err(FleetError::ShardFull { .. }) => {
                    dead[j] = true;
                    report.shed_on_admission.push(ids[j]);
                }
                Err(e) => return Err(e),
            }
        }
        // Open-loop feed: `chunk` samples per live session per round.
        for j in 0..n {
            if !admitted[j] || dead[j] {
                continue;
            }
            let trace = &traces[j];
            let stop = trace.len().min(position[j] + chunk);
            while position[j] < stop {
                let i = position[j];
                sample.clear();
                sample.extend((0..trace.channel_count()).map(|k| trace.channel(k)[i]));
                match fleet.enqueue(ids[j], &sample) {
                    Ok(()) => {
                        report.fed += 1;
                        position[j] = i + 1;
                    }
                    Err(FleetError::SessionShed(_)) => {
                        dead[j] = true;
                        report.shed_on_backpressure.push(ids[j]);
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        let _ = fleet.run_round()?;
        report.rounds += 1;
        round += 1;
        let arrivals_done = admitted.iter().all(|&a| a);
        let feeding_done =
            (0..n).all(|j| dead[j] || (admitted[j] && position[j] >= traces[j].len()));
        if arrivals_done && feeding_done && fleet.idle() {
            return Ok(report);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_specs_are_distinct_and_deterministic() {
        let pop = PopulationSpec {
            sessions: 6,
            users: 3,
            fault_every: 2,
            ..Default::default()
        };
        let a = session_spec(&pop, 2);
        let b = session_spec(&pop, 2);
        assert_eq!(a, b);
        let c = session_spec(&pop, 3);
        assert_ne!(a.seed, c.seed);
        assert_eq!(a.user, 2);
        assert_eq!(c.user, 0);
        assert!(!a.faults.is_empty(), "ordinal 2 is faulted");
        assert!(c.faults.is_empty(), "ordinal 3 is clean");
    }

    #[test]
    fn population_generation_is_thread_invariant() {
        let pop = PopulationSpec {
            sessions: 3,
            samples_per_session: 200,
            ..Default::default()
        };
        let serial = generate_population(&pop, 1);
        let parallel = generate_population(&pop, 4);
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 3);
        assert_eq!(serial[0].len(), 200);
    }
}
