//! Fleet-level SLO view: per-shard health tallies and fleet aggregates.

use airfinger_obs::HealthState;

/// One shard's session and health tally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardHealth {
    /// Shard index.
    pub shard: usize,
    /// Live sessions on the shard.
    pub sessions: usize,
    /// Samples queued across the shard's sessions.
    pub queued: usize,
    /// Sessions currently healthy (including monitor-less sessions).
    pub healthy: usize,
    /// Sessions currently degraded.
    pub degraded: usize,
    /// Sessions currently unhealthy.
    pub unhealthy: usize,
    /// Worst session state on the shard.
    pub worst: HealthState,
    /// Worst (highest) fast-burn rate across the shard's sessions.
    pub burn_fast: f64,
    /// Worst (highest) slow-burn rate across the shard's sessions.
    pub burn_slow: f64,
    /// Worst (lowest) remaining error budget across the shard's
    /// sessions; 1.0 when no session has a monitor.
    pub budget_remaining: f64,
}

/// The whole fleet's SLO rollup, published through the registry as the
/// `fleet_shard_health{shard}` / `fleet_health_worst` gauges plus the
/// `fleet_burn_*` / `fleet_budget_remaining_min` budget gauges.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRollup {
    /// Per-shard tallies, by shard index.
    pub shards: Vec<ShardHealth>,
    /// Live sessions across the fleet.
    pub sessions_active: usize,
    /// Sessions ever admitted.
    pub sessions_admitted: u64,
    /// Sessions ever shed.
    pub sessions_shed: u64,
    /// Samples pushed through session engines.
    pub samples_processed: u64,
    /// Recognition events logged across live sessions.
    pub recognitions: u64,
    /// Recognition errors counted across live sessions.
    pub errors: u64,
    /// Worst session state across the fleet.
    pub worst: HealthState,
    /// Worst (highest) fast-burn rate across the fleet.
    pub burn_fast_worst: f64,
    /// Worst (highest) slow-burn rate across the fleet.
    pub burn_slow_worst: f64,
    /// Worst (lowest) remaining error budget across the fleet.
    pub budget_remaining_min: f64,
}

impl FleetRollup {
    /// Fleet-wide healthy/degraded/unhealthy tallies summed over shards.
    #[must_use]
    pub fn health_counts(&self) -> (usize, usize, usize) {
        self.shards.iter().fold((0, 0, 0), |(h, d, u), s| {
            (h + s.healthy, d + s.degraded, u + s.unhealthy)
        })
    }
}
