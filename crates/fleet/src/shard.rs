//! One shard: an exclusively-owned session table plus its round drain.
//!
//! The fleet's lock-freedom comes from ownership, not synchronization:
//! each shard is a plain `&mut` handed to exactly one worker per round by
//! [`airfinger_parallel::par_for_each_mut`], so the per-sample push path
//! never touches a mutex or an atomic beyond the (deterministic) global
//! metric counters.

use airfinger_core::engine::{DeferredPush, PendingWindow, StreamingEngine};
use airfinger_core::events::Recognition;
use airfinger_core::pipeline::{AirFinger, PreparedWindow};
use std::collections::VecDeque;

/// One live session: its engine, bounded ingress queue, and output log.
#[derive(Debug)]
pub(crate) struct Session {
    pub(crate) id: u64,
    pub(crate) engine: StreamingEngine,
    pub(crate) queue: VecDeque<Vec<f64>>,
    /// A window closed mid-round, awaiting the batch classification pass.
    pub(crate) pending: Option<PendingWindow>,
    pub(crate) recognitions: Vec<Recognition>,
    pub(crate) samples_processed: u64,
    pub(crate) errors: u64,
}

/// One pending feature row gathered during a drain, keyed by session id.
#[derive(Debug)]
pub(crate) struct BatchEntry {
    pub(crate) session: u64,
    pub(crate) features: Vec<f64>,
}

/// A shard: sessions sorted by id (binary-search lookup, no hash maps on
/// the result path) plus the rows its last drain left for batching.
#[derive(Debug)]
pub(crate) struct Shard {
    sessions: Vec<Session>,
    quantum: usize,
    batch: Vec<BatchEntry>,
    drained_last_round: u64,
}

impl Shard {
    pub(crate) fn new(quantum: usize) -> Self {
        Shard {
            sessions: Vec::new(),
            quantum: quantum.max(1),
            batch: Vec::new(),
            drained_last_round: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.sessions.len()
    }

    pub(crate) fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    pub(crate) fn sessions_mut(&mut self) -> &mut [Session] {
        &mut self.sessions
    }

    fn position(&self, id: u64) -> Result<usize, usize> {
        self.sessions.binary_search_by_key(&id, |s| s.id)
    }

    pub(crate) fn contains(&self, id: u64) -> bool {
        self.position(id).is_ok()
    }

    pub(crate) fn session(&self, id: u64) -> Option<&Session> {
        self.position(id).ok().map(|i| &self.sessions[i])
    }

    pub(crate) fn session_mut(&mut self, id: u64) -> Option<&mut Session> {
        self.position(id).ok().map(move |i| &mut self.sessions[i])
    }

    /// Insert a session, keeping the table sorted by id. The caller has
    /// already checked capacity and duplicates.
    pub(crate) fn insert(&mut self, id: u64, engine: StreamingEngine) {
        let at = match self.position(id) {
            Ok(i) | Err(i) => i,
        };
        self.sessions.insert(
            at,
            Session {
                id,
                engine,
                queue: VecDeque::new(),
                pending: None,
                recognitions: Vec::new(),
                samples_processed: 0,
                errors: 0,
            },
        );
    }

    /// Evict a session (backpressure shed), dropping its queue, engine and
    /// output log. Surviving sessions are untouched.
    pub(crate) fn evict(&mut self, id: u64) -> bool {
        match self.position(id) {
            Ok(i) => {
                self.sessions.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Drain up to `quantum` queued samples through every session, in id
    /// order. A session whose push closes a gesture window that passes the
    /// interference filter *pauses* for the rest of the round — its
    /// feature row joins the shard's batch and its monitor observation is
    /// deferred until the fleet resolves the batch — so the per-session
    /// event sequence stays bit-identical to a solo `push` loop.
    pub(crate) fn drain(&mut self) {
        let quantum = self.quantum;
        let batch = &mut self.batch;
        let mut drained = 0u64;
        for session in &mut self.sessions {
            let mut budget = quantum;
            while budget > 0 && session.pending.is_none() {
                let Some(sample) = session.queue.pop_front() else {
                    break;
                };
                budget -= 1;
                let pushed = {
                    let _s = airfinger_obs::span!("fleet_push_seconds");
                    session.engine.push_deferred(&sample)
                };
                airfinger_obs::counter!("fleet_samples_processed_total").inc();
                session.samples_processed += 1;
                drained += 1;
                match pushed {
                    Ok(DeferredPush::Quiet) => {}
                    Ok(DeferredPush::Closed(pending)) => {
                        let prepared = session.engine.pipeline().prepare_window(pending.window());
                        match prepared {
                            Ok(PreparedWindow::Rejected(recognition)) => {
                                session.engine.resolve_pending(&pending, &Ok(recognition));
                                session.recognitions.push(recognition);
                            }
                            Ok(PreparedWindow::Pending(features)) => {
                                batch.push(BatchEntry {
                                    session: session.id,
                                    features,
                                });
                                session.pending = Some(pending);
                            }
                            Err(e) => {
                                session.engine.resolve_pending(&pending, &Err(e));
                                session.errors += 1;
                            }
                        }
                    }
                    // Width mismatches are rejected at enqueue, so an
                    // errored push here is counted, never propagated —
                    // one bad session must not stall its shard.
                    Err(_) => session.errors += 1,
                }
            }
        }
        self.drained_last_round = drained;
    }

    pub(crate) fn take_batch(&mut self) -> Vec<BatchEntry> {
        std::mem::take(&mut self.batch)
    }

    pub(crate) fn drained_last_round(&self) -> u64 {
        self.drained_last_round
    }

    /// Resolve one session's pending window with its batched prediction:
    /// finish the recognition, replay the deferred monitor observation,
    /// and log the event.
    pub(crate) fn finish_pending(&mut self, id: u64, pipeline: &AirFinger, predicted: usize) {
        let Some(session) = self.session_mut(id) else {
            return;
        };
        let Some(pending) = session.pending.take() else {
            return;
        };
        let result = pipeline.finish_window(pending.window(), predicted);
        session.engine.resolve_pending(&pending, &result);
        match result {
            Ok(recognition) => session.recognitions.push(recognition),
            Err(_) => session.errors += 1,
        }
    }

    pub(crate) fn queued(&self) -> usize {
        self.sessions.iter().map(|s| s.queue.len()).sum()
    }

    pub(crate) fn idle(&self) -> bool {
        self.sessions
            .iter()
            .all(|s| s.queue.is_empty() && s.pending.is_none())
    }
}
