//! Fleet sizing and scheduling knobs.

/// Configuration for a [`Fleet`](crate::Fleet).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of shards. Sessions are assigned by `session_id % shards`,
    /// and each shard is drained by exactly one worker per round.
    pub shards: usize,
    /// Admission ceiling per shard: the `shards * sessions_per_shard`
    /// product is the fleet's total capacity.
    pub sessions_per_shard: usize,
    /// Bounded per-session ingress queue, in samples. A producer that
    /// overruns it has its session shed.
    pub queue_capacity: usize,
    /// Samples drained per session per round. Round-robin over the shard's
    /// session table with a fixed quantum is what keeps a hot shard fair.
    pub quantum: usize,
    /// Sliding-window horizon for each session's
    /// [`EngineMonitor`](airfinger_obs::monitor::EngineMonitor), in
    /// samples; `0` disables per-session monitors.
    pub monitor_horizon: usize,
    /// Worker threads for the per-round shard drain; `0` means auto
    /// (`AIRFINGER_THREADS`, then available parallelism).
    pub threads: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 4,
            sessions_per_shard: 32,
            queue_capacity: 512,
            quantum: 64,
            monitor_horizon: 400,
            threads: 0,
        }
    }
}

impl FleetConfig {
    /// Validate the sizing knobs.
    ///
    /// # Errors
    ///
    /// Returns a description of the first zero-valued required knob.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.shards == 0 {
            return Err("zero shards");
        }
        if self.sessions_per_shard == 0 {
            return Err("zero sessions per shard");
        }
        if self.queue_capacity == 0 {
            return Err("zero queue capacity");
        }
        if self.quantum == 0 {
            return Err("zero quantum");
        }
        Ok(())
    }

    /// Shard owning a session id.
    #[must_use]
    pub fn shard_of(&self, session: u64) -> usize {
        (session % self.shards.max(1) as u64) as usize
    }

    /// Total admission capacity across all shards.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shards * self.sessions_per_shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        let c = FleetConfig::default();
        assert_eq!(c.validate(), Ok(()));
        assert_eq!(c.capacity(), 128);
    }

    #[test]
    fn zero_knobs_are_rejected() {
        for bad in [
            FleetConfig {
                shards: 0,
                ..Default::default()
            },
            FleetConfig {
                sessions_per_shard: 0,
                ..Default::default()
            },
            FleetConfig {
                queue_capacity: 0,
                ..Default::default()
            },
            FleetConfig {
                quantum: 0,
                ..Default::default()
            },
        ] {
            assert!(bad.validate().is_err());
        }
    }

    #[test]
    fn shard_assignment_is_modular() {
        let c = FleetConfig {
            shards: 3,
            ..Default::default()
        };
        assert_eq!(c.shard_of(0), 0);
        assert_eq!(c.shard_of(4), 1);
        assert_eq!(c.shard_of(11), 2);
    }
}
