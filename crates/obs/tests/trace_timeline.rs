//! End-to-end validation of the span timeline capture: spans across
//! several threads, exported as Chrome `trace_event` JSON, parsed back
//! and structurally checked — matched begin/end pairs, proper nesting,
//! monotonic timestamps per thread. Runs in its own process (and as one
//! sequential test) so toggling the global capture switch cannot race
//! anything.

#![cfg(feature = "obs")]

use airfinger_obs::trace;

/// Parse the `traceEvents` array into `(name, phase, ts, tid)` tuples.
fn parse_events(json: &str) -> Vec<(String, String, u64, u64)> {
    let value: serde::Value = serde_json::from_str(json).expect("trace export is valid JSON");
    let obj = value.as_object().expect("top level is an object");
    obj.get("traceEvents")
        .expect("traceEvents member present")
        .as_array()
        .expect("traceEvents is an array")
        .iter()
        .map(|e| {
            let e = e.as_object().expect("event is an object");
            assert_eq!(e.get("pid").and_then(serde::Value::as_u64), Some(1));
            assert_eq!(e.get("cat").and_then(serde::Value::as_str), Some("obs"));
            (
                e.get("name")
                    .and_then(serde::Value::as_str)
                    .unwrap()
                    .to_string(),
                e.get("ph")
                    .and_then(serde::Value::as_str)
                    .unwrap()
                    .to_string(),
                e.get("ts").and_then(serde::Value::as_u64).unwrap(),
                e.get("tid").and_then(serde::Value::as_u64).unwrap(),
            )
        })
        .collect()
}

#[test]
fn multithreaded_capture_exports_valid_chrome_trace() {
    trace::clear();
    trace::set_capture(true);

    // Nested spans on the main thread plus concurrent spans on workers.
    {
        let _outer = airfinger_obs::span!("timeline_outer_seconds");
        std::thread::scope(|scope| {
            for worker in 0..3 {
                scope.spawn(move || {
                    for _ in 0..5 {
                        let _span = match worker {
                            0 => airfinger_obs::span!("timeline_stage_seconds", stage = "a"),
                            1 => airfinger_obs::span!("timeline_stage_seconds", stage = "b"),
                            _ => airfinger_obs::span!("timeline_stage_seconds", stage = "c"),
                        };
                        std::hint::black_box(0u64);
                    }
                });
            }
        });
        let _inner = airfinger_obs::span!("timeline_inner_seconds");
    }

    trace::set_capture(false);
    let json = trace::chrome_trace_json();
    let events = parse_events(&json);
    // 1 outer + 1 inner + 3×5 worker spans, a B and an E each.
    assert_eq!(
        events.len(),
        2 * (2 + 15),
        "unexpected event count: {events:?}"
    );
    assert_eq!(trace::dropped(), 0);

    // Phases are only ever B or E, and per thread every E closes the most
    // recent open B of the same name (proper nesting, matched pairs).
    let mut stacks: std::collections::BTreeMap<u64, Vec<&str>> = std::collections::BTreeMap::new();
    for (name, phase, _ts, tid) in &events {
        match phase.as_str() {
            "B" => stacks.entry(*tid).or_default().push(name),
            "E" => {
                let open = stacks
                    .get_mut(tid)
                    .and_then(Vec::pop)
                    .unwrap_or_else(|| panic!("E without open B on tid {tid}: {name}"));
                assert_eq!(open, name, "E closes a different span than the open B");
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "unclosed spans on tid {tid}: {stack:?}");
    }

    // Timestamps are monotonic per thread (the trace_event contract).
    let mut last_ts: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for (_name, _phase, ts, tid) in &events {
        if let Some(prev) = last_ts.insert(*tid, *ts) {
            assert!(prev <= *ts, "timestamps went backwards on tid {tid}");
        }
    }

    // The outer span must open before the nested inner one.
    let outer_b = events
        .iter()
        .position(|(n, p, ..)| n == "timeline_outer_seconds" && p == "B")
        .unwrap();
    let inner_b = events
        .iter()
        .position(|(n, p, ..)| n == "timeline_inner_seconds" && p == "B")
        .unwrap();
    assert!(outer_b < inner_b);

    // With capture back off, new spans leave no events behind a clear().
    trace::clear();
    {
        let _span = airfinger_obs::span!("timeline_uncaptured_seconds");
    }
    let json = trace::chrome_trace_json();
    assert!(
        !json.contains("timeline_uncaptured_seconds"),
        "span captured while capture off"
    );
    assert!(parse_events(&json).is_empty());
}
