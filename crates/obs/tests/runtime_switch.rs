//! Exercises the global runtime recording switch in its own process so
//! toggling it cannot race the crate's unit tests.

use airfinger_obs::{global, set_recording, Span};

#[test]
fn disabled_registry_short_circuits() {
    let counter = airfinger_obs::counter("switch_events_total");
    let histogram = airfinger_obs::histogram("switch_seconds");

    counter.inc();
    histogram.observe(0.5);
    let live = airfinger_obs::recording();
    assert_eq!(live, cfg!(feature = "obs"));
    let baseline = counter.value();
    assert_eq!(baseline, u64::from(live));

    set_recording(false);
    assert!(!airfinger_obs::recording());
    counter.add(10);
    histogram.observe(0.5);
    {
        let span = airfinger_obs::span_with("switch_span_seconds", &[("id", "off")]);
        assert_eq!(
            span.elapsed_s(),
            0.0,
            "disabled span must not read the clock"
        );
    }
    {
        let _span = Span::from_histogram(histogram.clone(), "direct");
    }
    assert_eq!(counter.value(), baseline, "counter recorded while disabled");
    assert_eq!(
        histogram.count(),
        u64::from(live),
        "histogram recorded while disabled"
    );

    set_recording(true);
    counter.inc();
    histogram.observe(0.25);
    if cfg!(feature = "obs") {
        assert_eq!(counter.value(), baseline + 1);
        assert_eq!(histogram.count(), 2);
        let snap = global().snapshot();
        assert_eq!(
            snap.counter_value("switch_events_total", &[]),
            Some(baseline + 1)
        );
    } else {
        // Without the compiled feature the runtime switch is irrelevant:
        // everything stays at zero.
        assert_eq!(counter.value(), 0);
        assert_eq!(histogram.count(), 0);
    }
}
