//! Deterministic per-stage cost profiler layered on the span hierarchy.
//!
//! Every [`crate::Span`] doubles as a profiler frame while profiling is
//! enabled ([`set_enabled`]): span creation pushes a frame onto a
//! per-thread stack, span drop pops it and attributes the elapsed time
//! to the **call path** — the `;`-joined chain of open span names, e.g.
//! `engine_push_seconds;pipeline_stage_seconds{stage=sbc}`. Per path the
//! profiler accumulates:
//!
//! - **cumulative** time (`total_ns`) and **self** time (`self_ns` =
//!   cumulative minus time spent in child spans), and
//! - cumulative/self **allocation pressure** (events + bytes, via
//!   [`crate::alloc`]) when the counting allocator is installed.
//!
//! Everything except the clock readings is a deterministic function of
//! the executed code: frame counts, path sets, and allocation counts are
//! identical for identical inputs regardless of worker-thread count
//! (threads merge commutatively into one global table). The profiler's
//! own bookkeeping allocations (path strings, table inserts) are read
//! back after each exit and subtracted from every still-open ancestor
//! scope, so enabling profiling does not pollute the numbers it reports.
//!
//! Export: [`ProfileSnapshot::collapsed`] produces the flamegraph
//! collapsed-stack text format (`path self_ns` per line), and
//! [`ProfileSnapshot::to_json`] a machine-readable document; both are
//! byte-deterministic given the same execution (modulo the `_ns`
//! fields, which are wall-clock).
//!
//! Spans must be dropped in LIFO order on the thread that created them
//! (the natural RAII discipline everywhere in this workspace); a span
//! migrated across threads would be attributed to the destination
//! thread's open path.

use crate::alloc::{self, AllocStats};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Maximum open profiler frames per thread; deeper spans are not tracked.
pub const MAX_DEPTH: usize = 64;
/// Maximum distinct call paths; beyond this, new paths are counted as
/// dropped rather than growing the table without bound.
pub const MAX_PATHS: usize = 4096;

/// Runtime profiling switch (default off — profiling costs a TLS stack
/// push/pop per span plus a path-table merge per span exit).
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether span profiling is live. Statically `false` without the `obs`
/// feature.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    cfg!(feature = "obs") && ENABLED.load(Ordering::Relaxed)
}

/// Turn span profiling on or off. Enabling mid-span is safe: only spans
/// created while enabled are tracked, and a span created while enabled
/// is popped on drop even if profiling was disabled in between.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// A frame's display name: static for `span!` call sites, owned for
/// dynamically-labelled `span_with` spans.
#[derive(Debug)]
enum FrameName {
    Static(&'static str),
    Owned(String),
}

impl FrameName {
    fn as_str(&self) -> &str {
        match self {
            FrameName::Static(s) => s,
            FrameName::Owned(s) => s,
        }
    }
}

/// One open span on this thread's profiler stack.
#[derive(Debug)]
struct Frame {
    name: FrameName,
    /// Nanoseconds already attributed to completed child spans.
    child_ns: u64,
    /// Allocation reading when the frame opened (adjusted upward by
    /// profiler bookkeeping so that cost is excluded from the scope).
    alloc_at_enter: AllocStats,
    /// Allocation pressure already attributed to completed child spans.
    child_alloc: AllocStats,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Accumulated cost for one call path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathStats {
    /// Completed frames on this path.
    pub count: u64,
    /// Cumulative nanoseconds (includes child spans).
    pub total_ns: u64,
    /// Self nanoseconds (cumulative minus completed child spans).
    pub self_ns: u64,
    /// Cumulative allocation pressure within the scope.
    pub alloc: AllocStats,
    /// Self allocation pressure (cumulative minus child scopes).
    pub self_alloc: AllocStats,
}

impl PathStats {
    /// Fold another path's accumulated cost into this one (saturating).
    pub fn merge(&mut self, other: &PathStats) {
        self.count = self.count.saturating_add(other.count);
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.self_ns = self.self_ns.saturating_add(other.self_ns);
        self.alloc = self.alloc.plus(other.alloc);
        self.self_alloc = self.self_alloc.plus(other.self_alloc);
    }
}

/// The global path table. Threads merge into it on span exit; `BTreeMap`
/// keeps snapshot and export ordering deterministic.
struct Table {
    paths: BTreeMap<String, PathStats>,
    dropped: u64,
}

fn table() -> &'static Mutex<Table> {
    static TABLE: OnceLock<Mutex<Table>> = OnceLock::new();
    TABLE.get_or_init(|| {
        Mutex::new(Table {
            paths: BTreeMap::new(),
            dropped: 0,
        })
    })
}

/// Push a frame for a statically-named span. Returns whether a frame was
/// pushed (the caller must call [`exit`] iff it was).
pub(crate) fn enter_static(name: &'static str) -> bool {
    if !enabled() {
        return false;
    }
    enter(FrameName::Static(name))
}

/// Push a frame for a dynamically-named span (name is cloned only when
/// profiling is enabled).
pub(crate) fn enter_owned(name: &str) -> bool {
    if !enabled() {
        return false;
    }
    enter(FrameName::Owned(name.to_string()))
}

fn enter(name: FrameName) -> bool {
    STACK
        .try_with(|cell| {
            let Ok(mut stack) = cell.try_borrow_mut() else {
                return false;
            };
            if stack.len() >= MAX_DEPTH {
                return false;
            }
            if stack.capacity() == 0 {
                // One-time reservation so steady-state enters of static
                // names never allocate.
                stack.reserve(MAX_DEPTH);
            }
            stack.push(Frame {
                name,
                child_ns: 0,
                alloc_at_enter: alloc::thread_stats(),
                child_alloc: AllocStats::default(),
            });
            true
        })
        .unwrap_or(false)
}

/// Pop the top frame and attribute `elapsed_ns` to its call path. Called
/// from [`crate::Span`]'s drop, only when the matching enter pushed.
pub(crate) fn exit(elapsed_ns: u64) {
    let _ = STACK.try_with(|cell| {
        let Ok(mut stack) = cell.try_borrow_mut() else {
            return;
        };
        let Some(frame) = stack.pop() else { return };
        let at_exit = alloc::thread_stats();
        let total_alloc = at_exit.since(frame.alloc_at_enter);
        let self_alloc = total_alloc.since(frame.child_alloc);
        let self_ns = elapsed_ns.saturating_sub(frame.child_ns);

        let mut path = String::with_capacity(64);
        for open in stack.iter() {
            path.push_str(open.name.as_str());
            path.push(';');
        }
        path.push_str(frame.name.as_str());

        if let Some(parent) = stack.last_mut() {
            parent.child_ns = parent.child_ns.saturating_add(elapsed_ns);
            parent.child_alloc = parent.child_alloc.plus(total_alloc);
        }
        record(path, elapsed_ns, self_ns, total_alloc, self_alloc);

        // Whatever this exit itself allocated (path string, table
        // insert) is profiler bookkeeping, not scope cost: advance every
        // still-open ancestor's enter baseline past it.
        let bookkeeping = alloc::thread_stats().since(at_exit);
        if !bookkeeping.is_zero() {
            for open in stack.iter_mut() {
                open.alloc_at_enter = open.alloc_at_enter.plus(bookkeeping);
            }
        }
    });
}

fn record(path: String, total_ns: u64, self_ns: u64, alloc: AllocStats, self_alloc: AllocStats) {
    let mut t = table().lock().unwrap_or_else(PoisonError::into_inner);
    if !t.paths.contains_key(&path) && t.paths.len() >= MAX_PATHS {
        t.dropped += 1;
        crate::counter!("profile_paths_dropped_total").inc();
        return;
    }
    let entry = t.paths.entry(path).or_default();
    entry.count = entry.count.saturating_add(1);
    entry.total_ns = entry.total_ns.saturating_add(total_ns);
    entry.self_ns = entry.self_ns.saturating_add(self_ns);
    entry.alloc = entry.alloc.plus(alloc);
    entry.self_alloc = entry.self_alloc.plus(self_alloc);
    crate::counter!("profile_frames_total").inc();
}

/// Clear the path table (per-thread stacks of open frames are untouched;
/// frames already open when `reset` runs will merge their costs after
/// it, so reset between — not inside — profiled regions).
pub fn reset() {
    let mut t = table().lock().unwrap_or_else(PoisonError::into_inner);
    t.paths.clear();
    t.dropped = 0;
}

/// A point-in-time copy of the path table, sorted by path.
#[derive(Debug, Clone, Default)]
pub struct ProfileSnapshot {
    /// `(call path, accumulated cost)` pairs, lexicographically sorted.
    pub paths: Vec<(String, PathStats)>,
    /// Paths rejected because the table was full.
    pub dropped: u64,
}

/// Snapshot the profiler state (also publishes the `profile_paths`
/// gauge).
#[must_use]
pub fn snapshot() -> ProfileSnapshot {
    let snap = {
        let t = table().lock().unwrap_or_else(PoisonError::into_inner);
        ProfileSnapshot {
            paths: t.paths.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            dropped: t.dropped,
        }
    };
    crate::gauge!("profile_paths").set(snap.paths.len() as f64);
    snap
}

impl ProfileSnapshot {
    /// Restrict to the subtree rooted at the first frame named `root`
    /// anywhere in each path, re-rooting the path there — how a caller
    /// scopes its own measurement away from unrelated spans profiled
    /// concurrently, independent of how many profiled ancestors (e.g. a
    /// harness span around the whole experiment) happen to sit above it.
    /// Paths that re-root to the same key merge.
    #[must_use]
    pub fn under(&self, root: &str) -> ProfileSnapshot {
        let mut paths: BTreeMap<String, PathStats> = BTreeMap::new();
        for (p, stats) in &self.paths {
            let frames: Vec<&str> = p.split(';').collect();
            let Some(at) = frames.iter().position(|f| *f == root) else {
                continue;
            };
            let key = frames[at..].join(";");
            paths.entry(key).or_default().merge(stats);
        }
        ProfileSnapshot {
            paths: paths.into_iter().collect(),
            dropped: self.dropped,
        }
    }

    /// Accumulated cost for one exact path, if present.
    #[must_use]
    pub fn path(&self, path: &str) -> Option<&PathStats> {
        self.paths
            .binary_search_by(|(p, _)| p.as_str().cmp(path))
            .ok()
            .map(|i| &self.paths[i].1)
    }

    /// Total completed frames across all paths.
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.paths.iter().map(|(_, s)| s.count).sum()
    }

    /// Flamegraph collapsed-stack text: one `path self_ns` line per
    /// path, sorted, trailing newline when non-empty.
    #[must_use]
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for (path, stats) in &self.paths {
            out.push_str(path);
            out.push(' ');
            out.push_str(&stats.self_ns.to_string());
            out.push('\n');
        }
        out
    }

    /// Compare this snapshot against `base`, path by path: for every call
    /// path in either snapshot, the per-path deltas `self − base` of
    /// count, cumulative/self nanoseconds, and allocation pressure.
    /// Paths present on only one side surface with their full magnitude
    /// (positive for added paths, negative for removed ones), so
    /// `a.diff(a)` is all-zero and `a.diff(b)` is the exact negation of
    /// `b.diff(a)`.
    #[must_use]
    pub fn diff(&self, base: &ProfileSnapshot) -> ProfileDiff {
        let zero = PathStats::default();
        let mut keys: Vec<&str> = self.paths.iter().map(|(p, _)| p.as_str()).collect();
        keys.extend(base.paths.iter().map(|(p, _)| p.as_str()));
        keys.sort_unstable();
        keys.dedup();
        let paths = keys
            .into_iter()
            .map(|key| {
                let new = self.path(key);
                let old = base.path(key);
                let status = match (new, old) {
                    (Some(_), None) => PathStatus::Added,
                    (None, Some(_)) => PathStatus::Removed,
                    _ => PathStatus::Common,
                };
                let new = new.unwrap_or(&zero);
                let old = old.unwrap_or(&zero);
                let delta = PathDelta {
                    status,
                    count: sdiff(new.count, old.count),
                    total_ns: sdiff(new.total_ns, old.total_ns),
                    self_ns: sdiff(new.self_ns, old.self_ns),
                    alloc_count: sdiff(new.alloc.count, old.alloc.count),
                    alloc_bytes: sdiff(new.alloc.bytes, old.alloc.bytes),
                    self_alloc_count: sdiff(new.self_alloc.count, old.self_alloc.count),
                    self_alloc_bytes: sdiff(new.self_alloc.bytes, old.self_alloc.bytes),
                };
                (key.to_string(), delta)
            })
            .collect();
        ProfileDiff {
            paths,
            base_dropped: base.dropped,
            new_dropped: self.dropped,
        }
    }

    /// Machine-readable JSON: schema `airfinger-profile-v1`.
    #[must_use]
    pub fn to_json(&self) -> String {
        use crate::export::json_string;
        let mut out = String::from("{\n  \"schema\": \"airfinger-profile-v1\",\n");
        out.push_str(&format!("  \"dropped_paths\": {},\n", self.dropped));
        out.push_str("  \"paths\": [\n");
        for (i, (path, s)) in self.paths.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"path\": {}, \"count\": {}, \"total_ns\": {}, \"self_ns\": {}, \
                 \"alloc_count\": {}, \"alloc_bytes\": {}, \
                 \"self_alloc_count\": {}, \"self_alloc_bytes\": {}}}{}\n",
                json_string(path),
                s.count,
                s.total_ns,
                s.self_ns,
                s.alloc.count,
                s.alloc.bytes,
                s.self_alloc.count,
                s.self_alloc.bytes,
                if i + 1 == self.paths.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Saturating signed difference `new − old` of two `u64` readings.
fn sdiff(new: u64, old: u64) -> i64 {
    if new >= old {
        i64::try_from(new - old).unwrap_or(i64::MAX)
    } else {
        i64::try_from(old - new).map_or(i64::MIN, |d| -d)
    }
}

/// Whether a path existed in the base snapshot, the new one, or both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathStatus {
    /// Present only in the new snapshot.
    Added,
    /// Present only in the base snapshot.
    Removed,
    /// Present in both.
    Common,
}

impl PathStatus {
    fn as_str(self) -> &'static str {
        match self {
            PathStatus::Added => "added",
            PathStatus::Removed => "removed",
            PathStatus::Common => "common",
        }
    }
}

/// Signed per-path cost deltas (`new − base`, saturating at `i64` range).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathDelta {
    /// Which side(s) of the comparison the path appeared on.
    pub status: PathStatus,
    /// Completed-frame count delta.
    pub count: i64,
    /// Cumulative-nanoseconds delta.
    pub total_ns: i64,
    /// Self-nanoseconds delta.
    pub self_ns: i64,
    /// Cumulative allocation-event delta.
    pub alloc_count: i64,
    /// Cumulative allocated-bytes delta.
    pub alloc_bytes: i64,
    /// Self allocation-event delta.
    pub self_alloc_count: i64,
    /// Self allocated-bytes delta.
    pub self_alloc_bytes: i64,
}

impl PathDelta {
    /// Whether every delta is exactly zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.count == 0
            && self.total_ns == 0
            && self.self_ns == 0
            && self.alloc_count == 0
            && self.alloc_bytes == 0
            && self.self_alloc_count == 0
            && self.self_alloc_bytes == 0
    }
}

/// The result of [`ProfileSnapshot::diff`]: one signed delta per call
/// path in the union of the two snapshots, sorted by path.
#[derive(Debug, Clone, Default)]
pub struct ProfileDiff {
    /// `(call path, signed delta)` pairs, lexicographically sorted.
    pub paths: Vec<(String, PathDelta)>,
    /// Dropped-path count of the base snapshot.
    pub base_dropped: u64,
    /// Dropped-path count of the new snapshot.
    pub new_dropped: u64,
}

impl ProfileDiff {
    /// Delta for one exact path, if present in either snapshot.
    #[must_use]
    pub fn path(&self, path: &str) -> Option<&PathDelta> {
        self.paths
            .binary_search_by(|(p, _)| p.as_str().cmp(path))
            .ok()
            .map(|i| &self.paths[i].1)
    }

    /// Whether the two snapshots were identical (every delta zero).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.paths.iter().all(|(_, d)| d.is_zero())
    }

    /// Signed collapsed-stack text for differential flamegraphs: one
    /// `path signed_self_ns_delta` line per path whose self time moved,
    /// sorted by path. Feed to a flamegraph renderer in "diff" mode:
    /// positive lines are regressions (red), negative ones improvements
    /// (blue).
    #[must_use]
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for (path, delta) in &self.paths {
            if delta.self_ns == 0 {
                continue;
            }
            out.push_str(path);
            out.push(' ');
            out.push_str(&delta.self_ns.to_string());
            out.push('\n');
        }
        out
    }

    /// Machine-readable JSON: schema `airfinger-profile-diff-v1`. Zero
    /// deltas are kept (a path that exists unchanged on both sides is
    /// information), ordering matches [`ProfileDiff::paths`].
    #[must_use]
    pub fn to_json(&self) -> String {
        use crate::export::json_string;
        let mut out = String::from("{\n  \"schema\": \"airfinger-profile-diff-v1\",\n");
        out.push_str(&format!(
            "  \"base_dropped_paths\": {},\n  \"new_dropped_paths\": {},\n",
            self.base_dropped, self.new_dropped
        ));
        out.push_str("  \"paths\": [\n");
        for (i, (path, d)) in self.paths.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"path\": {}, \"status\": {}, \"d_count\": {}, \
                 \"d_total_ns\": {}, \"d_self_ns\": {}, \
                 \"d_alloc_count\": {}, \"d_alloc_bytes\": {}, \
                 \"d_self_alloc_count\": {}, \"d_self_alloc_bytes\": {}}}{}\n",
                json_string(path),
                json_string(d.status.as_str()),
                d.count,
                d.total_ns,
                d.self_ns,
                d.alloc_count,
                d.alloc_bytes,
                d.self_alloc_count,
                d.self_alloc_bytes,
                if i + 1 == self.paths.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// The stored reference snapshot behind `GET /profile?diff=base`.
fn baseline_slot() -> &'static Mutex<Option<ProfileSnapshot>> {
    static BASELINE: OnceLock<Mutex<Option<ProfileSnapshot>>> = OnceLock::new();
    BASELINE.get_or_init(|| Mutex::new(None))
}

/// Store `snap` as the diff baseline (`GET /profile?baseline=set` takes a
/// live snapshot; tools can also install one programmatically).
pub fn set_baseline(snap: ProfileSnapshot) {
    *baseline_slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner) = Some(snap);
}

/// The stored diff baseline, if one has been set.
#[must_use]
pub fn baseline() -> Option<ProfileSnapshot> {
    baseline_slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// Clear the stored diff baseline.
pub fn clear_baseline() {
    *baseline_slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner) = None;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes profiler unit tests: they share the global table and
    /// the enable switch.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[cfg(feature = "obs")]
    #[test]
    fn nested_frames_attribute_self_and_total() {
        let _g = guard();
        reset();
        set_enabled(true);
        assert!(enter_static("outer_seconds"));
        assert!(enter_static("inner_seconds"));
        exit(40);
        exit(100);
        set_enabled(false);
        let snap = snapshot();
        let outer = snap.path("outer_seconds").copied().unwrap_or_default();
        let inner = snap
            .path("outer_seconds;inner_seconds")
            .copied()
            .unwrap_or_default();
        assert_eq!(inner.count, 1);
        assert_eq!(inner.total_ns, 40);
        assert_eq!(inner.self_ns, 40);
        assert_eq!(outer.count, 1);
        assert_eq!(outer.total_ns, 100);
        assert_eq!(outer.self_ns, 60, "child time subtracted");
        // ≥, not ==: other unit tests in this binary may profile their
        // own spans concurrently while the switch is on.
        assert!(snap.frames() >= 2);
        let collapsed = snap.collapsed();
        assert!(collapsed.contains("outer_seconds 60\n"));
        assert!(collapsed.contains("outer_seconds;inner_seconds 40\n"));
        reset();
    }

    #[cfg(feature = "obs")]
    #[test]
    fn under_scopes_to_a_root() {
        let _g = guard();
        reset();
        set_enabled(true);
        assert!(enter_static("root_a_seconds"));
        exit(10);
        assert!(enter_static("root_b_seconds"));
        assert!(enter_static("leaf_seconds"));
        exit(3);
        exit(9);
        set_enabled(false);
        let snap = snapshot();
        let scoped = snap.under("root_b_seconds");
        assert_eq!(scoped.paths.len(), 2);
        assert!(scoped.path("root_a_seconds").is_none());
        assert!(scoped.path("root_b_seconds;leaf_seconds").is_some());
        // `under` must not match a sibling sharing the root as a string
        // prefix.
        assert!(snap.under("root_").paths.is_empty());
        reset();
    }

    #[test]
    fn disabled_enter_pushes_nothing() {
        let _g = guard();
        set_enabled(false);
        assert!(!enter_static("never_seconds"));
        // A stray exit with an empty stack must be harmless.
        exit(5);
    }

    fn snap_of(paths: &[(&str, PathStats)]) -> ProfileSnapshot {
        let mut paths: Vec<(String, PathStats)> =
            paths.iter().map(|(p, s)| ((*p).to_string(), *s)).collect();
        // Real snapshots come out of a BTreeMap; keep the sorted-paths
        // invariant `ProfileSnapshot::path` relies on.
        paths.sort_by(|a, b| a.0.cmp(&b.0));
        ProfileSnapshot { paths, dropped: 0 }
    }

    fn stats(count: u64, total_ns: u64, self_ns: u64, allocs: u64, bytes: u64) -> PathStats {
        PathStats {
            count,
            total_ns,
            self_ns,
            alloc: AllocStats {
                count: allocs,
                bytes,
            },
            self_alloc: AllocStats {
                count: allocs,
                bytes,
            },
        }
    }

    #[test]
    fn diff_of_a_snapshot_with_itself_is_all_zero() {
        let a = snap_of(&[
            ("root_seconds", stats(3, 900, 500, 4, 128)),
            ("root_seconds;leaf_seconds", stats(3, 400, 400, 1, 32)),
        ]);
        let d = a.diff(&a);
        assert!(d.is_zero());
        assert_eq!(d.paths.len(), 2);
        assert!(d.paths.iter().all(|(_, p)| p.status == PathStatus::Common));
        assert_eq!(d.collapsed(), "", "zero deltas are elided from collapsed");
    }

    #[test]
    fn diff_signs_added_and_removed_paths() {
        let base = snap_of(&[("old_only_seconds", stats(2, 100, 100, 5, 64))]);
        let new = snap_of(&[("new_only_seconds", stats(1, 70, 70, 2, 16))]);
        let d = new.diff(&base);
        let added = d.path("new_only_seconds").unwrap();
        assert_eq!(added.status, PathStatus::Added);
        assert_eq!(added.count, 1);
        assert_eq!(added.self_ns, 70);
        assert_eq!(added.alloc_bytes, 16);
        let removed = d.path("old_only_seconds").unwrap();
        assert_eq!(removed.status, PathStatus::Removed);
        assert_eq!(removed.count, -2);
        assert_eq!(removed.self_ns, -100);
        assert_eq!(removed.alloc_count, -5);
        // Antisymmetry: the reverse diff is the exact negation.
        let rev = base.diff(&new);
        assert_eq!(rev.path("new_only_seconds").unwrap().self_ns, -70);
        assert_eq!(rev.path("old_only_seconds").unwrap().self_ns, 100);
        assert_eq!(
            rev.path("new_only_seconds").unwrap().status,
            PathStatus::Removed
        );
    }

    #[test]
    fn diff_collapsed_and_json_are_signed() {
        let base = snap_of(&[("hot_seconds", stats(10, 1000, 1000, 0, 0))]);
        let new = snap_of(&[
            ("hot_seconds", stats(10, 700, 700, 0, 0)),
            ("cold_seconds", stats(1, 50, 50, 0, 0)),
        ]);
        let d = new.diff(&base);
        let collapsed = d.collapsed();
        assert!(collapsed.contains("hot_seconds -300\n"), "{collapsed}");
        assert!(collapsed.contains("cold_seconds 50\n"), "{collapsed}");
        let json = d.to_json();
        assert!(
            json.contains("\"schema\": \"airfinger-profile-diff-v1\""),
            "{json}"
        );
        assert!(json.contains("\"d_self_ns\": -300"), "{json}");
        assert!(json.contains("\"status\": \"added\""), "{json}");
    }

    #[test]
    fn sdiff_saturates_at_i64_range() {
        assert_eq!(sdiff(5, 2), 3);
        assert_eq!(sdiff(2, 5), -3);
        assert_eq!(sdiff(u64::MAX, 0), i64::MAX);
        assert_eq!(sdiff(0, u64::MAX), i64::MIN);
    }

    #[test]
    fn baseline_slot_round_trips() {
        let _g = guard();
        let a = snap_of(&[("base_seconds", stats(1, 10, 10, 0, 0))]);
        set_baseline(a.clone());
        let got = baseline().expect("baseline stored");
        assert!(got.diff(&a).is_zero());
        clear_baseline();
        assert!(baseline().is_none());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn json_export_is_well_formed() {
        let _g = guard();
        reset();
        set_enabled(true);
        assert!(enter_static("json_root_seconds"));
        exit(7);
        set_enabled(false);
        let json = snapshot().to_json();
        assert!(json.contains("\"schema\": \"airfinger-profile-v1\""));
        assert!(json.contains("\"path\": \"json_root_seconds\""));
        assert!(json.contains("\"total_ns\": 7"));
        reset();
    }
}
