//! Flight recorder: a bounded ring of recent raw samples, per-push stage
//! timings, and events, dumped as a post-mortem JSON document when an SLO
//! breach occurs.
//!
//! The recorder continuously taps the engine's sample stream at O(1) per
//! push (a `VecDeque` ring capped at a fixed capacity). When the health
//! model transitions into `Unhealthy`, the monitor asks for a
//! [`Dump`]: a self-contained JSON document carrying the trigger, the
//! breaching window's statistics, the transition history, and the ring's
//! raw signal — the window of evidence that caused the breach. The
//! recorder does **no file I/O**; callers (CLI, bench) decide where the
//! JSON goes.
//!
//! Dump schema (`airfinger-flight-recorder-v1`):
//!
//! ```json
//! {
//!   "schema": "airfinger-flight-recorder-v1",
//!   "sequence": 0,
//!   "trigger": "segmentation_stall",
//!   "state": "unhealthy",
//!   "window": { "index": 7, "start_sample": 3500, "samples": 500,
//!               "recognitions": 0, "rejections": 0, "segments": 0,
//!               "rejection_ratio": 0, "mean_threshold": 12.5,
//!               "p95_push_seconds": 1.2e-5, "max_push_seconds": 4.0e-5 },
//!   "transitions": [ { "window": 5, "from": "healthy",
//!                      "to": "degraded", "reason": "segmentation_stall" } ],
//!   "journal": { "first_session_seq": 2, "last_session_seq": 5 },
//!   "ring": { "capacity": 1024, "first_sample": 2976, "last_sample": 3999,
//!             "channels": [[…], […], […]],
//!             "push_seconds": […],
//!             "events": [ { "sample": 3105, "event": "rejected" } ] }
//! }
//! ```

use crate::export::{json_number, json_string};
use crate::health::Transition;
use crate::window::WindowStats;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Configuration for [`FlightRecorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Ring capacity in samples. The default of 1024 holds ~10 s at the
    /// paper's 100 Hz — comfortably more than one default monitoring
    /// window, so a dump always contains the breach window's signal.
    pub capacity: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig { capacity: 1024 }
    }
}

/// One ring entry: a raw multi-channel sample plus its push timing and
/// an optional event tag ("detect", "rejected", …).
#[derive(Debug, Clone, PartialEq)]
struct Entry {
    sample_index: u64,
    channels: Vec<f64>,
    push_seconds: f64,
    event: Option<&'static str>,
}

/// A rendered post-mortem document.
#[derive(Debug, Clone, PartialEq)]
pub struct Dump {
    /// 0-based dump ordinal within the session.
    pub sequence: u64,
    /// The breaching rule's tag (e.g. `segmentation_stall`).
    pub trigger: String,
    /// Ordinal of the window whose evaluation triggered the dump.
    pub window_index: u64,
    /// The complete JSON document.
    pub json: String,
}

impl Dump {
    /// A collision-free filename for this dump,
    /// e.g. `flight_recorder_000_segmentation_stall.json`.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!("flight_recorder_{:03}_{}.json", self.sequence, self.trigger)
    }
}

/// Bounded ring over the engine's raw sample stream.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    entries: VecDeque<Entry>,
    recorded: u64,
}

impl FlightRecorder {
    /// Create an empty recorder. A zero capacity is clamped to 1.
    #[must_use]
    pub fn new(config: RecorderConfig) -> Self {
        let capacity = config.capacity.max(1);
        FlightRecorder {
            capacity,
            entries: VecDeque::with_capacity(capacity),
            recorded: 0,
        }
    }

    /// Ring capacity in samples.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Samples currently held (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total samples ever recorded (not capped by the ring).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Tap one pushed sample. `event` tags the sample when a segment
    /// closed on it (use [`Outcome::tag`](crate::window::Outcome::tag)).
    pub fn record(
        &mut self,
        sample_index: u64,
        channels: &[f64],
        push_seconds: f64,
        event: Option<&'static str>,
    ) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(Entry {
            sample_index,
            channels: channels.to_vec(),
            push_seconds,
            event,
        });
        self.recorded += 1;
    }

    /// Render a post-mortem [`Dump`] for an SLO breach: the trigger, the
    /// breaching window, the transition log so far, and the ring's
    /// contents. `journal` cross-links the dump to the emitting
    /// monitor's event-journal range for the unhealthy episode, as
    /// `(first_session_seq, last_session_seq)` (see [`crate::events`]);
    /// `None` renders as `"journal": null`.
    #[must_use]
    pub fn dump(
        &self,
        sequence: u64,
        state_tag: &str,
        trigger: &str,
        window: &WindowStats,
        transitions: &[Transition],
        journal: Option<(u64, u64)>,
    ) -> Dump {
        let mut out = String::with_capacity(4096 + self.entries.len() * 32);
        out.push_str("{\n  \"schema\": \"airfinger-flight-recorder-v1\",\n");
        let _ = writeln!(out, "  \"sequence\": {sequence},");
        let _ = writeln!(out, "  \"trigger\": {},", json_string(trigger));
        let _ = writeln!(out, "  \"state\": {},", json_string(state_tag));
        out.push_str("  \"window\": ");
        write_window(&mut out, window);
        out.push_str(",\n  \"transitions\": [");
        for (i, t) in transitions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"window\": {}, \"from\": {}, \"to\": {}, \"reason\": {}}}",
                t.window_index,
                json_string(t.from.tag()),
                json_string(t.to.tag()),
                json_string(t.to.reason().map_or("none", |r| r.tag())),
            );
        }
        if !transitions.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        match journal {
            Some((first, last)) => {
                let _ = writeln!(
                    out,
                    "  \"journal\": {{\"first_session_seq\": {first}, \
                     \"last_session_seq\": {last}}},"
                );
            }
            None => out.push_str("  \"journal\": null,\n"),
        }
        out.push_str("  \"ring\": {\n");
        let _ = writeln!(out, "    \"capacity\": {},", self.capacity);
        let first = self.entries.front().map_or(0, |e| e.sample_index);
        let last = self.entries.back().map_or(0, |e| e.sample_index);
        let _ = writeln!(out, "    \"first_sample\": {first},");
        let _ = writeln!(out, "    \"last_sample\": {last},");
        let n_channels = self.entries.front().map_or(0, |e| e.channels.len());
        out.push_str("    \"channels\": [");
        for k in 0..n_channels {
            if k > 0 {
                out.push(',');
            }
            out.push_str("\n      [");
            for (i, e) in self.entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json_number(e.channels.get(k).copied().unwrap_or(0.0)));
            }
            out.push(']');
        }
        if n_channels > 0 {
            out.push_str("\n    ");
        }
        out.push_str("],\n    \"push_seconds\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_number(e.push_seconds));
        }
        out.push_str("],\n    \"events\": [");
        let mut first_event = true;
        for e in &self.entries {
            if let Some(tag) = e.event {
                if !first_event {
                    out.push(',');
                }
                first_event = false;
                let _ = write!(
                    out,
                    "\n      {{\"sample\": {}, \"event\": {}}}",
                    e.sample_index,
                    json_string(tag)
                );
            }
        }
        if !first_event {
            out.push_str("\n    ");
        }
        out.push_str("]\n  }\n}\n");
        Dump {
            sequence,
            trigger: trigger.to_string(),
            window_index: window.index,
            json: out,
        }
    }
}

/// Serialize one window's statistics as a JSON object.
fn write_window(out: &mut String, w: &WindowStats) {
    let _ = write!(
        out,
        "{{\"index\": {}, \"start_sample\": {}, \"samples\": {}, \
         \"recognitions\": {}, \"rejections\": {}, \"segments\": {}, \
         \"rejection_ratio\": {}, \"mean_threshold\": {}, \
         \"p95_push_seconds\": {}, \"max_push_seconds\": {}}}",
        w.index,
        w.start_sample,
        w.samples,
        w.recognitions,
        w.rejections,
        w.segments,
        json_number(w.rejection_ratio()),
        json_number(w.mean_threshold),
        json_number(w.p95_push_seconds),
        json_number(w.max_push_seconds),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::{HealthReason, HealthState};

    fn window() -> WindowStats {
        WindowStats {
            index: 7,
            start_sample: 3500,
            samples: 500,
            recognitions: 0,
            rejections: 0,
            segments: 0,
            mean_threshold: 12.5,
            p95_push_seconds: 1.2e-5,
            max_push_seconds: 4.0e-5,
        }
    }

    #[test]
    fn ring_is_bounded_and_ordered() {
        let mut r = FlightRecorder::new(RecorderConfig { capacity: 4 });
        for i in 0..10u64 {
            r.record(i, &[i as f64, 0.0, 0.0], 1e-6, None);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.recorded(), 10);
        let d = r.dump(0, "unhealthy", "segmentation_stall", &window(), &[], None);
        assert!(d.json.contains("\"first_sample\": 6"));
        assert!(d.json.contains("\"last_sample\": 9"));
        assert!(d.json.contains("\"journal\": null"));
    }

    #[test]
    fn dump_is_valid_json_with_schema_and_evidence() {
        let mut r = FlightRecorder::new(RecorderConfig { capacity: 8 });
        for i in 0..8u64 {
            let event = if i == 3 { Some("rejected") } else { None };
            r.record(i, &[200.0 + i as f64, 210.0, 190.0], 2e-6, event);
        }
        let transitions = [Transition {
            window_index: 5,
            from: HealthState::Healthy,
            to: HealthState::Degraded(HealthReason::SegmentationStall),
        }];
        let d = r.dump(
            1,
            "unhealthy",
            "segmentation_stall",
            &window(),
            &transitions,
            Some((2, 5)),
        );
        assert_eq!(d.file_name(), "flight_recorder_001_segmentation_stall.json");
        let v: serde::Value = serde_json::from_str(&d.json).expect("dump parses as JSON");
        let obj = v.as_object().expect("object");
        assert_eq!(
            obj.get("schema").and_then(serde::Value::as_str),
            Some("airfinger-flight-recorder-v1")
        );
        assert_eq!(
            obj.get("trigger").and_then(serde::Value::as_str),
            Some("segmentation_stall")
        );
        let win = obj
            .get("window")
            .and_then(serde::Value::as_object)
            .expect("window object");
        assert_eq!(win.get("index").and_then(serde::Value::as_u64), Some(7));
        assert_eq!(win.get("segments").and_then(serde::Value::as_u64), Some(0));
        let ring = obj
            .get("ring")
            .and_then(serde::Value::as_object)
            .expect("ring object");
        assert_eq!(
            ring.get("channels")
                .and_then(serde::Value::as_array)
                .map(<[serde::Value]>::len),
            Some(3),
            "channel-major ring"
        );
        let events = ring
            .get("events")
            .and_then(serde::Value::as_array)
            .expect("events");
        assert_eq!(events.len(), 1);
        let ts = obj
            .get("transitions")
            .and_then(serde::Value::as_array)
            .expect("transitions");
        assert_eq!(ts.len(), 1);
        let journal = obj
            .get("journal")
            .and_then(serde::Value::as_object)
            .expect("journal cross-link");
        assert_eq!(
            journal
                .get("first_session_seq")
                .and_then(serde::Value::as_u64),
            Some(2)
        );
        assert_eq!(
            journal
                .get("last_session_seq")
                .and_then(serde::Value::as_u64),
            Some(5)
        );
    }

    #[test]
    fn empty_recorder_dump_parses() {
        let r = FlightRecorder::new(RecorderConfig { capacity: 2 });
        let d = r.dump(0, "unhealthy", "latency_budget", &window(), &[], None);
        let _: serde::Value = serde_json::from_str(&d.json).expect("parses");
    }
}
