//! Hand-rolled, zero-dependency observability for the airFinger workspace.
//!
//! The workspace vendors every dependency offline, so the usual suspects
//! (`tracing`, `metrics`, `prometheus`) are unavailable; this crate
//! provides the subset the pipeline actually needs:
//!
//! - **Counters** — monotone, saturating `u64` event counts
//!   ([`Counter`]).
//! - **Gauges** — instantaneous `f64` values ([`Gauge`]).
//! - **Histograms** — fixed-bucket latency/size distributions
//!   ([`Histogram`]).
//! - **Spans** — RAII timers over [`std::time::Instant`] that record
//!   elapsed seconds into a histogram and optionally print on completion
//!   ([`Span`]).
//! - **Exporters** — machine-readable JSON and Prometheus text format
//!   over a [`Snapshot`] of the global registry ([`export`]), plus a
//!   structured [`report::RunReport`] for whole-run artifacts.
//! - **Continuous monitoring** — sliding-window aggregation over a
//!   deterministic sample-count horizon ([`window`]), a declarative SLO
//!   health-state machine ([`health`]), and a flight recorder that dumps
//!   post-mortem JSON on breach ([`recorder`]), composed behind
//!   [`monitor::EngineMonitor`] for long-running streaming engines.
//! - **Continuous profiling** — deterministic per-stage cost attribution
//!   over the span hierarchy with collapsed-stack export ([`profile`]),
//!   opt-in allocation accounting via a counting global allocator
//!   ([`alloc`]), a bounded history ring with deterministic
//!   downsampling ([`timeseries`]), and a zero-dependency HTTP scrape
//!   server exposing `/metrics`, `/health`, `/profile`, and `/events`
//!   ([`serve`]).
//! - **Event journal & error budgets** — a bounded, deterministic,
//!   structured event timeline with correlation fields ([`events`]) and
//!   SRE-style multi-window burn-rate alerting over the SLO ladder
//!   ([`budget`]).
//!
//! # Cost model
//!
//! Metrics live in a global [`Registry`]. Registration (name → handle)
//! takes a mutex once; handles are `Arc`-backed and every record
//! operation afterwards is a handful of relaxed atomic ops. The
//! [`counter!`]/[`gauge!`]/[`histogram!`]/[`span!`] macros cache the
//! handle in a per-call-site `OnceLock`, so hot paths never re-enter the
//! registry lock.
//!
//! Everything is gated twice:
//!
//! - the `obs` **compile-time feature** (default on): with it disabled,
//!   [`recording()`] is statically `false` and the whole layer folds to
//!   no-ops;
//! - the **runtime switch** [`set_recording`]: a disabled registry
//!   short-circuits every record path before it reads the clock or an
//!   atomic.
//!
//! Instrumentation never influences pipeline results, and all counters
//! are deterministic across worker-thread counts (see the workspace's
//! `metrics_determinism` integration test).
//!
//! # Example
//!
//! ```
//! airfinger_obs::counter!("frames_total").inc();
//! {
//!     let _span = airfinger_obs::span!("stage_seconds", stage = "demo");
//!     // … timed work …
//! }
//! let snapshot = airfinger_obs::global().snapshot();
//! println!("{}", snapshot.to_json());
//! ```

// `deny`, not `forbid`: the [`alloc`] module opts back in — wrapping
// [`std::alloc::GlobalAlloc`] is inherently unsafe — and is the single
// audited exception (every site carries a `// SAFETY:` justification,
// enforced by `airfinger-lint` rule U).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod budget;
pub mod events;
pub mod export;
pub mod health;
pub mod latency;
pub mod metrics;
pub mod monitor;
pub mod profile;
pub mod quantile;
pub mod recorder;
pub mod registry;
pub mod report;
pub mod serve;
pub mod span;
pub mod timeseries;
pub mod trace;
pub mod window;

pub use alloc::{AllocStats, CountingAlloc};
pub use budget::{BudgetConfig, BurnAlert, BurnSpeed, ErrorBudget};
pub use events::{Event, EventKind, Journal};
pub use health::{HealthModel, HealthReason, HealthState, SloRules, Transition};
pub use latency::{LatencyHist, LatencySnapshot};
pub use metrics::{Counter, Gauge, Histogram};
pub use monitor::{EngineMonitor, MonitorConfig};
pub use profile::{PathStats, ProfileSnapshot};
pub use quantile::{PercentileSnapshot, Percentiles, P2};
pub use recorder::{Dump, FlightRecorder, RecorderConfig};
pub use registry::{global, MetricId, Registry, Snapshot};
pub use serve::ScrapeServer;
pub use span::Span;
pub use window::{Outcome, SlidingWindow, WindowConfig, WindowStats};

use std::sync::atomic::{AtomicBool, Ordering};

/// Runtime recording switch (only consulted when the `obs` feature is on).
static RECORDING: AtomicBool = AtomicBool::new(true);

/// Runtime trace switch: when on, *every* span prints its elapsed time to
/// stderr on completion.
static TRACING: AtomicBool = AtomicBool::new(false);

/// Whether instrumentation is live. Statically `false` when the crate is
/// built without the `obs` feature, so every record path folds away.
#[inline(always)]
#[must_use]
pub fn recording() -> bool {
    cfg!(feature = "obs") && RECORDING.load(Ordering::Relaxed)
}

/// Turn runtime recording on or off. Off, every counter/gauge/histogram
/// record and every span becomes a no-op (spans do not read the clock).
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

/// Whether global span tracing is on (see [`set_trace`]).
#[inline]
#[must_use]
pub fn tracing() -> bool {
    cfg!(feature = "obs") && TRACING.load(Ordering::Relaxed)
}

/// Turn global span tracing on or off. On, every span prints
/// `[obs] <name>{labels}: <elapsed>` to stderr when it completes;
/// individual spans can also opt in via [`Span::traced`].
pub fn set_trace(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// Register (or fetch) an unlabelled counter in the global registry.
#[must_use]
pub fn counter(name: &str) -> Counter {
    global().counter(name, &[], "")
}

/// Register (or fetch) a labelled counter in the global registry.
#[must_use]
pub fn counter_with(name: &str, labels: &[(&str, &str)]) -> Counter {
    global().counter(name, labels, "")
}

/// Register (or fetch) an unlabelled gauge in the global registry.
#[must_use]
pub fn gauge(name: &str) -> Gauge {
    global().gauge(name, &[], "")
}

/// Register (or fetch) a labelled gauge in the global registry (for
/// dynamic label values; prefer the [`gauge!`] macro when they are
/// static).
#[must_use]
pub fn gauge_with(name: &str, labels: &[(&str, &str)]) -> Gauge {
    global().gauge(name, labels, "")
}

/// Register (or fetch) an unlabelled latency histogram (default
/// exponential seconds buckets) in the global registry.
#[must_use]
pub fn histogram(name: &str) -> Histogram {
    global().histogram(name, &[], metrics::default_latency_edges(), "")
}

/// Register (or fetch) a labelled histogram with explicit bucket edges.
#[must_use]
pub fn histogram_with(name: &str, labels: &[(&str, &str)], edges: &[f64]) -> Histogram {
    global().histogram(name, labels, edges.to_vec(), "")
}

/// Start a span recording into a labelled latency histogram. Prefer the
/// [`span!`] macro when the labels are static — it caches the handle.
pub fn span_with(name: &str, labels: &[(&str, &str)]) -> Span {
    if !recording() {
        return Span::disabled();
    }
    Span::from_histogram_named(
        global().histogram(name, labels, metrics::default_latency_edges(), ""),
        MetricId::new(name, labels).to_string(),
    )
}

/// Cache-and-fetch an unlabelled or statically-labelled [`Counter`].
///
/// Labels must be string literals (the handle is cached per call site).
#[macro_export]
macro_rules! counter {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| {
            $crate::global().counter($name, &[$((stringify!($k), $v)),*], "")
        })
    }};
}

/// Cache-and-fetch an unlabelled or statically-labelled [`Gauge`].
///
/// Labels must be string literals (the handle is cached per call site).
#[macro_export]
macro_rules! gauge {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Gauge> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| {
            $crate::global().gauge($name, &[$((stringify!($k), $v)),*], "")
        })
    }};
}

/// Cache-and-fetch a statically-labelled latency [`Histogram`] (default
/// exponential seconds buckets).
///
/// Labels must be string literals (the handle is cached per call site).
#[macro_export]
macro_rules! histogram {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| {
            $crate::global().histogram(
                $name,
                &[$((stringify!($k), $v)),*],
                $crate::metrics::default_latency_edges(),
                "",
            )
        })
    }};
}

/// Start a [`Span`] recording elapsed seconds into a statically-labelled
/// latency histogram. The histogram handle is cached per call site, so
/// this is safe on hot paths.
///
/// ```
/// let _span = airfinger_obs::span!("pipeline_stage_seconds", stage = "sbc");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {{
        if $crate::recording() {
            static HANDLE: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
            let histogram = HANDLE.get_or_init(|| {
                $crate::global().histogram(
                    $name,
                    &[$((stringify!($k), $v)),*],
                    $crate::metrics::default_latency_edges(),
                    "",
                )
            });
            $crate::Span::from_histogram(
                histogram.clone(),
                concat!($name $(, "{", stringify!($k), "=", $v, "}")*),
            )
        } else {
            $crate::Span::disabled()
        }
    }};
}

/// Cache-and-fetch a statically-labelled nanosecond [`LatencyHist`].
///
/// Labels must be string literals (the handle is cached per call site).
/// Returns an owned handle (a cheap `Arc` bump) so the expression can be
/// passed straight into [`Span::with_latency`] without a visible clone at
/// the call site — the record path after caching is a few relaxed
/// atomics, no allocation, no lock.
///
/// ```
/// let hist = airfinger_obs::latency!("demo_stage_ns", stage = "sbc");
/// hist.record(1_250);
/// ```
#[macro_export]
macro_rules! latency {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::LatencyHist> = ::std::sync::OnceLock::new();
        HANDLE
            .get_or_init(|| $crate::latency::hist_with($name, &[$((stringify!($k), $v)),*]))
            .clone()
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_defaults_on_with_feature() {
        // set_recording itself is exercised in the `runtime_switch`
        // integration test — toggling the global flag here would race the
        // other unit tests in this binary.
        assert_eq!(recording(), cfg!(feature = "obs"));
    }

    #[test]
    fn trace_toggle() {
        assert!(!tracing());
        set_trace(true);
        assert_eq!(tracing(), cfg!(feature = "obs"));
        set_trace(false);
        assert!(!tracing());
    }

    #[test]
    fn macros_cache_handles() {
        let a = counter!("lib_macro_counter") as *const Counter;
        let b = counter!("lib_macro_counter") as *const Counter;
        // Two *different* call sites hold different statics but resolve to
        // the same underlying metric.
        assert_ne!(a, b);
        counter!("lib_macro_counter").inc();
        let snap = global().snapshot();
        assert!(snap.counter_value("lib_macro_counter", &[]).is_some());
    }

    #[test]
    fn span_macro_records() {
        {
            let _span = span!("lib_span_seconds", stage = "test");
        }
        let snap = global().snapshot();
        let h = snap.histogram("lib_span_seconds", &[("stage", "test")]);
        if cfg!(feature = "obs") {
            assert!(h.expect("histogram registered").count >= 1);
        } else {
            // With the feature off the span macro never touches the
            // registry at all.
            assert!(h.is_none());
        }
    }
}
