//! Metric primitives: counters, gauges, and fixed-bucket histograms.
//!
//! Handles are cheap `Arc` clones around atomics; every record operation
//! is a few relaxed atomic instructions, safe to share across the
//! workspace's scoped worker threads. All record paths short-circuit when
//! [`crate::recording`] is off.

use crate::quantile::{PercentileSnapshot, Percentiles};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Default histogram bucket upper bounds for latencies, in seconds:
/// roughly exponential from 1 µs to 10 s, dense around the pipeline's
/// per-stage millisecond range. The implicit `+Inf` bucket is appended by
/// the histogram itself.
#[must_use]
pub fn default_latency_edges() -> Vec<f64> {
    vec![
        1e-6, 1e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25,
        0.5, 1.0, 2.5, 5.0, 10.0,
    ]
}

/// A monotone event counter.
///
/// Additions **saturate** at `u64::MAX` rather than wrapping: a counter
/// that has been running for months must never appear to jump backwards
/// to a small value, which is what a silent wrap would look like to a
/// rate() over scrapes.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Create a detached counter (registry code and tests; instrumentation
    /// should go through [`crate::counter!`] or the registry).
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`, saturating at `u64::MAX`.
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::recording() || n == 0 {
            return;
        }
        let mut current = self.value.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_add(n);
            match self.value.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Current count.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zero the counter (test/reset support; see [`crate::Registry::reset`]).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// An instantaneous `f64` value (queue depths, thread counts, ratios).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Create a detached gauge.
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if !crate::recording() {
            return;
        }
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: f64) {
        if !crate::recording() {
            return;
        }
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Zero the gauge.
    pub fn reset(&self) {
        self.bits.store(0.0f64.to_bits(), Ordering::Relaxed);
    }
}

/// A fixed-bucket histogram.
///
/// Buckets follow Prometheus `le` semantics: bucket `i` counts
/// observations `v <= edges[i]`; one implicit `+Inf` bucket catches the
/// rest. Edges are fixed at registration.
///
/// Alongside the lock-free bucket counts, every histogram carries a set
/// of P² streaming quantile estimators (p50/p95/p99, see
/// [`crate::quantile`]) guarded by a short critical section — the only
/// lock on the observe path, held for a few dozen float ops. Percentile
/// estimates, like the bucket distribution itself, depend on observation
/// order and are therefore *scheduling observations*: excluded from the
/// cross-thread determinism contract that covers counters.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

#[derive(Debug)]
struct HistogramInner {
    /// Strictly increasing, finite upper bounds (`+Inf` is implicit).
    edges: Vec<f64>,
    /// Per-bucket counts, `edges.len() + 1` entries (last is `+Inf`).
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    quantiles: Mutex<Percentiles>,
}

impl Histogram {
    /// Create a detached histogram with the given bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty, non-finite, or not strictly increasing
    /// — bucket layouts are static configuration, and a malformed one is
    /// a programming error best caught at registration.
    #[must_use]
    pub fn new(edges: Vec<f64>) -> Self {
        assert!(
            !edges.is_empty(),
            "histogram needs at least one bucket edge"
        );
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]) && edges.iter().all(|e| e.is_finite()),
            "histogram edges must be finite and strictly increasing: {edges:?}"
        );
        let buckets = (0..=edges.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            inner: Arc::new(HistogramInner {
                edges,
                buckets,
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0.0f64.to_bits()),
                quantiles: Mutex::new(Percentiles::new()),
            }),
        }
    }

    /// The bucket upper bounds (without the implicit `+Inf`).
    #[must_use]
    pub fn edges(&self) -> &[f64] {
        &self.inner.edges
    }

    /// Record one observation. `NaN` observations are dropped.
    #[inline]
    pub fn observe(&self, v: f64) {
        if !crate::recording() || v.is_nan() {
            return;
        }
        // First edge >= v, i.e. the `le` bucket; the +Inf bucket when none.
        let bucket = self.inner.edges.partition_point(|&e| e < v);
        self.inner.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        let mut current = self.inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self.inner.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(observed) => current = observed,
            }
        }
        self.inner
            .quantiles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .observe(v);
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.inner.sum_bits.load(Ordering::Relaxed))
    }

    /// Per-bucket counts (non-cumulative), `edges.len() + 1` entries; the
    /// last entry is the `+Inf` bucket.
    #[must_use]
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Current p50/p95/p99 estimates (all `NaN` when no observations).
    #[must_use]
    pub fn percentiles(&self) -> PercentileSnapshot {
        self.inner
            .quantiles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .snapshot()
    }

    /// Zero every bucket, the count, the sum, and the quantile markers.
    pub fn reset(&self) {
        for b in &self.inner.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.inner.count.store(0, Ordering::Relaxed);
        self.inner
            .sum_bits
            .store(0.0f64.to_bits(), Ordering::Relaxed);
        self.inner
            .quantiles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        if cfg!(feature = "obs") {
            assert_eq!(c.value(), 5);
        } else {
            assert_eq!(c.value(), 0);
        }
    }

    #[cfg(feature = "obs")]
    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let c = Counter::new();
        c.add(u64::MAX - 2);
        assert_eq!(c.value(), u64::MAX - 2);
        c.add(1);
        assert_eq!(c.value(), u64::MAX - 1);
        // Overflow clamps at the ceiling — a scrape never sees a wrap.
        c.add(10);
        assert_eq!(c.value(), u64::MAX);
        c.inc();
        assert_eq!(c.value(), u64::MAX);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn gauge_sets_and_adds() {
        let g = Gauge::new();
        g.set(2.5);
        assert_eq!(g.value(), 2.5);
        g.add(-1.0);
        assert_eq!(g.value(), 1.5);
        g.reset();
        assert_eq!(g.value(), 0.0);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn histogram_bucket_edges_are_le_inclusive() {
        let h = Histogram::new(vec![1.0, 2.0, 5.0]);
        // Exactly on an edge lands in that edge's bucket (Prometheus `le`).
        h.observe(1.0);
        h.observe(2.0);
        h.observe(5.0);
        // Strictly between edges lands in the next bucket up.
        h.observe(1.5);
        // Below the first edge lands in the first bucket.
        h.observe(0.0);
        h.observe(-3.0);
        // Above the last edge lands in the implicit +Inf bucket.
        h.observe(100.0);
        h.observe(f64::INFINITY);
        assert_eq!(h.bucket_counts(), vec![3, 2, 1, 2]);
        assert_eq!(h.count(), 8);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn histogram_sum_accumulates() {
        let h = Histogram::new(vec![1.0]);
        h.observe(0.25);
        h.observe(0.5);
        h.observe(4.0);
        assert!((h.sum() - 4.75).abs() < 1e-12);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.bucket_counts(), vec![0, 0]);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn histogram_drops_nan() {
        let h = Histogram::new(vec![1.0]);
        h.observe(f64::NAN);
        assert_eq!(h.count(), 0);
        assert!(h.percentiles().p50.is_nan());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn histogram_percentiles_track_observations() {
        let h = Histogram::new(vec![1.0]);
        assert!(h.percentiles().p50.is_nan());
        for i in 1..=100 {
            h.observe(f64::from(i) / 100.0);
        }
        let p = h.percentiles();
        assert!((p.p50 - 0.5).abs() < 0.1, "p50 = {}", p.p50);
        assert!(p.p50 <= p.p95 && p.p95 <= p.p99);
        h.reset();
        assert!(h.percentiles().p50.is_nan());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_edges() {
        let _ = Histogram::new(vec![2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one bucket edge")]
    fn histogram_rejects_empty_edges() {
        let _ = Histogram::new(vec![]);
    }

    #[test]
    fn default_edges_are_valid() {
        let edges = default_latency_edges();
        assert!(edges.windows(2).all(|w| w[0] < w[1]));
        let _ = Histogram::new(edges);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn concurrent_increments_all_land() {
        let c = Counter::new();
        let h = Histogram::new(vec![0.5, 1.5]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = &c;
                let h = &h;
                scope.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.observe(f64::from(i % 2));
                    }
                });
            }
        });
        assert_eq!(c.value(), 4000);
        assert_eq!(h.count(), 4000);
        assert_eq!(h.bucket_counts(), vec![2000, 2000, 0]);
    }
}
