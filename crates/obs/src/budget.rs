//! SLO error budgets with Google-SRE-style multi-window burn-rate
//! alerting, in deterministic sample-count units.
//!
//! The health ladder (see [`crate::health`]) scores each closed
//! monitoring window as healthy / degraded / unhealthy; the budget layer
//! reduces that to a binary **bad window** (level ≥ degraded) and tracks
//! two things:
//!
//! 1. **Budget remaining** over the whole run: with an objective of
//!    `objective` (fraction of windows that must be good), the run's
//!    error budget is `windows * (1 - objective)` bad windows, and
//!    `remaining = 1 - bad / budget` (1.0 untouched, 0.0 exhausted,
//!    negative overspent).
//! 2. **Burn rate** over two trailing lookbacks: `burn = bad_fraction /
//!    (1 - objective)`. A burn of 1.0 spends the budget exactly at the
//!    sustainable pace; the *fast* lookback (few windows, high
//!    threshold) catches sharp regressions quickly, while the *slow*
//!    lookback (more windows, lower threshold) catches sustained
//!    low-grade erosion — the standard SRE fast-burn / slow-burn pair.
//!
//! Alerts are **edge-triggered with a latch**: an alert fires on the
//! window where the burn rate first crosses its threshold from below
//! and cannot fire again until the burn has dropped back under the
//! threshold. One fault excursion therefore produces exactly one alert
//! per speed, which is what the `repro events` experiment and the CI
//! burn smoke pin.
//!
//! Everything is keyed by window counts — never wall clock — so burn
//! rates, alert counts, and firing windows are bit-identical across
//! worker thread counts.

use std::collections::VecDeque;

/// Budget/burn configuration, in window counts and ratios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetConfig {
    /// Fraction of windows that must be good (e.g. 0.75 = 25% error
    /// budget). Clamped to `[0, 0.999]` when applied.
    pub objective: f64,
    /// Fast-burn trailing lookback, in closed windows (≥ 1).
    pub fast_windows: usize,
    /// Slow-burn trailing lookback, in closed windows (≥ `fast_windows`).
    pub slow_windows: usize,
    /// Fast-burn alert threshold (burn-rate multiple).
    pub fast_burn_threshold: f64,
    /// Slow-burn alert threshold (burn-rate multiple).
    pub slow_burn_threshold: f64,
}

impl Default for BudgetConfig {
    /// Defaults tuned for the synthetic soak: a 25% error budget, a
    /// 4-window fast lookback at 2.5x burn (a transient single-window
    /// spike stays under it; a dropout's stall run crosses it), and an
    /// 8-window slow lookback at 1.5x.
    fn default() -> Self {
        BudgetConfig {
            objective: 0.75,
            fast_windows: 4,
            slow_windows: 8,
            fast_burn_threshold: 2.5,
            slow_burn_threshold: 1.5,
        }
    }
}

impl BudgetConfig {
    /// Per-window error budget rate `1 - objective`, floored away from
    /// zero so burn rates stay finite.
    #[must_use]
    pub fn budget_rate(&self) -> f64 {
        (1.0 - self.objective.clamp(0.0, 0.999)).max(1e-9)
    }
}

/// Which burn-rate lookback fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BurnSpeed {
    /// Short lookback, high threshold.
    Fast,
    /// Long lookback, low threshold.
    Slow,
}

impl BurnSpeed {
    /// Stable lowercase tag (`budget_alerts_total{speed}` label value).
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            BurnSpeed::Fast => "fast",
            BurnSpeed::Slow => "slow",
        }
    }
}

/// One fired burn-rate alert.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnAlert {
    /// Which lookback fired.
    pub speed: BurnSpeed,
    /// The closed window's ordinal at which the threshold was crossed.
    pub window_index: u64,
    /// The burn rate that crossed the threshold.
    pub burn: f64,
}

/// Error-budget accountant for one stream of closed windows.
#[derive(Debug, Clone)]
pub struct ErrorBudget {
    config: BudgetConfig,
    /// Trailing good/bad history, most recent at the back, bounded at
    /// `slow_windows`.
    history: VecDeque<bool>,
    windows: u64,
    bad: u64,
    burn_fast: f64,
    burn_slow: f64,
    fast_latched: bool,
    slow_latched: bool,
    fast_alerts: u64,
    slow_alerts: u64,
}

impl ErrorBudget {
    /// Build an accountant; lookbacks are clamped so
    /// `1 <= fast_windows <= slow_windows`.
    #[must_use]
    pub fn new(config: BudgetConfig) -> Self {
        let mut config = config;
        config.fast_windows = config.fast_windows.max(1);
        config.slow_windows = config.slow_windows.max(config.fast_windows);
        ErrorBudget {
            config,
            history: VecDeque::with_capacity(config.slow_windows),
            windows: 0,
            bad: 0,
            burn_fast: 0.0,
            burn_slow: 0.0,
            fast_latched: false,
            slow_latched: false,
            fast_alerts: 0,
            slow_alerts: 0,
        }
    }

    /// Account one closed window and return any alerts that fired on it
    /// (fast before slow, each at most once per excursion). Burn rates
    /// are only evaluated once the corresponding lookback is full, so a
    /// short run cannot false-alert on its warm-up windows.
    pub fn observe_window(&mut self, bad: bool, window_index: u64) -> Vec<BurnAlert> {
        self.windows += 1;
        if bad {
            self.bad += 1;
        }
        if self.history.len() == self.config.slow_windows {
            self.history.pop_front();
        }
        self.history.push_back(bad);
        self.burn_fast = self.burn_over(self.config.fast_windows);
        self.burn_slow = self.burn_over(self.config.slow_windows);
        let mut alerts = Vec::new();
        if self.history.len() >= self.config.fast_windows {
            if self.burn_fast >= self.config.fast_burn_threshold {
                if !self.fast_latched {
                    self.fast_latched = true;
                    self.fast_alerts += 1;
                    alerts.push(BurnAlert {
                        speed: BurnSpeed::Fast,
                        window_index,
                        burn: self.burn_fast,
                    });
                }
            } else {
                self.fast_latched = false;
            }
        }
        if self.history.len() >= self.config.slow_windows {
            if self.burn_slow >= self.config.slow_burn_threshold {
                if !self.slow_latched {
                    self.slow_latched = true;
                    self.slow_alerts += 1;
                    alerts.push(BurnAlert {
                        speed: BurnSpeed::Slow,
                        window_index,
                        burn: self.burn_slow,
                    });
                }
            } else {
                self.slow_latched = false;
            }
        }
        alerts
    }

    fn burn_over(&self, lookback: usize) -> f64 {
        if lookback == 0 || self.history.len() < lookback {
            return 0.0;
        }
        let bad = self
            .history
            .iter()
            .rev()
            .take(lookback)
            .filter(|b| **b)
            .count();
        #[allow(clippy::cast_precision_loss)] // lookbacks are tiny
        let fraction = bad as f64 / lookback as f64;
        fraction / self.config.budget_rate()
    }

    /// Current fast-burn rate (0.0 until the lookback is full).
    #[must_use]
    pub fn burn_fast(&self) -> f64 {
        self.burn_fast
    }

    /// Current slow-burn rate (0.0 until the lookback is full).
    #[must_use]
    pub fn burn_slow(&self) -> f64 {
        self.burn_slow
    }

    /// Fraction of the run's error budget still unspent: 1.0 untouched,
    /// 0.0 exhausted, negative when overspent. 1.0 before any window.
    #[must_use]
    pub fn remaining(&self) -> f64 {
        if self.windows == 0 {
            return 1.0;
        }
        #[allow(clippy::cast_precision_loss)] // window counts are small
        let budget = self.windows as f64 * self.config.budget_rate();
        #[allow(clippy::cast_precision_loss)]
        let spent = self.bad as f64;
        1.0 - spent / budget
    }

    /// Windows accounted so far.
    #[must_use]
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Bad (level ≥ degraded) windows accounted so far.
    #[must_use]
    pub fn bad_windows(&self) -> u64 {
        self.bad
    }

    /// Fast-burn alerts fired so far.
    #[must_use]
    pub fn fast_alerts(&self) -> u64 {
        self.fast_alerts
    }

    /// Slow-burn alerts fired so far.
    #[must_use]
    pub fn slow_alerts(&self) -> u64 {
        self.slow_alerts
    }

    /// The effective (clamped) configuration.
    #[must_use]
    pub fn config(&self) -> &BudgetConfig {
        &self.config
    }
}

impl Default for ErrorBudget {
    fn default() -> Self {
        ErrorBudget::new(BudgetConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(budget: &mut ErrorBudget, pattern: &[bool]) -> Vec<BurnAlert> {
        let mut alerts = Vec::new();
        for (i, &bad) in pattern.iter().enumerate() {
            alerts.extend(budget.observe_window(bad, i as u64));
        }
        alerts
    }

    #[test]
    fn clean_run_burns_nothing() {
        let mut b = ErrorBudget::default();
        let alerts = feed(&mut b, &[false; 12]);
        assert!(alerts.is_empty());
        assert_eq!(b.bad_windows(), 0);
        assert!((b.remaining() - 1.0).abs() < 1e-12);
        assert_eq!(b.burn_fast(), 0.0);
        assert_eq!(b.burn_slow(), 0.0);
    }

    #[test]
    fn warmup_cannot_false_alert() {
        // Even an all-bad prefix shorter than the fast lookback stays
        // silent: burn is only evaluated on a full lookback.
        let mut b = ErrorBudget::default();
        let alerts = feed(&mut b, &[true, true, true]);
        assert!(alerts.is_empty());
        assert_eq!(b.burn_fast(), 0.0);
    }

    #[test]
    fn fast_burn_fires_exactly_once_per_excursion() {
        // 4-window lookback, 25% budget → burn = bad_in_4. Threshold
        // 2.5 → needs 3 bad windows in the lookback.
        let mut b = ErrorBudget::default();
        let pattern = [false, true, true, true, true, true, false, false];
        let alerts = feed(&mut b, &pattern);
        let fast: Vec<&BurnAlert> = alerts
            .iter()
            .filter(|a| a.speed == BurnSpeed::Fast)
            .collect();
        assert_eq!(fast.len(), 1, "{alerts:?}");
        assert_eq!(fast[0].window_index, 3);
        assert!((fast[0].burn - 3.0).abs() < 1e-12);
        assert_eq!(b.fast_alerts(), 1);
    }

    #[test]
    fn latch_rearms_after_recovery() {
        let mut b = ErrorBudget::default();
        // First excursion, full recovery, second excursion.
        let pattern = [
            true, true, true, true, // fires at index 3
            false, false, false, false, // burn drops to 0 → re-arm
            true, true, true, true, // fires again
        ];
        let alerts = feed(&mut b, &pattern);
        let fast = alerts.iter().filter(|a| a.speed == BurnSpeed::Fast).count();
        assert_eq!(fast, 2, "{alerts:?}");
        assert_eq!(b.fast_alerts(), 2);
    }

    #[test]
    fn single_spike_window_stays_under_fast_threshold() {
        // One bad window in a 4-window lookback → burn 1.0 < 2.5.
        let mut b = ErrorBudget::default();
        let alerts = feed(&mut b, &[false, false, true, false, false, false]);
        assert!(alerts.is_empty(), "{alerts:?}");
        assert_eq!(b.bad_windows(), 1);
    }

    #[test]
    fn slow_burn_catches_sustained_erosion() {
        // 8-window lookback, threshold 1.5 → needs 3 bad in 8. A
        // repeating 3-in-8 pattern never has 3 bad in any 4-window span
        // (fast stays quiet) but trips slow once.
        let mut b = ErrorBudget::default();
        let pattern = [
            true, false, false, true, false, false, true, false, // slow fires at index 7
            false, true, false, false, true, false, false, true,
        ];
        let alerts = feed(&mut b, &pattern);
        assert!(
            alerts.iter().all(|a| a.speed == BurnSpeed::Slow),
            "{alerts:?}"
        );
        assert!(b.slow_alerts() >= 1, "{alerts:?}");
        assert_eq!(b.fast_alerts(), 0);
    }

    #[test]
    fn remaining_goes_negative_when_overspent() {
        let mut b = ErrorBudget::default();
        feed(&mut b, &[true, true, true, true]);
        // Budget = 4 * 0.25 = 1 bad window; spent 4.
        assert!((b.remaining() - (1.0 - 4.0)).abs() < 1e-12);
    }

    #[test]
    fn lookbacks_are_clamped_sane() {
        let b = ErrorBudget::new(BudgetConfig {
            objective: 0.9,
            fast_windows: 0,
            slow_windows: 0,
            fast_burn_threshold: 1.0,
            slow_burn_threshold: 1.0,
        });
        assert_eq!(b.config().fast_windows, 1);
        assert_eq!(b.config().slow_windows, 1);
    }
}
