//! Sliding-window aggregation over the streaming engine's sample feed.
//!
//! Batch observability (snapshots, run reports) answers "what happened
//! over the whole run"; a long-running engine needs "what is happening
//! *right now*". This module closes a [`WindowStats`] every `horizon`
//! samples — a **deterministic sample-count horizon**, never a wall-clock
//! interval, so window boundaries (and therefore every count derived from
//! them) are bit-identical across machines, thread counts, and load.
//!
//! The only non-deterministic fields are the push-latency percentiles
//! (`p95_push_seconds`, `max_push_seconds`): latency is a scheduling
//! observation, exempt from the determinism contract exactly like the
//! workspace's latency histograms (DESIGN.md §9).

/// How a pushed sample resolved, from the monitor's point of view.
///
/// This is deliberately a plain obs-side enum (not
/// `airfinger_core::events::Recognition`) so the observability layer
/// stays dependency-free; the engine maps its events onto it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// No gesture window closed at this sample.
    Quiet,
    /// A window closed and was accepted as a detect-family gesture.
    Detect,
    /// A window closed and was accepted as a track-family gesture.
    Track,
    /// A window closed and was rejected (unintentional motion).
    Rejected,
}

impl Outcome {
    /// Whether a segment closed at this sample (accepted or rejected).
    #[must_use]
    pub fn closed_segment(&self) -> bool {
        !matches!(self, Outcome::Quiet)
    }

    /// Whether the closed segment was accepted as a gesture.
    #[must_use]
    pub fn accepted(&self) -> bool {
        matches!(self, Outcome::Detect | Outcome::Track)
    }

    /// Short lowercase tag, for recorder events and dumps.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            Outcome::Quiet => "quiet",
            Outcome::Detect => "detect",
            Outcome::Track => "track",
            Outcome::Rejected => "rejected",
        }
    }
}

/// Configuration for [`SlidingWindow`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowConfig {
    /// Samples per window. At the paper's 100 Hz, the default of 500
    /// closes one window every 5 s.
    pub horizon: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig { horizon: 500 }
    }
}

/// Aggregate statistics of one closed monitoring window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// 0-based ordinal of this window within the session.
    pub index: u64,
    /// Global index of the window's first sample.
    pub start_sample: u64,
    /// Samples aggregated (equals the horizon except for a final partial
    /// window closed by [`SlidingWindow::flush`]).
    pub samples: u64,
    /// Accepted recognitions (detect + track) in the window.
    pub recognitions: u64,
    /// Rejected segments in the window.
    pub rejections: u64,
    /// Segments closed in the window (`recognitions + rejections`).
    pub segments: u64,
    /// Mean per-push dynamic (Otsu) threshold over the window.
    pub mean_threshold: f64,
    /// Windowed p95 per-push latency in seconds (exact, over the window's
    /// own pushes). Scheduling observation — exempt from determinism.
    pub p95_push_seconds: f64,
    /// Worst per-push latency in the window, seconds. Scheduling
    /// observation — exempt from determinism.
    pub max_push_seconds: f64,
}

impl WindowStats {
    /// Rejected fraction of the window's closed segments (0 when the
    /// window closed no segments).
    #[must_use]
    pub fn rejection_ratio(&self) -> f64 {
        if self.segments == 0 {
            0.0
        } else {
            self.rejections as f64 / self.segments as f64
        }
    }
}

/// Accumulates per-push observations and closes a [`WindowStats`] every
/// `horizon` samples.
///
/// Memory is bounded: the only growing state is the in-window latency
/// buffer, capped at `horizon` entries and drained at every close.
#[derive(Debug)]
pub struct SlidingWindow {
    horizon: usize,
    next_index: u64,
    start_sample: u64,
    samples: u64,
    recognitions: u64,
    rejections: u64,
    threshold_sum: f64,
    latencies: Vec<f64>,
    last: Option<WindowStats>,
}

impl SlidingWindow {
    /// Start an empty window sequence. A zero horizon is clamped to 1 so
    /// the window always eventually closes.
    #[must_use]
    pub fn new(config: WindowConfig) -> Self {
        SlidingWindow {
            horizon: config.horizon.max(1),
            next_index: 0,
            start_sample: 0,
            samples: 0,
            recognitions: 0,
            rejections: 0,
            threshold_sum: 0.0,
            latencies: Vec::with_capacity(config.horizon.max(1)),
            last: None,
        }
    }

    /// The configured horizon in samples.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Record one pushed sample; returns the closed window when this push
    /// completes the horizon.
    pub fn observe(
        &mut self,
        latency_s: f64,
        mean_threshold: f64,
        outcome: Outcome,
    ) -> Option<WindowStats> {
        self.samples += 1;
        self.threshold_sum += mean_threshold;
        self.latencies.push(latency_s);
        match outcome {
            Outcome::Detect | Outcome::Track => self.recognitions += 1,
            Outcome::Rejected => self.rejections += 1,
            Outcome::Quiet => {}
        }
        if self.samples as usize >= self.horizon {
            Some(self.close())
        } else {
            None
        }
    }

    /// Close the current partial window at end of stream (`None` when no
    /// samples accumulated since the last close).
    pub fn flush(&mut self) -> Option<WindowStats> {
        if self.samples == 0 {
            None
        } else {
            Some(self.close())
        }
    }

    /// The most recently closed window, if any.
    #[must_use]
    pub fn last(&self) -> Option<&WindowStats> {
        self.last.as_ref()
    }

    fn close(&mut self) -> WindowStats {
        let samples = self.samples;
        // Exact p95 over the window's own pushes: sort a drained copy —
        // bounded by the horizon, and only touched once per window.
        let mut lat = std::mem::take(&mut self.latencies);
        lat.sort_by(f64::total_cmp);
        let p95 = percentile_sorted(&lat, 0.95);
        let max = lat.last().copied().unwrap_or(0.0);
        let stats = WindowStats {
            index: self.next_index,
            start_sample: self.start_sample,
            samples,
            recognitions: self.recognitions,
            rejections: self.rejections,
            segments: self.recognitions + self.rejections,
            mean_threshold: if samples == 0 {
                0.0
            } else {
                self.threshold_sum / samples as f64
            },
            p95_push_seconds: p95,
            max_push_seconds: max,
        };
        self.next_index += 1;
        self.start_sample += samples;
        self.samples = 0;
        self.recognitions = 0;
        self.rejections = 0;
        self.threshold_sum = 0.0;
        self.latencies = lat;
        self.latencies.clear();
        self.last = Some(stats.clone());
        stats
    }
}

/// Exact percentile of an ascending-sorted slice (nearest-rank). Returns
/// 0 for an empty slice.
fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closes_exactly_at_horizon() {
        let mut w = SlidingWindow::new(WindowConfig { horizon: 4 });
        for i in 0..3 {
            assert!(w.observe(0.001, 10.0, Outcome::Quiet).is_none(), "{i}");
        }
        let closed = w.observe(0.001, 10.0, Outcome::Detect).expect("closes");
        assert_eq!(closed.index, 0);
        assert_eq!(closed.samples, 4);
        assert_eq!(closed.recognitions, 1);
        assert_eq!(closed.segments, 1);
        assert!((closed.mean_threshold - 10.0).abs() < 1e-12);
    }

    #[test]
    fn consecutive_windows_advance() {
        let mut w = SlidingWindow::new(WindowConfig { horizon: 2 });
        let a = w.observe(0.0, 1.0, Outcome::Quiet);
        let a = w.observe(0.0, 1.0, Outcome::Rejected).or(a).expect("first");
        let b = w.observe(0.0, 3.0, Outcome::Quiet);
        let b = w.observe(0.0, 3.0, Outcome::Track).or(b).expect("second");
        assert_eq!((a.index, a.start_sample), (0, 0));
        assert_eq!((b.index, b.start_sample), (1, 2));
        assert_eq!(a.rejections, 1);
        assert_eq!(b.recognitions, 1);
        assert!((a.rejection_ratio() - 1.0).abs() < 1e-12);
        assert!((b.rejection_ratio()).abs() < 1e-12);
        assert!((b.mean_threshold - 3.0).abs() < 1e-12);
    }

    #[test]
    fn flush_closes_partial_window() {
        let mut w = SlidingWindow::new(WindowConfig { horizon: 100 });
        assert!(w.flush().is_none());
        w.observe(0.002, 5.0, Outcome::Quiet);
        let partial = w.flush().expect("partial close");
        assert_eq!(partial.samples, 1);
        assert_eq!(w.last().map(|s| s.index), Some(0));
        assert!(w.flush().is_none(), "flush drains");
    }

    #[test]
    fn p95_is_exact_nearest_rank() {
        let mut w = SlidingWindow::new(WindowConfig { horizon: 100 });
        for i in 1..=100u32 {
            w.observe(f64::from(i) / 1000.0, 0.0, Outcome::Quiet);
        }
        let stats = w.last().expect("closed").clone();
        assert!((stats.p95_push_seconds - 0.095).abs() < 1e-12);
        assert!((stats.max_push_seconds - 0.100).abs() < 1e-12);
    }

    #[test]
    fn zero_horizon_clamps() {
        let mut w = SlidingWindow::new(WindowConfig { horizon: 0 });
        assert!(w.observe(0.0, 0.0, Outcome::Quiet).is_some());
    }
}
