//! Bounded time series: a ring of periodic snapshots with deterministic
//! downsampling.
//!
//! Long-running processes (fleet serving, monitor soaks) need *history*,
//! not just the latest gauge values, but an unbounded buffer would make
//! memory a function of uptime. [`record`] appends one point per call;
//! when the buffer would exceed its capacity the **stride doubles** and
//! every retained point must satisfy `seq % stride == 0` — a purely
//! arithmetic rule, so two runs that record the same sequence of points
//! retain byte-identical histories regardless of timing or thread count.
//! The sequence number (points offered so far) is the clock; wall time
//! never enters the retention decision.
//!
//! The engine monitor feeds this automatically: every closed health
//! window records one point (see [`crate::monitor::EngineMonitor`]), so
//! cadence is sample-count deterministic. The scrape server's `/health`
//! endpoint embeds [`to_json`] as the `timeseries` field.

use std::sync::{Mutex, OnceLock, PoisonError};

/// Default maximum retained points before the stride doubles.
pub const DEFAULT_CAPACITY: usize = 256;

/// One recorded snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Position in the offered sequence (0-based; survives downsampling,
    /// so gaps encode what was thinned out).
    pub seq: u64,
    /// Named values captured at this point, in recording order.
    pub values: Vec<(String, f64)>,
}

struct Ring {
    points: Vec<Point>,
    capacity: usize,
    /// Retention stride: a point is kept while `seq % stride == 0`.
    stride: u64,
    /// Points offered so far (the sequence clock).
    seq: u64,
    /// Stride doublings so far. Deliberately *not* a registry counter:
    /// it is a function of ring fill, which carries across registry
    /// resets within one process and would break cross-run counter
    /// determinism. Exposed via [`to_json`] instead.
    downsamples: u64,
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring {
            points: Vec::new(),
            capacity: DEFAULT_CAPACITY,
            stride: 1,
            seq: 0,
            downsamples: 0,
        })
    })
}

fn lock() -> std::sync::MutexGuard<'static, Ring> {
    ring().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Record one point. No-op when [`crate::recording`] is off. Points
/// whose sequence number does not land on the current stride are counted
/// but not stored.
pub fn record(values: &[(&str, f64)]) {
    if !crate::recording() {
        return;
    }
    let mut r = lock();
    let seq = r.seq;
    r.seq += 1;
    crate::counter!("timeseries_points_total").inc();
    if !seq.is_multiple_of(r.stride) {
        return;
    }
    r.points.push(Point {
        seq,
        values: values.iter().map(|(k, v)| ((*k).to_string(), *v)).collect(),
    });
    if r.points.len() > r.capacity {
        r.stride = r.stride.saturating_mul(2);
        let stride = r.stride;
        r.points.retain(|p| p.seq % stride == 0);
        r.downsamples += 1;
    }
    crate::gauge!("timeseries_points").set(r.points.len() as f64);
}

/// Override the retention capacity (also clears the buffer — capacity is
/// a configuration choice, not a live resize).
pub fn set_capacity(capacity: usize) {
    let mut r = lock();
    r.capacity = capacity.max(2);
    r.points.clear();
    r.stride = 1;
    r.seq = 0;
    r.downsamples = 0;
}

/// Clear the buffer and reset the sequence clock and stride.
pub fn reset() {
    let mut r = lock();
    r.points.clear();
    r.stride = 1;
    r.seq = 0;
    r.downsamples = 0;
}

/// The retained points, oldest first.
#[must_use]
pub fn points() -> Vec<Point> {
    lock().points.clone()
}

/// Points offered so far (including thinned and not-stored ones).
#[must_use]
pub fn offered() -> u64 {
    lock().seq
}

/// JSON document: `{"stride": s, "offered": n, "points": [...]}` with
/// each point as `{"seq": n, "values": {name: value, ...}}`.
#[must_use]
pub fn to_json() -> String {
    use crate::export::{json_number, json_string};
    let r = lock();
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"stride\": {}, \"offered\": {}, \"downsamples\": {}, \"points\": [",
        r.stride, r.seq, r.downsamples
    ));
    for (i, p) in r.points.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{{\"seq\": {}, \"values\": {{", p.seq));
        for (j, (k, v)) in p.values.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", json_string(k), json_number(*v)));
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes timeseries unit tests: they share the global ring.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[cfg(feature = "obs")]
    #[test]
    fn downsampling_is_deterministic_and_bounded() {
        let _g = guard();
        set_capacity(8);
        for i in 0..64 {
            record(&[("v", f64::from(i))]);
        }
        let pts = points();
        assert!(pts.len() <= 8, "bounded: {}", pts.len());
        assert_eq!(offered(), 64);
        // After stride doubling every retained seq is a multiple of the
        // final stride, and seq 0 always survives.
        let strides: Vec<u64> = pts.iter().map(|p| p.seq).collect();
        assert_eq!(strides.first().copied(), Some(0));
        let stride = to_json();
        assert!(stride.contains("\"offered\": 64"));
        // Replay the same sequence: identical retention.
        set_capacity(8);
        for i in 0..64 {
            record(&[("v", f64::from(i))]);
        }
        assert_eq!(points(), pts);
        set_capacity(DEFAULT_CAPACITY);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn json_shape() {
        let _g = guard();
        set_capacity(4);
        record(&[("a", 1.5), ("b", f64::NAN)]);
        let json = to_json();
        assert!(json.contains("\"seq\": 0"));
        assert!(json.contains("\"a\": 1.5"));
        assert!(json.contains("\"b\": null"), "non-finite → null: {json}");
        set_capacity(DEFAULT_CAPACITY);
    }

    #[test]
    fn recording_off_records_nothing() {
        let _g = guard();
        if cfg!(feature = "obs") {
            // Covered by the integration-level runtime switch test; here
            // just confirm reset leaves a clean slate.
            reset();
            assert_eq!(offered(), 0);
            assert!(points().is_empty());
        } else {
            record(&[("v", 1.0)]);
            assert!(points().is_empty());
        }
    }
}
