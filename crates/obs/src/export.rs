//! Snapshot exporters: machine-readable JSON and Prometheus text format.
//!
//! Both are hand-rolled (this crate takes no dependencies, not even the
//! workspace's vendored `serde_json`) and deterministic: metrics render
//! sorted by identity, so two snapshots of identical state produce
//! identical bytes.

use crate::registry::{HistogramSnapshot, MetricId, Snapshot};
use std::fmt::Write;

impl Snapshot {
    /// Render as a JSON object:
    ///
    /// ```json
    /// {
    ///   "counters": [{"name": "...", "labels": {...}, "value": 1}],
    ///   "gauges": [{"name": "...", "labels": {...}, "value": 1.5}],
    ///   "histograms": [{"name": "...", "labels": {...}, "count": 2,
    ///                   "sum": 0.5, "mean": 0.25,
    ///                   "p50": 0.25, "p95": 0.5, "p99": 0.5,
    ///                   "buckets": [{"le": 1.0, "count": 2},
    ///                               {"le": "+Inf", "count": 2}]}]
    /// }
    /// ```
    ///
    /// Non-finite values never appear: an empty histogram exports
    /// `"mean": 0` and `null` percentiles.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            push_sep(&mut out, i);
            let _ = write!(
                out,
                "{{\"name\": {}, \"labels\": {}, \"value\": {}}}",
                json_string(&c.id.name),
                json_labels(&c.id),
                c.value
            );
        }
        out.push_str("],\n  \"gauges\": [");
        for (i, g) in self.gauges.iter().enumerate() {
            push_sep(&mut out, i);
            let _ = write!(
                out,
                "{{\"name\": {}, \"labels\": {}, \"value\": {}}}",
                json_string(&g.id.name),
                json_labels(&g.id),
                json_number(g.value)
            );
        }
        out.push_str("],\n  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            push_sep(&mut out, i);
            out.push_str(&histogram_json(h));
        }
        out.push_str("]\n}\n");
        out
    }

    /// Render in the Prometheus text exposition format (`# HELP`/`# TYPE`
    /// lines, `_bucket`/`_sum`/`_count` histogram series, escaped label
    /// values and help text).
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            prom_header(&mut out, &c.id.name, &c.help, "counter");
            let _ = writeln!(out, "{} {}", prom_identity(&c.id, &[]), c.value);
        }
        for g in &self.gauges {
            prom_header(&mut out, &g.id.name, &g.help, "gauge");
            let _ = writeln!(
                out,
                "{} {}",
                prom_identity(&g.id, &[]),
                prom_number(g.value)
            );
        }
        for h in &self.histograms {
            prom_header(&mut out, &h.id.name, &h.help, "histogram");
            let base = sanitize_name(&h.id.name);
            for (edge, count) in h
                .edges
                .iter()
                .map(|e| prom_number(*e))
                .chain(std::iter::once("+Inf".to_string()))
                .zip(&h.cumulative)
            {
                let _ = writeln!(
                    out,
                    "{} {count}",
                    prom_identity_named(&format!("{base}_bucket"), &h.id, &[("le", &edge)])
                );
            }
            let _ = writeln!(
                out,
                "{} {}",
                prom_identity_named(&format!("{base}_sum"), &h.id, &[]),
                prom_number(h.sum)
            );
            let _ = writeln!(
                out,
                "{} {}",
                prom_identity_named(&format!("{base}_count"), &h.id, &[]),
                h.count
            );
            // A histogram-typed metric cannot carry {quantile=} series, so
            // the streaming percentiles export as a companion summary.
            if h.count > 0 {
                let qname = format!("{base}_quantiles");
                prom_header(&mut out, &qname, &h.help, "summary");
                for (label, value) in h.percentiles.entries() {
                    let quantile = &label[1..]; // "p50" → "50"
                    let _ = writeln!(
                        out,
                        "{} {}",
                        prom_identity_named(
                            &qname,
                            &h.id,
                            &[("quantile", &format!("0.{quantile}"))]
                        ),
                        prom_number(value)
                    );
                }
                let _ = writeln!(
                    out,
                    "{} {}",
                    prom_identity_named(&format!("{qname}_sum"), &h.id, &[]),
                    prom_number(h.sum)
                );
                let _ = writeln!(
                    out,
                    "{} {}",
                    prom_identity_named(&format!("{qname}_count"), &h.id, &[]),
                    h.count
                );
            }
        }
        out
    }
}

fn push_sep(out: &mut String, i: usize) {
    if i > 0 {
        out.push_str(", ");
    }
    out.push_str("\n    ");
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"name\": {}, \"labels\": {}, \"count\": {}, \"sum\": {}, \"mean\": {}",
        json_string(&h.id.name),
        json_labels(&h.id),
        h.count,
        json_number(h.sum),
        json_number(h.mean())
    );
    // `json_number` maps the NaN estimates of an empty histogram to null.
    for (label, value) in h.percentiles.entries() {
        let _ = write!(out, ", \"{label}\": {}", json_number(value));
    }
    out.push_str(", \"buckets\": [");
    for (i, (edge, count)) in h
        .edges
        .iter()
        .map(|e| json_number(*e))
        .chain(std::iter::once("\"+Inf\"".to_string()))
        .zip(&h.cumulative)
        .enumerate()
    {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{{\"le\": {edge}, \"count\": {count}}}");
    }
    out.push_str("]}");
    out
}

/// Escape and quote a JSON string.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a finite f64 as a JSON number (non-finite values become null —
/// JSON has no Inf/NaN).
#[must_use]
pub fn json_number(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    // `{}` on f64 is the shortest roundtrip-exact form, but bare integers
    // ("3") are still valid JSON numbers, so no fixup is needed.
    format!("{v}")
}

fn json_labels(id: &MetricId) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in id.labels.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {}", json_string(k), json_string(v));
    }
    out.push('}');
    out
}

/// Replace characters outside `[a-zA-Z0-9_:]` with `_` and prefix a
/// leading digit — Prometheus metric-name rules.
#[must_use]
pub fn sanitize_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a Prometheus label **value**: backslash, double-quote and
/// newline must be escaped inside the quoted value.
#[must_use]
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape Prometheus `# HELP` text: only backslash and newline.
#[must_use]
pub fn escape_help(help: &str) -> String {
    let mut out = String::with_capacity(help.len());
    for ch in help.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn prom_header(out: &mut String, name: &str, help: &str, kind: &str) {
    let name = sanitize_name(name);
    if !help.is_empty() {
        let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
    }
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn prom_identity(id: &MetricId, extra: &[(&str, &str)]) -> String {
    prom_identity_named(&sanitize_name(&id.name), id, extra)
}

fn prom_identity_named(name: &str, id: &MetricId, extra: &[(&str, &str)]) -> String {
    let mut pairs: Vec<(String, String)> = id
        .labels
        .iter()
        .map(|(k, v)| (sanitize_name(k), escape_label_value(v)))
        .collect();
    pairs.extend(
        extra
            .iter()
            .map(|(k, v)| (sanitize_name(k), escape_label_value(v))),
    );
    if pairs.is_empty() {
        return name.to_string();
    }
    let body: Vec<String> = pairs
        .into_iter()
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect();
    format!("{name}{{{}}}", body.join(","))
}

/// Render an f64 the way Prometheus expects (`+Inf`, `-Inf`, `NaN`
/// spelled out).
#[must_use]
pub fn prom_number(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v.is_nan() {
        "NaN".to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("events_total", &[("kind", "ok")], "Number of events")
            .add(3);
        r.gauge("depth", &[], "Queue depth").set(1.5);
        let h = r.histogram("lat_seconds", &[], vec![0.1, 1.0], "Latency");
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0);
        r
    }

    #[cfg(feature = "obs")]
    #[test]
    fn json_export_parses_and_roundtrips_values() {
        let snap = sample_registry().snapshot();
        let json = snap.to_json();
        let value: serde::Value = serde_json::from_str(&json).expect("exporter emits valid JSON");
        let text = serde_json::to_string(&value).unwrap();
        assert!(text.contains("events_total"));
        assert!(text.contains("lat_seconds"));
        assert!(json.contains("\"mean\""));
        assert!(json.contains("\"+Inf\""));
    }

    #[test]
    fn json_escapes_control_and_quote_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_string("\u{1}"), r#""\u0001""#);
        let _: serde::Value = serde_json::from_str(&json_string("q\"\\\n\t\r\u{2}")).unwrap();
    }

    #[test]
    fn json_numbers_are_finite_or_null() {
        assert_eq!(json_number(2.5), "2.5");
        assert_eq!(json_number(3.0), "3");
        assert_eq!(json_number(f64::INFINITY), "null");
        assert_eq!(json_number(f64::NAN), "null");
    }

    #[cfg(feature = "obs")]
    #[test]
    fn prometheus_format_shape() {
        let text = sample_registry().snapshot().to_prometheus();
        assert!(text.contains("# HELP events_total Number of events\n"));
        assert!(text.contains("# TYPE events_total counter\n"));
        assert!(text.contains("events_total{kind=\"ok\"} 3\n"));
        assert!(text.contains("# TYPE lat_seconds histogram\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.1\"} 1\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_seconds_count 3\n"));
        assert!(text.contains("depth 1.5\n"));
    }

    #[test]
    fn prometheus_escaping_rules() {
        // Label values: backslash, quote and newline escaped.
        assert_eq!(escape_label_value(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        // Help text: backslash and newline, but quotes pass through.
        assert_eq!(escape_help("x\ny"), "x\\ny");
        assert_eq!(escape_help(r#"say "hi""#), r#"say "hi""#);
        assert_eq!(escape_help("back\\slash"), "back\\\\slash");
    }

    #[cfg(feature = "obs")]
    #[test]
    fn prometheus_escapes_hostile_labels_end_to_end() {
        let r = Registry::new();
        r.counter("weird total", &[("path", "C:\\dir\n\"x\"")], "multi\nline")
            .inc();
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# HELP weird_total multi\\nline\n"));
        assert!(
            text.contains(r#"weird_total{path="C:\\dir\n\"x\""} 1"#),
            "{text}"
        );
        // No raw newline may survive inside any sample line.
        for line in text.lines() {
            assert!(!line.contains('\r'));
        }
    }

    #[test]
    fn names_sanitize_to_prometheus_charset() {
        assert_eq!(sanitize_name("ok_name:x"), "ok_name:x");
        assert_eq!(sanitize_name("has space-and.dots"), "has_space_and_dots");
        assert_eq!(sanitize_name("9starts_digit"), "_9starts_digit");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn prom_numbers_spell_infinities() {
        assert_eq!(prom_number(0.25), "0.25");
        assert_eq!(prom_number(f64::INFINITY), "+Inf");
        assert_eq!(prom_number(f64::NEG_INFINITY), "-Inf");
        assert_eq!(prom_number(f64::NAN), "NaN");
    }

    #[test]
    fn empty_snapshot_exports() {
        let snap = Registry::new().snapshot();
        let _: serde::Value = serde_json::from_str(&snap.to_json()).unwrap();
        assert!(snap.to_prometheus().is_empty());
    }

    /// An *empty histogram* (registered, zero observations) must export
    /// finite JSON: mean 0, percentiles null — never NaN/inf, which would
    /// make the document unparseable.
    #[test]
    fn empty_histogram_exports_finite_json_and_parses_back() {
        let r = Registry::new();
        let _ = r.histogram("idle_seconds", &[], vec![0.1, 1.0], "never observed");
        let json = r.snapshot().to_json();
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
        let value: serde::Value = serde_json::from_str(&json).expect("empty snapshot parses back");
        let hists = value.as_object().unwrap().get("histograms").unwrap();
        let h = hists.as_array().unwrap()[0].as_object().unwrap();
        assert_eq!(h.get("mean").unwrap().as_f64(), Some(0.0));
        assert_eq!(h.get("count").unwrap().as_u64(), Some(0));
        for p in ["p50", "p95", "p99"] {
            assert!(h.get(p).unwrap().is_null(), "{p} must be null when empty");
        }
        // The Prometheus side emits no quantile summary for an empty
        // histogram (a NaN quantile sample would poison scrapes).
        assert!(!r.snapshot().to_prometheus().contains("_quantiles"));
    }

    #[cfg(feature = "obs")]
    #[test]
    fn json_export_carries_percentiles() {
        let snap = sample_registry().snapshot();
        let value: serde::Value = serde_json::from_str(&snap.to_json()).unwrap();
        let hists = value.as_object().unwrap().get("histograms").unwrap();
        let h = hists.as_array().unwrap()[0].as_object().unwrap();
        // 3 observations → warm-up → exact median of {0.05, 0.5, 5.0}.
        let p50 = h.get("p50").unwrap().as_f64().unwrap();
        assert!((p50 - 0.5).abs() < 1e-12);
        let p99 = h.get("p99").unwrap().as_f64().unwrap();
        assert!(p50 <= p99);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn prometheus_emits_quantile_summary() {
        let text = sample_registry().snapshot().to_prometheus();
        assert!(text.contains("# TYPE lat_seconds_quantiles summary\n"));
        assert!(text.contains("lat_seconds_quantiles{quantile=\"0.50\"} 0.5\n"));
        assert!(text.contains("lat_seconds_quantiles{quantile=\"0.95\"}"));
        assert!(text.contains("lat_seconds_quantiles{quantile=\"0.99\"}"));
        assert!(text.contains("lat_seconds_quantiles_sum"));
        assert!(text.contains("lat_seconds_quantiles_count 3\n"));
    }

    /// Prometheus exposition conformance: every `# HELP`/`# TYPE` comment
    /// precedes the first series of its metric, and `_bucket` counts are
    /// cumulative in `le`.
    #[cfg(feature = "obs")]
    #[test]
    fn prometheus_headers_precede_series_and_buckets_are_cumulative() {
        let text = sample_registry().snapshot().to_prometheus();
        let lines: Vec<&str> = text.lines().collect();
        // For each metric family, the first mention must be a comment line.
        for family in ["events_total", "depth", "lat_seconds"] {
            let first = lines
                .iter()
                .position(|l| {
                    let name = l
                        .strip_prefix("# HELP ")
                        .or_else(|| l.strip_prefix("# TYPE "));
                    match name {
                        Some(rest) => rest.split_whitespace().next() == Some(family),
                        None => l.starts_with(family),
                    }
                })
                .expect("family present");
            assert!(
                lines[first].starts_with("# HELP"),
                "{family}: first line is {:?}",
                lines[first]
            );
            let type_line = first + 1;
            assert!(
                lines[type_line].starts_with("# TYPE"),
                "{family}: HELP not followed by TYPE"
            );
        }
        // Bucket counts never decrease as `le` grows, and +Inf == count.
        let buckets: Vec<u64> = lines
            .iter()
            .filter(|l| l.starts_with("lat_seconds_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(buckets, vec![1, 2, 3]);
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]));
        let count: u64 = lines
            .iter()
            .find(|l| l.starts_with("lat_seconds_count"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .unwrap();
        assert_eq!(*buckets.last().unwrap(), count);
    }

    /// Round-trip: a hostile label value survives escaping and a simple
    /// unescape reproduces the original.
    #[test]
    fn label_escaping_round_trips() {
        let hostile = "a\\b\"c\nd";
        let escaped = escape_label_value(hostile);
        assert!(!escaped.contains('\n'));
        let mut unescaped = String::new();
        let mut chars = escaped.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('\\') => unescaped.push('\\'),
                    Some('"') => unescaped.push('"'),
                    Some('n') => unescaped.push('\n'),
                    other => panic!("unknown escape {other:?}"),
                }
            } else {
                unescaped.push(c);
            }
        }
        assert_eq!(unescaped, hostile);
        // Help-text escaping round-trips the same way minus the quote rule.
        let help = "line1\nline2\\end";
        let esc = escape_help(help);
        assert_eq!(esc, "line1\\nline2\\\\end");
    }
}
