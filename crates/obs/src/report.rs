//! Machine-readable run reports: one JSON document per run, combining
//! run identity (label + metadata), per-experiment wall time, a distilled
//! **quality** section (per-gesture recall/precision, segmentation and
//! distinguish counters, rejection rate), and the full metrics snapshot
//! (per-stage latency histograms with p50/p95/p99, counters, gauges).
//! This is the payload behind `--metrics <path>` and the
//! `BENCH_<label>.json` perf-trajectory artifacts that `repro diff`
//! gates on.
//!
//! The quality section is assembled from the snapshot by the stable
//! naming convention declared in DESIGN.md §Observability: gauges named
//! `quality_*` (labelled `experiment`, optionally `gesture`) and the
//! `pipeline_segments_*`/`pipeline_family_total`/
//! `pipeline_recognitions_total` counter families.

use crate::export::{json_number, json_string};
use crate::registry::Snapshot;
use std::collections::BTreeMap;
use std::fmt::Write;

/// A structured report of one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    label: String,
    meta: Vec<(String, String)>,
    experiments: Vec<(String, f64)>,
    snapshot: Snapshot,
}

impl RunReport {
    /// Start a report for `label` around a metrics snapshot.
    #[must_use]
    pub fn new(label: &str, snapshot: Snapshot) -> Self {
        RunReport {
            label: label.to_string(),
            meta: Vec::new(),
            experiments: Vec::new(),
            snapshot,
        }
    }

    /// Attach a metadata pair (scale, seed, thread count, …).
    pub fn meta(&mut self, key: &str, value: impl ToString) {
        self.meta.push((key.to_string(), value.to_string()));
    }

    /// Record one experiment's wall time in seconds.
    pub fn experiment(&mut self, id: &str, seconds: f64) {
        self.experiments.push((id.to_string(), seconds));
    }

    /// The wrapped metrics snapshot.
    #[must_use]
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// Render the report as a JSON document:
    ///
    /// ```json
    /// {
    ///   "label": "pr2",
    ///   "meta": {"scale": "quick", "threads": "4"},
    ///   "experiments": [{"id": "fig10", "seconds": 4.05}],
    ///   "total_seconds": 4.05,
    ///   "quality": { "experiments": {...}, "segmentation": {...},
    ///                "distinguish": {...} },
    ///   "latency_ns": [ {"name": "engine_push_ns", "p99_ns": ...}, ... ],
    ///   "metrics": { "counters": [...], "gauges": [...], "histograms": [...] }
    /// }
    /// ```
    ///
    /// The `latency_ns` member is the *global* nanosecond histogram table
    /// ([`crate::latency::export_json`]) captured at render time — the
    /// log2-bucketed push/stage latencies that live outside the registry.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "\"label\": {},", json_string(&self.label));
        out.push_str("\"meta\": {");
        for (i, (k, v)) in self.meta.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {}", json_string(k), json_string(v));
        }
        out.push_str("},\n\"experiments\": [");
        for (i, (id, seconds)) in self.experiments.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "\n  {{\"id\": {}, \"seconds\": {}}}",
                json_string(id),
                json_number(*seconds)
            );
        }
        let total: f64 = self.experiments.iter().map(|(_, s)| s).sum();
        let _ = write!(out, "],\n\"total_seconds\": {},\n", json_number(total));
        out.push_str("\"quality\": ");
        out.push_str(&quality_json(&self.snapshot));
        out.push_str(",\n\"latency_ns\": ");
        out.push_str(&crate::latency::export_json());
        out.push_str(",\n");
        // Splice the snapshot object in as the "metrics" member.
        out.push_str("\"metrics\": ");
        out.push_str(self.snapshot.to_json().trim_end());
        out.push_str("\n}\n");
        out
    }
}

/// Distill the quality section from a snapshot by naming convention.
fn quality_json(snapshot: &Snapshot) -> String {
    // experiment → metric → value, and experiment → gesture → metric → value.
    let mut scalars: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
    let mut gestures: BTreeMap<String, BTreeMap<String, BTreeMap<String, f64>>> = BTreeMap::new();
    for g in &snapshot.gauges {
        let Some(metric) = g.id.name.strip_prefix("quality_") else {
            continue;
        };
        let label = |key: &str| {
            g.id.labels
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
        };
        let Some(experiment) = label("experiment") else {
            continue;
        };
        if let Some(gesture) = label("gesture") {
            gestures
                .entry(experiment)
                .or_default()
                .entry(gesture)
                .or_default()
                .insert(metric.to_string(), g.value);
        } else {
            scalars
                .entry(experiment)
                .or_default()
                .insert(metric.to_string(), g.value);
        }
    }

    let mut out = String::from("{\n  \"experiments\": {");
    let names: std::collections::BTreeSet<&String> =
        scalars.keys().chain(gestures.keys()).collect();
    for (i, experiment) in names.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\n    {}: {{", json_string(experiment));
        let mut first = true;
        if let Some(metrics) = scalars.get(*experiment) {
            for (metric, value) in metrics {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let _ = write!(out, "{}: {}", json_string(metric), json_number(*value));
            }
        }
        if let Some(per_gesture) = gestures.get(*experiment) {
            if !first {
                out.push_str(", ");
            }
            out.push_str("\"gestures\": {");
            for (j, (gesture, metrics)) in per_gesture.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}: {{", json_string(gesture));
                for (k, (metric, value)) in metrics.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{}: {}", json_string(metric), json_number(*value));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n  },\n  \"segmentation\": {");
    let found = snapshot
        .counter_value("pipeline_segments_found_total", &[])
        .unwrap_or(0);
    let merged = snapshot
        .counter_value("pipeline_segments_merged_total", &[])
        .unwrap_or(0);
    let otsu = snapshot
        .gauge_value("pipeline_otsu_threshold", &[])
        .unwrap_or(0.0);
    let _ = write!(
        out,
        "\"segments_found\": {found}, \"segments_merged\": {merged}, \"otsu_threshold\": {}",
        json_number(otsu)
    );
    out.push_str("},\n  \"distinguish\": {");
    let kind = |k: &str| {
        snapshot
            .counter_value("pipeline_recognitions_total", &[("kind", k)])
            .unwrap_or(0)
    };
    let (detect, track, rejected) = (kind("detect"), kind("track"), kind("rejected"));
    let total = detect + track + rejected;
    let rejection_rate = if total == 0 {
        0.0
    } else {
        rejected as f64 / total as f64
    };
    let _ = write!(
        out,
        "\"detect\": {detect}, \"track\": {track}, \"rejected\": {rejected}, \
         \"rejection_rate\": {}",
        json_number(rejection_rate)
    );
    out.push_str("}\n}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn report_renders_valid_json() {
        let registry = Registry::new();
        registry.counter("runs_total", &[], "").inc();
        let h = registry.histogram("stage_seconds", &[("stage", "sbc")], vec![0.1, 1.0], "");
        h.observe(0.02);
        let mut report = RunReport::new("test", registry.snapshot());
        report.meta("scale", "quick");
        report.meta("threads", 4);
        report.experiment("fig10", 1.25);
        report.experiment("table2", 0.75);
        let json = report.to_json();
        let value: serde::Value = serde_json::from_str(&json).expect("report is valid JSON");
        let obj = value.as_object().unwrap();
        assert_eq!(
            obj.get("label").and_then(serde::Value::as_str),
            Some("test")
        );
        let experiments = obj
            .get("experiments")
            .and_then(serde::Value::as_array)
            .unwrap();
        assert_eq!(experiments.len(), 2);
        assert!(obj.get("metrics").is_some());
        assert!(json.contains("\"total_seconds\": 2"));
    }

    #[test]
    fn empty_report_is_valid() {
        let report = RunReport::new("empty", Registry::new().snapshot());
        let json = report.to_json();
        let value: serde::Value = serde_json::from_str(&json).unwrap();
        // The quality section is present even when nothing fed it.
        let quality = value.as_object().unwrap().get("quality").unwrap();
        let seg = quality.as_object().unwrap().get("segmentation").unwrap();
        assert_eq!(
            seg.as_object()
                .unwrap()
                .get("segments_found")
                .unwrap()
                .as_u64(),
            Some(0)
        );
    }

    #[cfg(feature = "obs")]
    #[test]
    fn report_includes_global_latency_table() {
        crate::latency!("report_latency_test_ns").record(42);
        let report = RunReport::new("lat", Registry::new().snapshot());
        let value: serde::Value = serde_json::from_str(&report.to_json()).unwrap();
        let entries = value
            .as_object()
            .unwrap()
            .get("latency_ns")
            .unwrap()
            .as_array()
            .unwrap();
        assert!(
            entries.iter().any(|e| {
                e.as_object()
                    .and_then(|o| o.get("name"))
                    .and_then(serde::Value::as_str)
                    == Some("report_latency_test_ns")
            }),
            "latency_ns lists the recorded histogram"
        );
    }

    #[cfg(feature = "obs")]
    #[test]
    fn quality_section_assembles_from_conventions() {
        let registry = Registry::new();
        registry
            .gauge("quality_accuracy", &[("experiment", "fig10")], "")
            .set(97.5);
        registry
            .gauge("quality_macro_f1", &[("experiment", "fig10")], "")
            .set(96.0);
        registry
            .gauge(
                "quality_recall",
                &[("experiment", "fig10"), ("gesture", "tap")],
                "",
            )
            .set(98.0);
        registry
            .gauge(
                "quality_precision",
                &[("experiment", "fig10"), ("gesture", "tap")],
                "",
            )
            .set(95.0);
        registry
            .counter("pipeline_segments_found_total", &[], "")
            .add(40);
        registry
            .counter("pipeline_segments_merged_total", &[], "")
            .add(7);
        registry.gauge("pipeline_otsu_threshold", &[], "").set(0.02);
        registry
            .counter("pipeline_recognitions_total", &[("kind", "detect")], "")
            .add(30);
        registry
            .counter("pipeline_recognitions_total", &[("kind", "track")], "")
            .add(8);
        registry
            .counter("pipeline_recognitions_total", &[("kind", "rejected")], "")
            .add(2);
        let report = RunReport::new("q", registry.snapshot());
        let value: serde::Value = serde_json::from_str(&report.to_json()).unwrap();
        let quality = value.as_object().unwrap().get("quality").unwrap();
        let obj = quality.as_object().unwrap();
        let fig10 = obj
            .get("experiments")
            .unwrap()
            .as_object()
            .unwrap()
            .get("fig10")
            .unwrap()
            .as_object()
            .unwrap();
        assert_eq!(fig10.get("accuracy").unwrap().as_f64(), Some(97.5));
        let tap = fig10
            .get("gestures")
            .unwrap()
            .as_object()
            .unwrap()
            .get("tap")
            .unwrap()
            .as_object()
            .unwrap();
        assert_eq!(tap.get("recall").unwrap().as_f64(), Some(98.0));
        assert_eq!(tap.get("precision").unwrap().as_f64(), Some(95.0));
        let seg = obj.get("segmentation").unwrap().as_object().unwrap();
        assert_eq!(seg.get("segments_found").unwrap().as_u64(), Some(40));
        assert_eq!(seg.get("segments_merged").unwrap().as_u64(), Some(7));
        let dist = obj.get("distinguish").unwrap().as_object().unwrap();
        assert_eq!(dist.get("detect").unwrap().as_u64(), Some(30));
        let rate = dist.get("rejection_rate").unwrap().as_f64().unwrap();
        assert!((rate - 0.05).abs() < 1e-12);
    }
}
