//! Machine-readable run reports: one JSON document per run, combining
//! run identity (label + metadata), per-experiment wall time, and the
//! full metrics snapshot (per-stage latency histograms, counters,
//! gauges). This is the payload behind `--metrics <path>` and the
//! `BENCH_<label>.json` perf-trajectory artifacts.

use crate::export::{json_number, json_string};
use crate::registry::Snapshot;
use std::fmt::Write;

/// A structured report of one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    label: String,
    meta: Vec<(String, String)>,
    experiments: Vec<(String, f64)>,
    snapshot: Snapshot,
}

impl RunReport {
    /// Start a report for `label` around a metrics snapshot.
    #[must_use]
    pub fn new(label: &str, snapshot: Snapshot) -> Self {
        RunReport {
            label: label.to_string(),
            meta: Vec::new(),
            experiments: Vec::new(),
            snapshot,
        }
    }

    /// Attach a metadata pair (scale, seed, thread count, …).
    pub fn meta(&mut self, key: &str, value: impl ToString) {
        self.meta.push((key.to_string(), value.to_string()));
    }

    /// Record one experiment's wall time in seconds.
    pub fn experiment(&mut self, id: &str, seconds: f64) {
        self.experiments.push((id.to_string(), seconds));
    }

    /// The wrapped metrics snapshot.
    #[must_use]
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// Render the report as a JSON document:
    ///
    /// ```json
    /// {
    ///   "label": "pr2",
    ///   "meta": {"scale": "quick", "threads": "4"},
    ///   "experiments": [{"id": "fig10", "seconds": 4.05}],
    ///   "total_seconds": 4.05,
    ///   "metrics": { "counters": [...], "gauges": [...], "histograms": [...] }
    /// }
    /// ```
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "\"label\": {},", json_string(&self.label));
        out.push_str("\"meta\": {");
        for (i, (k, v)) in self.meta.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {}", json_string(k), json_string(v));
        }
        out.push_str("},\n\"experiments\": [");
        for (i, (id, seconds)) in self.experiments.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "\n  {{\"id\": {}, \"seconds\": {}}}",
                json_string(id),
                json_number(*seconds)
            );
        }
        let total: f64 = self.experiments.iter().map(|(_, s)| s).sum();
        let _ = write!(out, "],\n\"total_seconds\": {},\n", json_number(total));
        // Splice the snapshot object in as the "metrics" member.
        out.push_str("\"metrics\": ");
        out.push_str(self.snapshot.to_json().trim_end());
        out.push_str("\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn report_renders_valid_json() {
        let registry = Registry::new();
        registry.counter("runs_total", &[], "").inc();
        let h = registry.histogram("stage_seconds", &[("stage", "sbc")], vec![0.1, 1.0], "");
        h.observe(0.02);
        let mut report = RunReport::new("test", registry.snapshot());
        report.meta("scale", "quick");
        report.meta("threads", 4);
        report.experiment("fig10", 1.25);
        report.experiment("table2", 0.75);
        let json = report.to_json();
        let value: serde::Value = serde_json::from_str(&json).expect("report is valid JSON");
        let obj = value.as_object().unwrap();
        assert_eq!(
            obj.get("label").and_then(serde::Value::as_str),
            Some("test")
        );
        let experiments = obj
            .get("experiments")
            .and_then(serde::Value::as_array)
            .unwrap();
        assert_eq!(experiments.len(), 2);
        assert!(obj.get("metrics").is_some());
        assert!(json.contains("\"total_seconds\": 2"));
    }

    #[test]
    fn empty_report_is_valid() {
        let report = RunReport::new("empty", Registry::new().snapshot());
        let _: serde::Value = serde_json::from_str(&report.to_json()).unwrap();
    }
}
