//! Opt-in allocation accounting: a counting [`GlobalAlloc`] wrapper.
//!
//! [`CountingAlloc`] forwards every request to [`System`] and counts
//! allocation *events* and requested *bytes*, both per thread (plain
//! `Cell`s, no synchronization on the hot path) and process-wide
//! (relaxed atomics). Deallocations are deliberately not subtracted: the
//! counters measure allocation **pressure** — how much churn a code path
//! causes — not live heap, which is what the "zero-alloc hot path"
//! roadmap item ratchets against.
//!
//! Binaries opt in explicitly:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: airfinger_obs::alloc::CountingAlloc =
//!     airfinger_obs::alloc::CountingAlloc::new();
//! ```
//!
//! Without that attribute every reader below returns zeros and
//! [`counting()`] stays `false`, so tests and reports can distinguish
//! "zero allocations" from "not measured". Counting is independent of
//! the `obs` feature and the [`crate::recording`] switch — the allocator
//! must never consult registry state, because it runs *inside* every
//! allocation, including the registry's own.
//!
//! Nothing here publishes to the metric registry automatically (that
//! would perturb the cross-thread counter-determinism contract); callers
//! snapshot via [`thread_stats`]/[`process_stats`] or fold the totals
//! into `alloc_allocations_total`/`alloc_bytes_total` with an explicit
//! [`publish`].
//!
//! This is the one module in the crate allowed to use `unsafe`: the
//! [`GlobalAlloc`] trait itself is unsafe, and every body is a verbatim
//! forward to [`System`].

#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Set by the first counted allocation: proves the wrapper is installed.
static INSTALLED: AtomicBool = AtomicBool::new(false);
/// Process-wide allocation event count.
static TOTAL_COUNT: AtomicU64 = AtomicU64::new(0);
/// Process-wide requested-byte count.
static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// This thread's allocation event count.
    static TL_COUNT: Cell<u64> = const { Cell::new(0) };
    /// This thread's requested-byte count.
    static TL_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// A point-in-time allocation reading: events and requested bytes.
///
/// Readings are monotone; compare two with [`AllocStats::since`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocation events (alloc + alloc_zeroed + realloc calls).
    pub count: u64,
    /// Bytes requested across those events.
    pub bytes: u64,
}

impl AllocStats {
    /// The delta from an `earlier` reading to this one (saturating, so a
    /// reading from another thread can never underflow).
    #[must_use]
    pub fn since(self, earlier: AllocStats) -> AllocStats {
        AllocStats {
            count: self.count.saturating_sub(earlier.count),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }

    /// Component-wise sum (saturating).
    #[must_use]
    pub fn plus(self, other: AllocStats) -> AllocStats {
        AllocStats {
            count: self.count.saturating_add(other.count),
            bytes: self.bytes.saturating_add(other.bytes),
        }
    }

    /// Whether both components are zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.count == 0 && self.bytes == 0
    }
}

/// The counting allocator. Install with `#[global_allocator]`.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// A new wrapper (stateless; all counters are global).
    #[must_use]
    pub const fn new() -> CountingAlloc {
        CountingAlloc
    }
}

/// Record one allocation event of `size` requested bytes.
///
/// Runs inside the allocator, so it must not allocate: atomics and
/// `Cell`s only. `try_with` tolerates thread teardown (TLS destructors
/// may themselves free/allocate after the keys are gone).
#[inline]
fn note(size: usize) {
    if !INSTALLED.load(Ordering::Relaxed) {
        INSTALLED.store(true, Ordering::Relaxed);
    }
    TOTAL_COUNT.fetch_add(1, Ordering::Relaxed);
    TOTAL_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    let _ = TL_COUNT.try_with(|c| c.set(c.get().saturating_add(1)));
    let _ = TL_BYTES.try_with(|c| c.set(c.get().saturating_add(size as u64)));
}

// SAFETY: every method forwards verbatim to `System` with the caller's
// layout/pointer, so this upholds exactly the allocator contract `System`
// does; the side effects touch only atomics and `Cell`s, never allocate.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds the `GlobalAlloc::alloc` contract
    // (non-zero-sized layout); forwarded unchanged to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        // SAFETY: same layout, same contract, delegated to `System`.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds the `GlobalAlloc::dealloc` contract (ptr
    // was allocated here with this layout); forwarded to `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from `System` (every alloc path above
        // delegates there), so freeing it with the same layout is valid.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller upholds the `GlobalAlloc::alloc_zeroed` contract;
    // forwarded unchanged to `System.alloc_zeroed`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        // SAFETY: same layout, same contract, delegated to `System`.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: caller upholds the `GlobalAlloc::realloc` contract (ptr
    // from this allocator, its original layout, valid new size).
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note(new_size);
        // SAFETY: `ptr` came from `System`; layout and new_size are the
        // caller's, so the delegated call sees an unmodified contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Whether the counting allocator is installed in this process (i.e. at
/// least one allocation has been counted).
#[must_use]
pub fn counting() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// This thread's cumulative allocation reading (zeros when the counting
/// allocator is not installed).
#[must_use]
pub fn thread_stats() -> AllocStats {
    AllocStats {
        count: TL_COUNT.try_with(Cell::get).unwrap_or(0),
        bytes: TL_BYTES.try_with(Cell::get).unwrap_or(0),
    }
}

/// The process-wide cumulative allocation reading.
#[must_use]
pub fn process_stats() -> AllocStats {
    AllocStats {
        count: TOTAL_COUNT.load(Ordering::Relaxed),
        bytes: TOTAL_BYTES.load(Ordering::Relaxed),
    }
}

/// Last reading folded into the registry by [`publish`].
static PUBLISHED: Mutex<AllocStats> = Mutex::new(AllocStats { count: 0, bytes: 0 });

/// Fold the process-wide delta since the previous publish into the
/// `alloc_allocations_total` / `alloc_bytes_total` counters.
///
/// Publication is explicit — never automatic — so the allocator cannot
/// perturb the deterministic counter set unless a caller opts in.
pub fn publish() -> AllocStats {
    let now = process_stats();
    let mut last = PUBLISHED.lock().unwrap_or_else(PoisonError::into_inner);
    let delta = now.since(*last);
    *last = now;
    crate::counter!("alloc_allocations_total").add(delta.count);
    crate::counter!("alloc_bytes_total").add(delta.bytes);
    delta
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_saturates() {
        let a = AllocStats {
            count: 3,
            bytes: 64,
        };
        let b = AllocStats {
            count: 5,
            bytes: 100,
        };
        assert_eq!(
            b.since(a),
            AllocStats {
                count: 2,
                bytes: 36
            }
        );
        assert_eq!(a.since(b), AllocStats::default());
        assert!(a.since(b).is_zero());
        assert_eq!(
            a.plus(b),
            AllocStats {
                count: 8,
                bytes: 164
            }
        );
    }

    #[test]
    fn readers_are_monotone() {
        // The unit-test binary does not install the allocator, so the
        // readings are either all-zero (not installed) or monotone
        // (another binary in the workspace would not share this process).
        let before = thread_stats();
        let v: Vec<u64> = (0..64).collect();
        let after = thread_stats();
        assert!(after.count >= before.count);
        assert!(after.bytes >= before.bytes);
        assert_eq!(v.len(), 64);
        let p = process_stats();
        assert!(p.count >= after.count.min(p.count));
    }

    #[test]
    fn publish_reports_delta_not_total() {
        let first = publish();
        let second = publish();
        // Back-to-back publishes in a non-allocating gap: the second
        // delta can only be smaller than a full re-publish of the total.
        assert!(second.count <= first.count.saturating_add(second.count));
    }
}
