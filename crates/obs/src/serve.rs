//! Zero-dependency live-telemetry scrape server over
//! [`std::net::TcpListener`].
//!
//! Long-running commands (`airfinger fleet`, `airfinger monitor`) opt in
//! with `--serve-metrics <addr>`; the server runs on one background
//! thread and answers four read-only endpoints:
//!
//! - `GET /metrics` — the global registry in Prometheus text format
//!   (what [`crate::Snapshot::to_prometheus`] exports), followed by the
//!   nanosecond latency histograms ([`crate::latency::export_prometheus`]);
//! - `GET /health` — a JSON rollup: recording/profiling switches,
//!   process allocation pressure, every `fleet_*`/`health_state`/
//!   `engine_window_*`/`budget_*`/`burn_*` gauge, the global event
//!   journal's head/retention, and the bounded [`crate::timeseries`]
//!   history;
//! - `GET /profile` — the profiler's collapsed-stack text (empty until
//!   [`crate::profile::set_enabled`] is turned on); `?baseline=set`
//!   stores the current snapshot as the diff baseline, and `?diff=base`
//!   answers the signed collapsed diff against it (for differential
//!   flamegraphs; 400 when no baseline was stored);
//! - `GET /events` — the global [`crate::events`] journal tail as JSON;
//!   `?after=<seq>` resumes strictly after a previously seen sequence
//!   number and `?limit=<n>` caps the batch (default 256).
//!
//! Malformed input gets explicit errors instead of silence: unknown
//! paths get a 404 with a body naming the path, a truncated or
//! unparseable request line gets a 400, an oversized path gets a 400,
//! and non-GET methods get a 405 with an `Allow: GET` header — all
//! counted under `serve_requests_total{endpoint=...}`.
//!
//! **Security caveats** (documented in DESIGN.md §13): the server is
//! plain HTTP/1.0-style with no TLS, no authentication, and no request
//! body parsing — bind it to loopback (`127.0.0.1:0` picks a free port)
//! or a trusted interface only. It never mutates engine state; the only
//! registry write is the `serve_requests_total` counter, so scraping a
//! process does not perturb its deterministic pipeline metrics.
//!
//! The accept loop polls a nonblocking listener (~20 ms cadence) so
//! [`ScrapeServer::stop`]/drop can shut it down promptly without a
//! self-connect trick; each connection is handled synchronously with
//! short read/write timeouts, which is plenty for scrape traffic.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Poll cadence of the nonblocking accept loop.
const ACCEPT_POLL: Duration = Duration::from_millis(20);
/// Per-connection read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_millis(1000);
/// Maximum request head read before answering (headers are ignored).
const MAX_REQUEST: usize = 8 * 1024;
/// Maximum accepted request path (including query string).
const MAX_PATH: usize = 1024;
/// Default `/events` batch size when `?limit=` is absent.
const DEFAULT_EVENTS_LIMIT: usize = 256;

/// A running scrape server; stops (and joins its thread) on drop.
#[derive(Debug)]
pub struct ScrapeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ScrapeServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// serving on a background thread.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration failures from the listener.
    pub fn start<A: ToSocketAddrs>(addr: A) -> std::io::Result<ScrapeServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("obs-scrape".to_string())
            .spawn(move || accept_loop(&listener, &stop_flag))?;
        Ok(ScrapeServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal the accept loop to exit and join the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => handle_connection(stream),
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Outcome of parsing one request head.
enum Request {
    /// A syntactically acceptable `GET <path>` (query string attached).
    Get(String),
    /// Unparseable or over-limit input; answered with a 400 naming the
    /// problem.
    Bad(&'static str),
    /// A well-formed request with a non-GET method; answered with 405.
    MethodNotAllowed,
}

/// Read the request head and answer one routed response; I/O errors drop
/// the connection (a scraper will retry).
fn handle_connection(mut stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let Some(request) = read_request(&mut stream) else {
        return;
    };
    let (status, content_type, body, extra_header) = match request {
        Request::Get(path) => {
            let (status, content_type, body) = route(&path);
            (status, content_type, body, "")
        }
        Request::Bad(reason) => {
            crate::counter!("serve_requests_total", endpoint = "bad_request").inc();
            (
                "400 Bad Request",
                "text/plain; charset=utf-8",
                format!("400 bad request: {reason}\n"),
                "",
            )
        }
        Request::MethodNotAllowed => {
            crate::counter!("serve_requests_total", endpoint = "method_not_allowed").inc();
            (
                "405 Method Not Allowed",
                "text/plain; charset=utf-8",
                "405 method not allowed: this server only answers GET\n".to_string(),
                "Allow: GET\r\n",
            )
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{extra_header}Connection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// Parse `<method> <path> …` from the request head; tolerates any
/// headers and stops at the blank line or the size cap. Returns `None`
/// only when the peer sent nothing at all (connect-and-close probes);
/// everything else gets an explicit answer.
fn read_request(stream: &mut TcpStream) -> Option<Request> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    if buf.is_empty() {
        return None;
    }
    let head = String::from_utf8_lossy(&buf);
    let Some(first) = head.lines().next() else {
        return Some(Request::Bad("empty request line"));
    };
    let mut parts = first.split_whitespace();
    let Some(method) = parts.next() else {
        return Some(Request::Bad("empty request line"));
    };
    // A partial request line ("GET" alone, or a method fragment cut off
    // mid-write) has no path token.
    let Some(path) = parts.next() else {
        return Some(Request::Bad("truncated request line (no path)"));
    };
    if path.len() > MAX_PATH {
        return Some(Request::Bad("request path too long"));
    }
    if method != "GET" {
        return Some(Request::MethodNotAllowed);
    }
    Some(Request::Get(path.to_string()))
}

/// Route one request path (query string still attached) to
/// `(status, content type, body)`.
fn route(raw_path: &str) -> (&'static str, &'static str, String) {
    let (path, query) = match raw_path.split_once('?') {
        Some((path, query)) => (path, query),
        None => (raw_path, ""),
    };
    match path {
        "/metrics" => {
            crate::counter!("serve_requests_total", endpoint = "metrics").inc();
            // The registry families plus the nanosecond latency
            // histograms, one exposition.
            let mut body = crate::global().snapshot().to_prometheus();
            body.push_str(&crate::latency::export_prometheus());
            ("200 OK", "text/plain; version=0.0.4; charset=utf-8", body)
        }
        "/health" => {
            crate::counter!("serve_requests_total", endpoint = "health").inc();
            ("200 OK", "application/json", health_json())
        }
        "/profile" => {
            crate::counter!("serve_requests_total", endpoint = "profile").inc();
            match profile_body(query) {
                Ok(body) => ("200 OK", "text/plain; charset=utf-8", body),
                Err(reason) => (
                    "400 Bad Request",
                    "text/plain; charset=utf-8",
                    format!("400 bad request: {reason}\n"),
                ),
            }
        }
        "/events" => {
            crate::counter!("serve_requests_total", endpoint = "events").inc();
            match events_json(query) {
                Ok(body) => ("200 OK", "application/json", body),
                Err(reason) => (
                    "400 Bad Request",
                    "text/plain; charset=utf-8",
                    format!("400 bad request: {reason}\n"),
                ),
            }
        }
        "/" => {
            crate::counter!("serve_requests_total", endpoint = "index").inc();
            (
                "200 OK",
                "text/plain; charset=utf-8",
                "airfinger live telemetry: /metrics /health /profile /events\n".to_string(),
            )
        }
        _ => {
            crate::counter!("serve_requests_total", endpoint = "other").inc();
            (
                "404 Not Found",
                "text/plain; charset=utf-8",
                format!(
                    "404 not found: {path}\nknown paths: / /metrics /health /profile /events\n"
                ),
            )
        }
    }
}

/// Serve the profiler's collapsed-stack text. Query parameters:
/// `baseline=set` stores the current [`crate::profile::snapshot`] as the
/// diff baseline ([`crate::profile::set_baseline`]) and confirms;
/// `diff=base` answers the *signed* collapsed diff of the live snapshot
/// against that stored baseline (400 when none was set). No query (or
/// unknown parameters, which are ignored) serves the plain collapsed
/// snapshot as before.
fn profile_body(query: &str) -> Result<String, &'static str> {
    let mut baseline_op = None;
    let mut diff_op = None;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "baseline" => baseline_op = Some(value.to_string()),
            "diff" => diff_op = Some(value.to_string()),
            _ => {}
        }
    }
    match (baseline_op.as_deref(), diff_op.as_deref()) {
        (Some("set"), None) => {
            let snap = crate::profile::snapshot();
            let paths = snap.paths.len();
            crate::profile::set_baseline(snap);
            Ok(format!("profile baseline set ({paths} paths)\n"))
        }
        (Some(_), _) => Err("`baseline` only accepts `set`"),
        (None, Some("base")) => match crate::profile::baseline() {
            Some(base) => Ok(crate::profile::snapshot().diff(&base).collapsed()),
            None => Err("no profile baseline set; GET /profile?baseline=set first"),
        },
        (None, Some(_)) => Err("`diff` only accepts `base`"),
        (None, None) => Ok(crate::profile::snapshot().collapsed()),
    }
}

/// Serve the global event journal's tail. Query parameters: `after`
/// (return events with `seq > after`; default 0 = from the oldest
/// retained) and `limit` (batch cap; default
/// [`DEFAULT_EVENTS_LIMIT`]). Unknown parameters are ignored; malformed
/// values are a 400.
fn events_json(query: &str) -> Result<String, &'static str> {
    let mut after = 0u64;
    let mut limit = DEFAULT_EVENTS_LIMIT;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "after" => {
                after = value
                    .parse()
                    .map_err(|_| "`after` must be a sequence number")?;
            }
            "limit" => {
                limit = value.parse().map_err(|_| "`limit` must be a count")?;
            }
            _ => {}
        }
    }
    Ok(crate::events::global().to_json_after(after, limit))
}

/// The `/health` JSON rollup (also usable without the server, e.g. for
/// tests): switches, allocation pressure, the event journal's head and
/// retention, the SLO/budget/burn gauges, and the bounded history.
#[must_use]
pub fn health_json() -> String {
    use crate::export::{json_number, json_string};
    let snapshot = crate::global().snapshot();
    let alloc = crate::alloc::process_stats();
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"airfinger-health-v1\",\n");
    out.push_str(&format!(
        "  \"recording\": {},\n  \"profiling\": {},\n",
        crate::recording(),
        crate::profile::enabled()
    ));
    out.push_str(&format!(
        "  \"alloc\": {{\"counting\": {}, \"count\": {}, \"bytes\": {}}},\n",
        crate::alloc::counting(),
        alloc.count,
        alloc.bytes
    ));
    let journal = crate::events::global();
    out.push_str(&format!(
        "  \"events\": {{\"head\": {}, \"retained\": {}, \"dropped\": {}, \"capacity\": {}}},\n",
        journal.head_seq(),
        journal.len(),
        journal.dropped(),
        journal.capacity()
    ));
    out.push_str("  \"gauges\": {");
    let mut first = true;
    for g in &snapshot.gauges {
        let identity = g.id.to_string();
        let relevant = identity.starts_with("fleet_")
            || identity.starts_with("engine_window_")
            || identity.starts_with("budget_")
            || identity.starts_with("burn_")
            || identity == "health_state";
        if !relevant {
            continue;
        }
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&format!(
            "{}: {}",
            json_string(&identity),
            json_number(g.value)
        ));
    }
    out.push_str("},\n");
    out.push_str(&format!(
        "  \"timeseries\": {}\n}}\n",
        crate::timeseries::to_json()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpStream;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        response
    }

    #[test]
    fn serves_all_endpoints_and_404() {
        let server = ScrapeServer::start("127.0.0.1:0").expect("bind loopback");
        let addr = server.addr();
        crate::counter!("serve_test_total").inc();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        if cfg!(feature = "obs") {
            assert!(metrics.contains("serve_test_total"), "{metrics}");
        }

        let health = get(addr, "/health");
        assert!(health.contains("airfinger-health-v1"), "{health}");
        assert!(health.contains("\"timeseries\""), "{health}");

        let profile = get(addr, "/profile");
        assert!(profile.starts_with("HTTP/1.1 200 OK"), "{profile}");

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        assert!(missing.contains("404 not found: /nope"), "{missing}");
        assert!(
            missing.contains("/events"),
            "404 lists endpoints: {missing}"
        );

        let index = get(addr, "/?q=1");
        assert!(
            index.contains("/metrics /health /profile /events"),
            "{index}"
        );
        server.stop();
    }

    /// Send raw (possibly malformed) bytes and return the response.
    fn raw(addr: SocketAddr, request: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(request).expect("request");
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        response
    }

    #[test]
    fn non_get_gets_405_with_allow_header() {
        let server = ScrapeServer::start("127.0.0.1:0").expect("bind loopback");
        let response = raw(server.addr(), b"POST /metrics HTTP/1.1\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
        assert!(response.contains("Allow: GET"), "{response}");
        assert!(response.contains("only answers GET"), "{response}");
        server.stop();
    }

    #[test]
    fn truncated_request_line_gets_400() {
        let server = ScrapeServer::start("127.0.0.1:0").expect("bind loopback");
        let addr = server.addr();
        // A bare method with no path (writer cut off mid-line).
        let response = raw(addr, b"GET\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(response.contains("truncated request line"), "{response}");
        // Whitespace-only garbage.
        let response = raw(addr, b"   \r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        server.stop();
    }

    #[test]
    fn oversized_path_gets_400() {
        let server = ScrapeServer::start("127.0.0.1:0").expect("bind loopback");
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(2048));
        let response = raw(server.addr(), long.as_bytes());
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(response.contains("path too long"), "{response}");
        server.stop();
    }

    #[test]
    fn connect_and_close_is_silently_dropped() {
        let server = ScrapeServer::start("127.0.0.1:0").expect("bind loopback");
        let response = raw(server.addr(), b"");
        assert!(
            response.is_empty(),
            "empty probe gets no answer: {response}"
        );
        server.stop();
    }

    #[test]
    fn events_endpoint_serves_journal_tail_with_cursor() {
        use crate::events::{Event, EventKind};
        let server = ScrapeServer::start("127.0.0.1:0").expect("bind loopback");
        let addr = server.addr();

        // Beyond-the-tail cursors are empty, never an error — valid even
        // when other tests already published into the global journal.
        let head = crate::events::global().head_seq();
        let beyond = get(addr, &format!("/events?after={}", head + 1000));
        assert!(beyond.starts_with("HTTP/1.1 200"), "{beyond}");
        assert!(beyond.contains("\"events\": []"), "{beyond}");

        let seq = crate::events::global().publish(Event {
            seq: 0,
            session_seq: 0,
            sample: 123,
            session: Some(7),
            shard: Some(1),
            window: Some(2),
            kind: EventKind::Recognition { family: "detect" },
        });
        let tail = get(addr, &format!("/events?after={}", seq - 1));
        assert!(tail.starts_with("HTTP/1.1 200"), "{tail}");
        assert!(tail.contains("airfinger-events-v1"), "{tail}");
        assert!(tail.contains(&format!("\"seq\": {seq}")), "{tail}");
        assert!(tail.contains("\"family\": \"detect\""), "{tail}");

        // Malformed cursor values are a 400, not a crash or a silent 0.
        let bad = get(addr, "/events?after=banana");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
        let bad = get(addr, "/events?limit=-1");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
        server.stop();
    }

    #[cfg(feature = "obs")]
    #[test]
    fn metrics_endpoint_includes_latency_histograms() {
        let server = ScrapeServer::start("127.0.0.1:0").expect("bind loopback");
        crate::latency!("serve_latency_test_ns").record(7);
        let metrics = get(server.addr(), "/metrics");
        assert!(
            metrics.contains("serve_latency_test_ns_bucket"),
            "{metrics}"
        );
        server.stop();
    }

    #[test]
    fn profile_endpoint_handles_baseline_and_diff_queries() {
        let server = ScrapeServer::start("127.0.0.1:0").expect("bind loopback");
        let addr = server.addr();

        // Diffing before a baseline exists is an explicit 400.
        crate::profile::clear_baseline();
        let missing = get(addr, "/profile?diff=base");
        assert!(missing.starts_with("HTTP/1.1 400"), "{missing}");
        assert!(missing.contains("no profile baseline"), "{missing}");

        let set = get(addr, "/profile?baseline=set");
        assert!(set.starts_with("HTTP/1.1 200"), "{set}");
        assert!(set.contains("profile baseline set"), "{set}");

        // With an identical live snapshot the signed diff elides
        // zero-delta paths — the body may be empty, but it is a 200.
        let diff = get(addr, "/profile?diff=base");
        assert!(diff.starts_with("HTTP/1.1 200"), "{diff}");

        // Unknown parameter values are a 400, not silence.
        let bad = get(addr, "/profile?diff=banana");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
        let bad = get(addr, "/profile?baseline=clear");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
        crate::profile::clear_baseline();
        server.stop();
    }

    #[test]
    fn health_json_is_valid_shape() {
        let json = health_json();
        assert!(json.contains("\"alloc\""));
        assert!(json.contains("\"gauges\""));
        assert!(json.contains("\"events\""));
    }
}
