//! Zero-dependency live-telemetry scrape server over
//! [`std::net::TcpListener`].
//!
//! Long-running commands (`airfinger fleet`, `airfinger monitor`) opt in
//! with `--serve-metrics <addr>`; the server runs on one background
//! thread and answers three read-only endpoints:
//!
//! - `GET /metrics` — the global registry in Prometheus text format
//!   (what [`crate::Snapshot::to_prometheus`] exports);
//! - `GET /health` — a JSON rollup: recording/profiling switches,
//!   process allocation pressure, every `fleet_*`/`health_state`/
//!   `engine_window_*` gauge, and the bounded [`crate::timeseries`]
//!   history;
//! - `GET /profile` — the profiler's collapsed-stack text (empty until
//!   [`crate::profile::set_enabled`] is turned on).
//!
//! **Security caveats** (documented in DESIGN.md §13): the server is
//! plain HTTP/1.0-style with no TLS, no authentication, and no request
//! body parsing — bind it to loopback (`127.0.0.1:0` picks a free port)
//! or a trusted interface only. It never mutates engine state; the only
//! registry write is the `serve_requests_total` counter, so scraping a
//! process does not perturb its deterministic pipeline metrics.
//!
//! The accept loop polls a nonblocking listener (~20 ms cadence) so
//! [`ScrapeServer::stop`]/drop can shut it down promptly without a
//! self-connect trick; each connection is handled synchronously with
//! short read/write timeouts, which is plenty for scrape traffic.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Poll cadence of the nonblocking accept loop.
const ACCEPT_POLL: Duration = Duration::from_millis(20);
/// Per-connection read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_millis(1000);
/// Maximum request head read before answering (headers are ignored).
const MAX_REQUEST: usize = 8 * 1024;

/// A running scrape server; stops (and joins its thread) on drop.
#[derive(Debug)]
pub struct ScrapeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ScrapeServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// serving on a background thread.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration failures from the listener.
    pub fn start<A: ToSocketAddrs>(addr: A) -> std::io::Result<ScrapeServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("obs-scrape".to_string())
            .spawn(move || accept_loop(&listener, &stop_flag))?;
        Ok(ScrapeServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal the accept loop to exit and join the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => handle_connection(stream),
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Read the request head and answer one routed response; errors drop the
/// connection (a scraper will retry).
fn handle_connection(mut stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let Some(path) = read_request_path(&mut stream) else {
        return;
    };
    let (status, content_type, body) = route(&path);
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// Parse `GET <path> …` from the request head; tolerates any headers and
/// stops at the blank line or the size cap.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let first = head.lines().next()?;
    let mut parts = first.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    if method != "GET" {
        return None;
    }
    // Strip any query string: routing is path-only.
    Some(path.split('?').next().unwrap_or(path).to_string())
}

/// Route one request path to `(status, content type, body)`.
fn route(path: &str) -> (&'static str, &'static str, String) {
    match path {
        "/metrics" => {
            crate::counter!("serve_requests_total", endpoint = "metrics").inc();
            (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                crate::global().snapshot().to_prometheus(),
            )
        }
        "/health" => {
            crate::counter!("serve_requests_total", endpoint = "health").inc();
            ("200 OK", "application/json", health_json())
        }
        "/profile" => {
            crate::counter!("serve_requests_total", endpoint = "profile").inc();
            (
                "200 OK",
                "text/plain; charset=utf-8",
                crate::profile::snapshot().collapsed(),
            )
        }
        "/" => {
            crate::counter!("serve_requests_total", endpoint = "index").inc();
            (
                "200 OK",
                "text/plain; charset=utf-8",
                "airfinger live telemetry: /metrics /health /profile\n".to_string(),
            )
        }
        _ => {
            crate::counter!("serve_requests_total", endpoint = "other").inc();
            ("404 Not Found", "text/plain; charset=utf-8", String::new())
        }
    }
}

/// The `/health` JSON rollup (also usable without the server, e.g. for
/// tests).
#[must_use]
pub fn health_json() -> String {
    use crate::export::{json_number, json_string};
    let snapshot = crate::global().snapshot();
    let alloc = crate::alloc::process_stats();
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"airfinger-health-v1\",\n");
    out.push_str(&format!(
        "  \"recording\": {},\n  \"profiling\": {},\n",
        crate::recording(),
        crate::profile::enabled()
    ));
    out.push_str(&format!(
        "  \"alloc\": {{\"counting\": {}, \"count\": {}, \"bytes\": {}}},\n",
        crate::alloc::counting(),
        alloc.count,
        alloc.bytes
    ));
    out.push_str("  \"gauges\": {");
    let mut first = true;
    for g in &snapshot.gauges {
        let identity = g.id.to_string();
        let relevant = identity.starts_with("fleet_")
            || identity.starts_with("engine_window_")
            || identity == "health_state";
        if !relevant {
            continue;
        }
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&format!(
            "{}: {}",
            json_string(&identity),
            json_number(g.value)
        ));
    }
    out.push_str("},\n");
    out.push_str(&format!(
        "  \"timeseries\": {}\n}}\n",
        crate::timeseries::to_json()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpStream;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        response
    }

    #[test]
    fn serves_all_endpoints_and_404() {
        let server = ScrapeServer::start("127.0.0.1:0").expect("bind loopback");
        let addr = server.addr();
        crate::counter!("serve_test_total").inc();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        if cfg!(feature = "obs") {
            assert!(metrics.contains("serve_test_total"), "{metrics}");
        }

        let health = get(addr, "/health");
        assert!(health.contains("airfinger-health-v1"), "{health}");
        assert!(health.contains("\"timeseries\""), "{health}");

        let profile = get(addr, "/profile");
        assert!(profile.starts_with("HTTP/1.1 200 OK"), "{profile}");

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        let index = get(addr, "/?q=1");
        assert!(index.contains("/metrics /health /profile"), "{index}");
        server.stop();
    }

    #[test]
    fn non_get_is_dropped() {
        let server = ScrapeServer::start("127.0.0.1:0").expect("bind loopback");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        assert!(response.is_empty(), "non-GET gets no response: {response}");
    }

    #[test]
    fn health_json_is_valid_shape() {
        let json = health_json();
        assert!(json.contains("\"alloc\""));
        assert!(json.contains("\"gauges\""));
    }
}
