//! Structured event journal: a bounded, deterministic timeline of typed
//! events with correlation fields.
//!
//! Counters say *how much*; the journal says *what happened, in which
//! order, to whom*. Every event carries a journal-assigned monotone
//! sequence number plus correlation fields (`session`, `shard`,
//! `window`, `session_seq`) so a shed session, a health transition, and
//! the flight-recorder dump it produced can be tied back together after
//! the fact.
//!
//! # Determinism
//!
//! Events are keyed by **sample counts, never wall clock**: the `sample`
//! field is the emitter's deterministic sample ordinal at emission, and
//! sequence numbers are assigned in publish order. Emitters keep the
//! publish order deterministic:
//!
//! - a solo [`EngineMonitor`](crate::monitor::EngineMonitor) with an
//!   attached journal publishes immediately from its single-threaded
//!   push loop;
//! - the fleet buffers per-session events inside each monitor during the
//!   parallel shard drain and publishes them at the round barrier in
//!   (shard, session-id) order — the same order a sequential sweep would
//!   visit them.
//!
//! The result: the journal's JSON export is byte-identical across worker
//! thread counts (pinned by the `repro events` experiment and the
//! workspace integration tests).
//!
//! # Bounds
//!
//! The journal is a fixed-capacity ring; old events are evicted from the
//! front (counted by `events_dropped_total`) and the head sequence keeps
//! advancing, so a cursor (`?after=<seq>` on the `/events` endpoint) can
//! detect the gap.

use crate::export::json_string;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Schema identifier of the journal's JSON export.
pub const EVENTS_SCHEMA: &str = "airfinger-events-v1";

/// Default capacity of the process-global journal (see [`global`]).
pub const DEFAULT_CAPACITY: usize = 1024;

/// What happened. Every variant renders to a stable lowercase `kind`
/// tag plus kind-specific detail fields in the JSON export.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A fleet session was admitted.
    SessionAdmitted,
    /// A fleet session was shed
    /// (reason: [`ShedReason::tag`](crate::health::HealthReason::tag)-style
    /// label, `admission` or `backpressure`).
    SessionShed {
        /// Why the session was shed.
        reason: &'static str,
    },
    /// The health-state machine changed severity level.
    HealthTransition {
        /// State tag before the window (`healthy` / `degraded` / `unhealthy`).
        from: &'static str,
        /// State tag after the window.
        to: &'static str,
        /// Breaching rule tag (`none` when recovering to healthy).
        reason: &'static str,
    },
    /// A gesture segment closed and was accepted
    /// (`family`: `detect` or `track`).
    Recognition {
        /// Accepted outcome tag.
        family: &'static str,
    },
    /// A gesture segment closed and was rejected as unintentional motion.
    Rejection,
    /// The window's mean Otsu threshold drifted past the degraded
    /// ceiling relative to the calibrated baseline.
    DriftFlag {
        /// Relative drift in permille (`|mean/baseline - 1| * 1000`),
        /// saturating.
        drift_permille: u64,
    },
    /// A flight-recorder post-mortem dump was produced; cross-links the
    /// dump to the journal span of the unhealthy episode.
    DumpRef {
        /// The dump's per-session ordinal
        /// ([`Dump::sequence`](crate::recorder::Dump::sequence)).
        dump: u64,
        /// The breaching rule tag.
        trigger: &'static str,
        /// `session_seq` of the first event of the episode.
        first_seq: u64,
        /// `session_seq` of the last event before the dump.
        last_seq: u64,
    },
    /// An error-budget burn-rate alert fired (edge-triggered; see
    /// [`crate::budget`]).
    BurnAlert {
        /// `fast` or `slow`.
        speed: &'static str,
        /// Burn rate in permille at the firing window, saturating.
        burn_permille: u64,
    },
}

impl EventKind {
    /// Stable lowercase tag, also the `events_emitted_total{kind}` label
    /// value.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::SessionAdmitted => "admitted",
            EventKind::SessionShed { .. } => "shed",
            EventKind::HealthTransition { .. } => "transition",
            EventKind::Recognition { .. } => "recognition",
            EventKind::Rejection => "rejection",
            EventKind::DriftFlag { .. } => "drift",
            EventKind::DumpRef { .. } => "dump",
            EventKind::BurnAlert { .. } => "burn",
        }
    }

    /// Every kind tag, in schema order (pre-registration and docs).
    pub const TAGS: [&'static str; 8] = [
        "admitted",
        "shed",
        "transition",
        "recognition",
        "rejection",
        "drift",
        "dump",
        "burn",
    ];
}

/// One journal entry. `seq` is assigned by [`Journal::publish`]; all
/// other fields are stamped by the emitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Journal-assigned global sequence number (1-based; 0 until
    /// published).
    pub seq: u64,
    /// Emitter-local monotone ordinal (per monitor / per fleet), the
    /// half of the dump cross-link that survives buffering.
    pub session_seq: u64,
    /// The emitter's deterministic sample count at emission — the
    /// journal's clock.
    pub sample: u64,
    /// Owning session id, when the emitter serves one.
    pub session: Option<u64>,
    /// Owning shard index, when the emitter is fleet-hosted.
    pub shard: Option<u64>,
    /// Monitoring-window ordinal the event belongs to, when windowed.
    pub window: Option<u64>,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Render the event as a single-line JSON object with a fixed field
    /// order (byte-stable given identical inputs).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160);
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"seq\": {}, \"session_seq\": {}, \"sample\": {}",
            self.seq, self.session_seq, self.sample
        );
        write_opt(out, "session", self.session);
        write_opt(out, "shard", self.shard);
        write_opt(out, "window", self.window);
        let _ = write!(out, ", \"kind\": {}", json_string(self.kind.tag()));
        match self.kind {
            EventKind::SessionAdmitted | EventKind::Rejection => {}
            EventKind::SessionShed { reason } => {
                let _ = write!(out, ", \"reason\": {}", json_string(reason));
            }
            EventKind::HealthTransition { from, to, reason } => {
                let _ = write!(
                    out,
                    ", \"from\": {}, \"to\": {}, \"reason\": {}",
                    json_string(from),
                    json_string(to),
                    json_string(reason)
                );
            }
            EventKind::Recognition { family } => {
                let _ = write!(out, ", \"family\": {}", json_string(family));
            }
            EventKind::DriftFlag { drift_permille } => {
                let _ = write!(out, ", \"drift_permille\": {drift_permille}");
            }
            EventKind::DumpRef {
                dump,
                trigger,
                first_seq,
                last_seq,
            } => {
                let _ = write!(
                    out,
                    ", \"dump\": {dump}, \"trigger\": {}, \
                     \"first_session_seq\": {first_seq}, \"last_session_seq\": {last_seq}",
                    json_string(trigger)
                );
            }
            EventKind::BurnAlert {
                speed,
                burn_permille,
            } => {
                let _ = write!(
                    out,
                    ", \"speed\": {}, \"burn_permille\": {burn_permille}",
                    json_string(speed)
                );
            }
        }
        out.push('}');
    }
}

fn write_opt(out: &mut String, key: &str, value: Option<u64>) {
    match value {
        Some(v) => {
            let _ = write!(out, ", \"{key}\": {v}");
        }
        None => {
            let _ = write!(out, ", \"{key}\": null");
        }
    }
}

#[derive(Debug)]
struct Inner {
    capacity: usize,
    ring: VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded, shareable event journal. Cloning shares the underlying
/// ring ([`Arc`]); [`global`] hands out the process-wide instance the
/// `/events` endpoint serves, and isolated instances back deterministic
/// experiments.
#[derive(Debug, Clone)]
pub struct Journal {
    inner: Arc<Mutex<Inner>>,
}

impl Journal {
    /// Create a journal with a fixed ring capacity (clamped to ≥ 1).
    /// Pre-registers the `events_*` counters so a snapshot taken before
    /// any event still shows them at zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        preregister_metrics();
        Journal {
            inner: Arc::new(Mutex::new(Inner {
                capacity: capacity.max(1),
                ring: VecDeque::new(),
                next_seq: 1,
                dropped: 0,
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Append one event, assigning and returning its global sequence
    /// number. Evicts the oldest event when the ring is full (counted by
    /// `events_dropped_total`).
    pub fn publish(&self, mut event: Event) -> u64 {
        let mut inner = self.lock();
        event.seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.ring.len() == inner.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
            crate::counter!("events_dropped_total").inc();
        }
        inner.ring.push_back(event);
        event.seq
    }

    /// Append a batch in order (one lock acquisition per event is fine —
    /// events fire per window/session, not per sample).
    pub fn publish_all(&self, events: impl IntoIterator<Item = Event>) {
        for event in events {
            let _ = self.publish(event);
        }
    }

    /// Highest assigned sequence number (0 when nothing was published).
    #[must_use]
    pub fn head_seq(&self) -> u64 {
        self.lock().next_seq - 1
    }

    /// Events currently retained (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().ring.len()
    }

    /// Whether nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().ring.is_empty()
    }

    /// Events evicted from the ring so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.lock().capacity
    }

    /// Resize the ring, evicting from the front when shrinking. Sequence
    /// numbers keep advancing monotonically.
    pub fn set_capacity(&self, capacity: usize) {
        let mut inner = self.lock();
        inner.capacity = capacity.max(1);
        while inner.ring.len() > inner.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
            crate::counter!("events_dropped_total").inc();
        }
    }

    /// Drop every retained event (sequence numbers are *not* reset, so
    /// cursors stay valid).
    pub fn clear(&self) {
        self.lock().ring.clear();
    }

    /// Retained events with `seq > after`, oldest first, capped at
    /// `limit`.
    #[must_use]
    pub fn tail_after(&self, after: u64, limit: usize) -> Vec<Event> {
        let inner = self.lock();
        inner
            .ring
            .iter()
            .filter(|e| e.seq > after)
            .take(limit)
            .copied()
            .collect()
    }

    /// JSON export of [`Journal::tail_after`] under the
    /// [`EVENTS_SCHEMA`] envelope — what `GET /events?after=<seq>`
    /// serves. Byte-stable given identical journal contents.
    #[must_use]
    pub fn to_json_after(&self, after: u64, limit: usize) -> String {
        let inner = self.lock();
        let head = inner.next_seq - 1;
        let mut out = String::with_capacity(256 + 160 * inner.ring.len().min(limit));
        let _ = write!(
            out,
            "{{\n  \"schema\": {},\n  \"head\": {head},\n  \"dropped\": {},\n  \
             \"capacity\": {},\n  \"after\": {after},\n  \"events\": [",
            json_string(EVENTS_SCHEMA),
            inner.dropped,
            inner.capacity
        );
        let mut first = true;
        for event in inner.ring.iter().filter(|e| e.seq > after).take(limit) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    ");
            event.write_json(&mut out);
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

impl Default for Journal {
    fn default() -> Self {
        Journal::new(DEFAULT_CAPACITY)
    }
}

/// The process-global journal: what live emitters (`airfinger monitor`,
/// `airfinger fleet` with `--journal`) publish into and the `/events`
/// scrape endpoint serves.
pub fn global() -> &'static Journal {
    static GLOBAL: OnceLock<Journal> = OnceLock::new();
    GLOBAL.get_or_init(Journal::default)
}

/// Pre-register every `events_*` counter at zero so snapshots are
/// schema-complete before the first event. Emitters (monitor, fleet)
/// count `events_emitted_total{kind}` at emission time; the journal
/// counts ring evictions.
pub fn preregister_metrics() {
    for tag in EventKind::TAGS {
        crate::counter_with("events_emitted_total", &[("kind", tag)]).add(0);
    }
    crate::counter!("events_dropped_total").add(0);
}

/// Count one emitted event (shared by every emitter so the per-kind
/// tallies stay consistent between buffered and immediate publishing).
pub fn count_emitted(kind: &EventKind) {
    crate::counter_with("events_emitted_total", &[("kind", kind.tag())]).inc();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(sample: u64, kind: EventKind) -> Event {
        Event {
            seq: 0,
            session_seq: sample,
            sample,
            session: None,
            shard: None,
            window: None,
            kind,
        }
    }

    #[test]
    fn sequences_are_monotone_from_one() {
        let j = Journal::new(8);
        assert_eq!(j.head_seq(), 0);
        assert_eq!(j.publish(event(0, EventKind::SessionAdmitted)), 1);
        assert_eq!(j.publish(event(1, EventKind::Rejection)), 2);
        assert_eq!(j.head_seq(), 2);
        assert_eq!(j.len(), 2);
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let j = Journal::new(4);
        for i in 0..10 {
            j.publish(event(i, EventKind::Rejection));
        }
        assert_eq!(j.len(), 4);
        assert_eq!(j.dropped(), 6);
        assert_eq!(j.head_seq(), 10);
        let tail: Vec<u64> = j.tail_after(0, 100).iter().map(|e| e.seq).collect();
        assert_eq!(tail, vec![7, 8, 9, 10]);
    }

    #[test]
    fn cursor_semantics() {
        let j = Journal::new(8);
        for i in 0..5 {
            j.publish(event(i, EventKind::SessionAdmitted));
        }
        // Mid-cursor: strictly after.
        let seqs: Vec<u64> = j.tail_after(3, 100).iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![4, 5]);
        // Beyond the tail: empty, not an error.
        assert!(j.tail_after(5, 100).is_empty());
        assert!(j.tail_after(99, 100).is_empty());
        // Limit caps the batch.
        assert_eq!(j.tail_after(0, 2).len(), 2);
    }

    #[test]
    fn empty_journal_exports_valid_envelope() {
        let j = Journal::new(8);
        let json = j.to_json_after(0, 100);
        assert!(
            json.contains("\"schema\": \"airfinger-events-v1\""),
            "{json}"
        );
        assert!(json.contains("\"head\": 0"), "{json}");
        assert!(json.contains("\"events\": []"), "{json}");
        let v: serde::Value = serde_json::from_str(&json).expect("parses");
        assert_eq!(
            v.as_object()
                .and_then(|o| o.get("events"))
                .and_then(serde::Value::as_array)
                .map(<[serde::Value]>::len),
            Some(0)
        );
    }

    #[test]
    fn event_json_carries_correlation_and_detail_fields() {
        let e = Event {
            seq: 7,
            session_seq: 3,
            sample: 1200,
            session: Some(42),
            shard: Some(2),
            window: Some(4),
            kind: EventKind::HealthTransition {
                from: "healthy",
                to: "degraded",
                reason: "segmentation_stall",
            },
        };
        let json = e.to_json();
        let v: serde::Value = serde_json::from_str(&json).expect("parses");
        let o = v.as_object().expect("object");
        assert_eq!(o.get("seq").and_then(serde::Value::as_u64), Some(7));
        assert_eq!(o.get("session").and_then(serde::Value::as_u64), Some(42));
        assert_eq!(o.get("shard").and_then(serde::Value::as_u64), Some(2));
        assert_eq!(o.get("window").and_then(serde::Value::as_u64), Some(4));
        assert_eq!(
            o.get("kind").and_then(serde::Value::as_str),
            Some("transition")
        );
        assert_eq!(
            o.get("reason").and_then(serde::Value::as_str),
            Some("segmentation_stall")
        );
        // Absent correlation fields render as null, not missing.
        let bare = event(0, EventKind::Rejection).to_json();
        assert!(bare.contains("\"session\": null"), "{bare}");
    }

    #[test]
    fn shrink_evicts_from_the_front() {
        let j = Journal::new(8);
        for i in 0..6 {
            j.publish(event(i, EventKind::Rejection));
        }
        j.set_capacity(2);
        assert_eq!(j.len(), 2);
        let seqs: Vec<u64> = j.tail_after(0, 100).iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![5, 6]);
        assert_eq!(j.dropped(), 4);
    }

    #[test]
    fn kind_tags_match_schema_order() {
        let kinds = [
            EventKind::SessionAdmitted,
            EventKind::SessionShed {
                reason: "admission",
            },
            EventKind::HealthTransition {
                from: "healthy",
                to: "degraded",
                reason: "none",
            },
            EventKind::Recognition { family: "detect" },
            EventKind::Rejection,
            EventKind::DriftFlag { drift_permille: 0 },
            EventKind::DumpRef {
                dump: 0,
                trigger: "segmentation_stall",
                first_seq: 0,
                last_seq: 0,
            },
            EventKind::BurnAlert {
                speed: "fast",
                burn_permille: 0,
            },
        ];
        let tags: Vec<&str> = kinds.iter().map(EventKind::tag).collect();
        assert_eq!(tags, EventKind::TAGS);
    }
}
