//! Declarative SLO rules and the engine health-state machine.
//!
//! Each closed [`WindowStats`](crate::window::WindowStats) is scored
//! against four rules derived from the paper's operating constraints:
//!
//! 1. **Latency** — windowed p95 push latency vs the 10 ms per-sample
//!    budget (100 Hz real-time constraint).
//! 2. **Rejection rate** — fraction of closed segments rejected as
//!    unintentional motion; a sustained spike means ambient interference
//!    (IR remotes, passers-by) is flooding the segmenter.
//! 3. **Segmentation stall** — consecutive windows closing zero segments
//!    while the feed keeps running; the streaming analogue of
//!    `pipeline_segments_found_total` flatlining (a dead or saturated
//!    sensor produces no ΔRSS² activity at all).
//! 4. **Threshold drift** — mean dynamic (Otsu) threshold vs a baseline
//!    calibrated from the first window; large drift means the
//!    calibrate-as-you-accumulate `I_seg` has been dragged away from the
//!    signal regime the classifier was trained on.
//!
//! The state machine is three-valued ([`Healthy`](HealthState::Healthy) /
//! [`Degraded`](HealthState::Degraded) /
//! [`Unhealthy`](HealthState::Unhealthy)); every rule nominates a
//! severity and the **worst** wins. Transitions are recorded only when
//! the severity *level* changes — a reason change at the same level
//! updates the state but is not a transition, so transition counts stay
//! stable and deterministic.
//!
//! Everything except the latency rule is driven by deterministic window
//! counts, so state sequences are bit-identical across thread counts
//! whenever latency stays inside its budget (which instrumented tests
//! pin by construction: microsecond pushes vs a 10 ms budget).

use crate::window::WindowStats;

/// Why a window breached (or is close to breaching) an SLO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthReason {
    /// Windowed p95 push latency exceeded its budget.
    LatencyBudget,
    /// Too large a fraction of closed segments were rejected.
    RejectionRate,
    /// Consecutive windows closed zero segments.
    SegmentationStall,
    /// Mean Otsu threshold drifted too far from the calibrated baseline.
    ThresholdDrift,
}

impl HealthReason {
    /// Short lowercase tag for logs, dumps, and metric labels.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            HealthReason::LatencyBudget => "latency_budget",
            HealthReason::RejectionRate => "rejection_rate",
            HealthReason::SegmentationStall => "segmentation_stall",
            HealthReason::ThresholdDrift => "threshold_drift",
        }
    }
}

/// The engine's health verdict after a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// All SLO rules within budget.
    Healthy,
    /// At least one rule past its warning ceiling; service continues.
    Degraded(HealthReason),
    /// At least one rule past its breach ceiling; a flight-recorder dump
    /// is warranted.
    Unhealthy(HealthReason),
}

impl HealthState {
    /// Severity ordinal: 0 healthy, 1 degraded, 2 unhealthy.
    #[must_use]
    pub fn level(&self) -> u8 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded(_) => 1,
            HealthState::Unhealthy(_) => 2,
        }
    }

    /// Short lowercase tag (`healthy` / `degraded` / `unhealthy`).
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded(_) => "degraded",
            HealthState::Unhealthy(_) => "unhealthy",
        }
    }

    /// The breaching rule, when not healthy.
    #[must_use]
    pub fn reason(&self) -> Option<HealthReason> {
        match self {
            HealthState::Healthy => None,
            HealthState::Degraded(r) | HealthState::Unhealthy(r) => Some(*r),
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.reason() {
            Some(r) => write!(f, "{}({})", self.tag(), r.tag()),
            None => f.write_str(self.tag()),
        }
    }
}

/// Declarative SLO rule thresholds. Any rule can be disabled by setting
/// its ceiling to `f64::INFINITY` (ratios/latency) or `usize::MAX`
/// (stall windows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloRules {
    /// Degraded when windowed p95 push latency exceeds this (seconds).
    /// Default: the paper's 10 ms per-sample budget.
    pub push_p95_budget_s: f64,
    /// Unhealthy when windowed p95 push latency exceeds this (seconds).
    pub push_p95_breach_s: f64,
    /// Degraded when the window's rejected fraction of closed segments
    /// exceeds this (only evaluated when the window closed
    /// ≥ [`SloRules::min_segments_for_rejection`] segments).
    pub degraded_rejection_ratio: f64,
    /// Unhealthy when the rejected fraction exceeds this.
    pub unhealthy_rejection_ratio: f64,
    /// Minimum closed segments in a window before the rejection-rate rule
    /// fires (a single rejected blip is not an SLO signal).
    pub min_segments_for_rejection: u64,
    /// Degraded after this many *consecutive* zero-segment windows.
    pub degraded_stall_windows: usize,
    /// Unhealthy after this many consecutive zero-segment windows.
    pub unhealthy_stall_windows: usize,
    /// Degraded when `|mean_threshold / baseline - 1|` exceeds this.
    pub degraded_threshold_drift: f64,
    /// Unhealthy when the relative threshold drift exceeds this.
    pub unhealthy_threshold_drift: f64,
}

impl Default for SloRules {
    fn default() -> Self {
        SloRules {
            push_p95_budget_s: 0.010,
            push_p95_breach_s: 0.050,
            degraded_rejection_ratio: 0.5,
            unhealthy_rejection_ratio: 0.9,
            min_segments_for_rejection: 3,
            degraded_stall_windows: 2,
            unhealthy_stall_windows: 4,
            degraded_threshold_drift: 3.0,
            unhealthy_threshold_drift: 50.0,
        }
    }
}

/// One recorded level change of the health-state machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// Ordinal of the window whose evaluation caused the change.
    pub window_index: u64,
    /// State before the window.
    pub from: HealthState,
    /// State after the window.
    pub to: HealthState,
}

/// Bound on the retained transition log — a flapping deployment must not
/// grow memory without limit. Old entries are dropped from the front.
const MAX_TRANSITIONS: usize = 256;

/// The health-state machine: feed it every closed window, read the
/// current verdict and the (bounded) transition log.
#[derive(Debug)]
pub struct HealthModel {
    rules: SloRules,
    state: HealthState,
    baseline_threshold: Option<f64>,
    consecutive_stalls: usize,
    transitions: Vec<Transition>,
    dropped_transitions: u64,
}

impl HealthModel {
    /// Start healthy with the given rules. The threshold-drift baseline
    /// is calibrated from the first observed window unless preset via
    /// [`HealthModel::with_baseline_threshold`].
    #[must_use]
    pub fn new(rules: SloRules) -> Self {
        HealthModel {
            rules,
            state: HealthState::Healthy,
            baseline_threshold: None,
            consecutive_stalls: 0,
            transitions: Vec::new(),
            dropped_transitions: 0,
        }
    }

    /// Preset the calibrated Otsu-threshold baseline instead of deriving
    /// it from the first window.
    #[must_use]
    pub fn with_baseline_threshold(mut self, baseline: f64) -> Self {
        if baseline.is_finite() && baseline > 0.0 {
            self.baseline_threshold = Some(baseline);
        }
        self
    }

    /// The active rules.
    #[must_use]
    pub fn rules(&self) -> &SloRules {
        &self.rules
    }

    /// Current verdict.
    #[must_use]
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// The calibrated threshold baseline, once known.
    #[must_use]
    pub fn baseline_threshold(&self) -> Option<f64> {
        self.baseline_threshold
    }

    /// Recorded level changes, oldest first (bounded; see
    /// [`HealthModel::dropped_transitions`]).
    #[must_use]
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// How many old transitions were dropped to honor the bound.
    #[must_use]
    pub fn dropped_transitions(&self) -> u64 {
        self.dropped_transitions
    }

    /// Score one closed window; returns the transition when the severity
    /// level changed.
    pub fn observe_window(&mut self, window: &WindowStats) -> Option<Transition> {
        if window.samples == 0 {
            return None;
        }
        // Calibrate the drift baseline on first contact, before scoring —
        // the first window *defines* normal.
        if self.baseline_threshold.is_none()
            && window.mean_threshold.is_finite()
            && window.mean_threshold > 0.0
        {
            self.baseline_threshold = Some(window.mean_threshold);
        }
        if window.segments == 0 {
            self.consecutive_stalls += 1;
        } else {
            self.consecutive_stalls = 0;
        }
        let next = self.score(window);
        let previous = self.state;
        self.state = next;
        if next.level() == previous.level() {
            return None;
        }
        let transition = Transition {
            window_index: window.index,
            from: previous,
            to: next,
        };
        if self.transitions.len() >= MAX_TRANSITIONS {
            self.transitions.remove(0);
            self.dropped_transitions += 1;
        }
        self.transitions.push(transition);
        Some(transition)
    }

    /// Worst-severity verdict across all four rules. Rule order fixes
    /// which reason is reported on ties: stall, drift, rejection,
    /// latency — the deterministic signals outrank the scheduling one.
    fn score(&self, window: &WindowStats) -> HealthState {
        let rules = &self.rules;
        let drift = self.baseline_threshold.map(|base| {
            if base > 0.0 {
                (window.mean_threshold / base - 1.0).abs()
            } else {
                0.0
            }
        });
        let rejection = if window.segments >= rules.min_segments_for_rejection {
            Some(window.rejection_ratio())
        } else {
            None
        };
        let checks = [
            (
                HealthReason::SegmentationStall,
                self.consecutive_stalls >= rules.unhealthy_stall_windows,
                self.consecutive_stalls >= rules.degraded_stall_windows,
            ),
            (
                HealthReason::ThresholdDrift,
                drift.is_some_and(|d| d > rules.unhealthy_threshold_drift),
                drift.is_some_and(|d| d > rules.degraded_threshold_drift),
            ),
            (
                HealthReason::RejectionRate,
                rejection.is_some_and(|r| r > rules.unhealthy_rejection_ratio),
                rejection.is_some_and(|r| r > rules.degraded_rejection_ratio),
            ),
            (
                HealthReason::LatencyBudget,
                window.p95_push_seconds > rules.push_p95_breach_s,
                window.p95_push_seconds > rules.push_p95_budget_s,
            ),
        ];
        for (reason, unhealthy, _) in checks {
            if unhealthy {
                return HealthState::Unhealthy(reason);
            }
        }
        for (reason, _, degraded) in checks {
            if degraded {
                return HealthState::Degraded(reason);
            }
        }
        HealthState::Healthy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(index: u64, segments: u64, rejections: u64, threshold: f64) -> WindowStats {
        WindowStats {
            index,
            start_sample: index * 100,
            samples: 100,
            recognitions: segments - rejections,
            rejections,
            segments,
            mean_threshold: threshold,
            p95_push_seconds: 0.0001,
            max_push_seconds: 0.0002,
        }
    }

    #[test]
    fn stays_healthy_on_nominal_windows() {
        let mut m = HealthModel::new(SloRules::default());
        for i in 0..10 {
            assert!(m.observe_window(&window(i, 2, 0, 40.0)).is_none());
        }
        assert_eq!(m.state(), HealthState::Healthy);
        assert_eq!(m.baseline_threshold(), Some(40.0));
    }

    #[test]
    fn stall_escalates_degraded_then_unhealthy() {
        let mut m = HealthModel::new(SloRules::default());
        m.observe_window(&window(0, 2, 0, 40.0));
        let mut states = Vec::new();
        for i in 1..=4 {
            m.observe_window(&window(i, 0, 0, 40.0));
            states.push(m.state());
        }
        assert_eq!(states[0], HealthState::Healthy);
        assert_eq!(
            states[1],
            HealthState::Degraded(HealthReason::SegmentationStall)
        );
        assert_eq!(
            states[3],
            HealthState::Unhealthy(HealthReason::SegmentationStall)
        );
        assert_eq!(m.transitions().len(), 2);
        // Recovery: a segment-bearing window resets the stall count.
        let t = m.observe_window(&window(5, 3, 0, 40.0)).expect("recovers");
        assert_eq!(t.to, HealthState::Healthy);
    }

    #[test]
    fn rejection_rate_needs_enough_segments() {
        let mut m = HealthModel::new(SloRules::default());
        m.observe_window(&window(0, 2, 2, 40.0)); // 100% rejected but < min segments
        assert_eq!(m.state(), HealthState::Healthy);
        m.observe_window(&window(1, 4, 3, 40.0)); // 75% > degraded ceiling
        assert_eq!(
            m.state(),
            HealthState::Degraded(HealthReason::RejectionRate)
        );
        m.observe_window(&window(2, 4, 4, 40.0)); // 100% > breach ceiling
        assert_eq!(
            m.state(),
            HealthState::Unhealthy(HealthReason::RejectionRate)
        );
    }

    #[test]
    fn threshold_drift_vs_calibrated_baseline() {
        let mut m = HealthModel::new(SloRules::default());
        m.observe_window(&window(0, 2, 0, 10.0)); // calibrates baseline = 10
        m.observe_window(&window(1, 2, 0, 45.0)); // 3.5x drift > 3.0
        assert_eq!(
            m.state(),
            HealthState::Degraded(HealthReason::ThresholdDrift)
        );
        m.observe_window(&window(2, 2, 0, 600.0)); // 59x drift > 50
        assert_eq!(
            m.state(),
            HealthState::Unhealthy(HealthReason::ThresholdDrift)
        );
        // Back near baseline.
        let t = m.observe_window(&window(3, 2, 0, 11.0)).expect("recovers");
        assert_eq!(t.to, HealthState::Healthy);
        assert_eq!(m.transitions().len(), 3);
    }

    #[test]
    fn latency_budget_rule() {
        let mut m = HealthModel::new(SloRules::default());
        let mut w = window(0, 2, 0, 40.0);
        m.observe_window(&w);
        w.index = 1;
        w.p95_push_seconds = 0.020;
        m.observe_window(&w);
        assert_eq!(
            m.state(),
            HealthState::Degraded(HealthReason::LatencyBudget)
        );
        w.index = 2;
        w.p95_push_seconds = 0.200;
        m.observe_window(&w);
        assert_eq!(
            m.state(),
            HealthState::Unhealthy(HealthReason::LatencyBudget)
        );
    }

    #[test]
    fn reason_change_at_same_level_is_not_a_transition() {
        let mut m = HealthModel::new(SloRules::default());
        m.observe_window(&window(0, 4, 0, 10.0));
        m.observe_window(&window(1, 4, 3, 10.0)); // degraded: rejection
        assert_eq!(m.transitions().len(), 1);
        m.observe_window(&window(2, 4, 0, 45.0)); // degraded: drift
        assert_eq!(
            m.state(),
            HealthState::Degraded(HealthReason::ThresholdDrift)
        );
        assert_eq!(m.transitions().len(), 1, "same level, no new transition");
    }

    #[test]
    fn transition_log_is_bounded() {
        let mut m = HealthModel::new(SloRules::default());
        for i in 0..(MAX_TRANSITIONS as u64 + 50) {
            // Alternate healthy / degraded-by-rejection windows.
            let rejections = if i % 2 == 0 { 0 } else { 3 };
            m.observe_window(&window(i, 4, rejections, 10.0));
        }
        assert_eq!(m.transitions().len(), MAX_TRANSITIONS);
        assert!(m.dropped_transitions() > 0);
    }

    #[test]
    fn empty_window_is_ignored() {
        let mut m = HealthModel::new(SloRules::default());
        let mut w = window(0, 0, 0, 40.0);
        w.samples = 0;
        assert!(m.observe_window(&w).is_none());
        assert_eq!(m.baseline_threshold(), None);
    }
}
