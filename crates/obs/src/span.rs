//! RAII spans: monotonic wall-clock timing over [`std::time::Instant`],
//! recorded into a histogram when the span drops.

use crate::latency::LatencyHist;
use crate::metrics::Histogram;
use std::time::Instant;

/// A timed scope. Created by [`crate::span!`] or [`crate::span_with`];
/// when dropped, records the elapsed seconds into its histogram and —
/// when [`crate::tracing`] is on or the span was marked [`Span::traced`]
/// — prints `[obs] <name>: <elapsed>` to stderr.
///
/// A disabled span (recording off) holds no clock reading and its drop is
/// a branch on two `None`s.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span {
    start: Option<Instant>,
    histogram: Option<Histogram>,
    name: &'static str,
    /// Owned name for dynamically-labelled spans ([`crate::span_with`]).
    dyn_name: Option<String>,
    trace: bool,
    /// Whether this span's begin event made it into the bounded timeline
    /// log ([`crate::trace`]) — the end event is only emitted when it did,
    /// so the exported trace never contains an unmatched `E`.
    timeline: bool,
    /// Whether this span pushed a profiler frame ([`crate::profile`]) —
    /// the matching exit runs on drop only when it did, keeping the
    /// per-thread frame stack balanced across enable/disable toggles.
    profiled: bool,
    /// Companion nanosecond histogram ([`Span::with_latency`]): the same
    /// drop-time duration that feeds the seconds histogram is recorded
    /// here at full resolution, from one clock read.
    latency: Option<LatencyHist>,
}

impl Span {
    /// An inert span: no clock read, no recording, no print.
    pub fn disabled() -> Span {
        Span {
            start: None,
            histogram: None,
            name: "",
            dyn_name: None,
            trace: false,
            timeline: false,
            profiled: false,
            latency: None,
        }
    }

    /// Start a span recording into `histogram` under a static name.
    pub fn from_histogram(histogram: Histogram, name: &'static str) -> Span {
        if !crate::recording() {
            return Span::disabled();
        }
        let timeline = crate::trace::capturing() && crate::trace::begin(name);
        let profiled = crate::profile::enter_static(name);
        Span {
            start: Some(Instant::now()),
            histogram: Some(histogram),
            name,
            dyn_name: None,
            trace: false,
            timeline,
            profiled,
            latency: None,
        }
    }

    /// Start a span with an owned (runtime-built) display name.
    pub fn from_histogram_named(histogram: Histogram, name: String) -> Span {
        if !crate::recording() {
            return Span::disabled();
        }
        let timeline = crate::trace::capturing() && crate::trace::begin(&name);
        let profiled = crate::profile::enter_owned(&name);
        Span {
            start: Some(Instant::now()),
            histogram: Some(histogram),
            name: "",
            dyn_name: Some(name),
            trace: false,
            timeline,
            profiled,
            latency: None,
        }
    }

    /// Force this span to print its elapsed time on completion even when
    /// global tracing is off — how the repro runner surfaces
    /// per-experiment wall time on stderr from the same measurement that
    /// feeds the JSON report.
    pub fn traced(mut self) -> Span {
        self.trace = true;
        self
    }

    /// Attach a nanosecond histogram: on drop the span's duration is also
    /// recorded into `hist` via [`LatencyHist::record`], truncated from
    /// the same single clock read that feeds the seconds histogram.
    /// Disabled spans ignore the attachment (no clock was read).
    ///
    /// ```
    /// let _span = airfinger_obs::span!("demo_push_seconds")
    ///     .with_latency(airfinger_obs::latency!("demo_push_ns"));
    /// ```
    pub fn with_latency(mut self, hist: LatencyHist) -> Span {
        if self.start.is_some() {
            self.latency = Some(hist);
        }
        self
    }

    /// Elapsed seconds so far (0 for a disabled span).
    #[must_use]
    pub fn elapsed_s(&self) -> f64 {
        self.start.map_or(0.0, |t0| t0.elapsed().as_secs_f64())
    }

    fn display_name(&self) -> &str {
        self.dyn_name.as_deref().unwrap_or(self.name)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let duration = start.elapsed();
        let elapsed = duration.as_secs_f64();
        if let Some(histogram) = &self.histogram {
            histogram.observe(elapsed);
        }
        if let Some(latency) = &self.latency {
            latency.record(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
        }
        if self.timeline {
            crate::trace::end(self.display_name());
        }
        if self.trace || crate::tracing() {
            eprintln!("[obs] {}: {}", self.display_name(), format_seconds(elapsed));
        }
        if self.profiled {
            crate::profile::exit(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
        }
    }
}

/// Render a duration with a unit fitting its magnitude.
#[must_use]
pub fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "obs")]
    #[test]
    fn span_records_on_drop() {
        let h = Histogram::new(vec![10.0]);
        {
            let span = Span::from_histogram(h.clone(), "test_span");
            assert!(span.elapsed_s() >= 0.0);
        }
        assert_eq!(h.count(), 1);
        assert_eq!(h.bucket_counts(), vec![1, 0]);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn traced_span_still_records() {
        let h = Histogram::new(vec![10.0]);
        {
            let _span = Span::from_histogram_named(h.clone(), "dyn".to_string()).traced();
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn disabled_span_is_inert() {
        let span = Span::disabled();
        assert_eq!(span.elapsed_s(), 0.0);
        drop(span); // must not record or print
    }

    #[cfg(feature = "obs")]
    #[test]
    fn with_latency_records_nanoseconds_on_drop() {
        let h = Histogram::new(vec![10.0]);
        let ns = LatencyHist::new();
        {
            let _span = Span::from_histogram(h.clone(), "latency_span").with_latency(ns.clone());
        }
        assert_eq!(h.count(), 1);
        assert_eq!(ns.count(), 1);
        assert!(ns.max_ns() > 0, "a live span takes nonzero nanoseconds");
    }

    #[test]
    fn disabled_span_ignores_latency_attachment() {
        let ns = LatencyHist::new();
        drop(Span::disabled().with_latency(ns.clone()));
        assert_eq!(ns.count(), 0);
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(format_seconds(2.5), "2.50s");
        assert_eq!(format_seconds(0.0042), "4.20ms");
        assert_eq!(format_seconds(12e-6), "12.0µs");
    }
}
