//! Span timeline capture: a bounded in-memory log of span begin/end
//! events, exported as Chrome `trace_event` JSON (the format Perfetto and
//! `chrome://tracing` load directly).
//!
//! Capture is off by default; [`set_capture`] turns it on (the `repro`
//! and `airfinger` binaries do this for `--trace-out PATH`). While on,
//! every [`crate::Span`] records a `B` (begin) event at creation and a
//! matching `E` (end) event when it drops, stamped with microseconds
//! since the capture epoch and a small per-thread id. Spans are strictly
//! scoped RAII values, so the per-thread event streams nest properly —
//! exactly what the `trace_event` duration-event model requires.
//!
//! The log is **bounded** ([`MAX_EVENTS`]): once full, new begin events
//! are dropped (and counted) rather than growing without limit; end
//! events whose begin was recorded are always admitted so no pair is ever
//! left dangling. A dropped span simply does not appear in the timeline.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Capacity of the event log (begin + end events). 2^18 events is about
/// two minutes of the pipeline's densest span traffic and ~20 MB of JSON
/// — enough for any repro run, small enough to never threaten memory.
pub const MAX_EVENTS: usize = 1 << 18;

/// One begin or end marker in the timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span display name (metric name plus static labels).
    pub name: String,
    /// `true` for a begin (`"B"`) event, `false` for an end (`"E"`).
    pub begin: bool,
    /// Microseconds since the capture epoch.
    pub ts_us: u64,
    /// Small dense per-thread id (1-based, assigned at first event).
    pub tid: u64,
}

#[derive(Debug, Default)]
struct EventLog {
    events: Vec<TraceEvent>,
    dropped: u64,
}

static CAPTURE: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

fn log() -> &'static Mutex<EventLog> {
    static LOG: OnceLock<Mutex<EventLog>> = OnceLock::new();
    LOG.get_or_init(Mutex::default)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn thread_id() -> u64 {
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Whether span timeline capture is on.
#[inline]
#[must_use]
pub fn capturing() -> bool {
    cfg!(feature = "obs") && CAPTURE.load(Ordering::Relaxed)
}

/// Turn span timeline capture on or off. Turning it on pins the capture
/// epoch (timestamps are microseconds since the first enable).
pub fn set_capture(on: bool) {
    if on {
        let _ = epoch();
    }
    CAPTURE.store(on, Ordering::Relaxed);
}

/// Discard all captured events and the dropped-event count.
pub fn clear() {
    let mut log = lock();
    log.events.clear();
    log.dropped = 0;
}

fn lock() -> std::sync::MutexGuard<'static, EventLog> {
    log().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Record a begin event; returns whether it was admitted (the caller must
/// only emit the matching [`end`] when it was, so pairs stay matched even
/// when the bounded log fills mid-run).
#[must_use]
pub(crate) fn begin(name: &str) -> bool {
    let ts_us = epoch().elapsed().as_micros() as u64;
    let tid = thread_id();
    let mut log = lock();
    if log.events.len() >= MAX_EVENTS {
        log.dropped += 1;
        return false;
    }
    log.events.push(TraceEvent {
        name: name.to_string(),
        begin: true,
        ts_us,
        tid,
    });
    true
}

/// Record the end event matching an admitted [`begin`]. Always admitted —
/// the overshoot past [`MAX_EVENTS`] is bounded by the number of spans
/// live at the moment the log filled.
pub(crate) fn end(name: &str) {
    let ts_us = epoch().elapsed().as_micros() as u64;
    let tid = thread_id();
    let mut log = lock();
    log.events.push(TraceEvent {
        name: name.to_string(),
        begin: false,
        ts_us,
        tid,
    });
}

/// Number of events dropped because the log was full.
#[must_use]
pub fn dropped() -> u64 {
    lock().dropped
}

/// A copy of the captured events, in record order.
#[must_use]
pub fn events() -> Vec<TraceEvent> {
    lock().events.clone()
}

/// Render the captured timeline as Chrome `trace_event` JSON (the
/// "JSON Object Format": a `traceEvents` array of `B`/`E` duration
/// events), loadable in Perfetto or `chrome://tracing`.
#[must_use]
pub fn chrome_trace_json() -> String {
    let log = lock();
    let mut out = String::from("{\n\"displayTimeUnit\": \"ms\",\n");
    let _ = writeln!(out, "\"droppedEvents\": {},", log.dropped);
    out.push_str("\"traceEvents\": [");
    for (i, e) in log.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  {{\"name\": {}, \"cat\": \"obs\", \"ph\": \"{}\", \"ts\": {}, \"pid\": 1, \"tid\": {}}}",
            crate::export::json_string(&e.name),
            if e.begin { 'B' } else { 'E' },
            e.ts_us,
            e.tid
        );
    }
    out.push_str("\n]\n}\n");
    out
}

/// Write [`chrome_trace_json`] to `path`.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_chrome_trace(path: &str) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    // The capture switch and log are process-global, so these unit tests
    // only exercise the pure pieces; end-to-end capture (spans on, across
    // threads, JSON validation) lives in the `trace_timeline` integration
    // test where the process is not shared with other obs tests.

    #[test]
    fn capture_defaults_off() {
        assert!(!capturing());
    }

    #[test]
    fn empty_log_renders_valid_json() {
        let json = chrome_trace_json();
        let v: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let obj = v.as_object().unwrap();
        assert!(obj.get("traceEvents").is_some());
    }

    #[test]
    fn thread_ids_are_stable_within_a_thread() {
        assert_eq!(thread_id(), thread_id());
        let other = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(thread_id(), other);
    }
}
