//! The metric registry: name+labels → handle, plus point-in-time
//! snapshots.
//!
//! Registration takes one mutex; the returned handles record through
//! relaxed atomics without ever re-entering the lock, which is what makes
//! the layer cheap enough for the 100 Hz streaming path. [`Registry::reset`]
//! zeroes values **in place**, so handles cached in `OnceLock` statics by
//! the [`crate::counter!`]-family macros stay valid across resets.

use crate::metrics::{Counter, Gauge, Histogram};
use crate::quantile::PercentileSnapshot;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Mutex, OnceLock, PoisonError};

/// A metric's identity: name plus sorted `(key, value)` labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId {
    /// Metric name, e.g. `pipeline_stage_seconds`.
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    /// Build an id (labels are sorted by key).
    #[must_use]
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        labels.sort();
        MetricId {
            name: name.to_string(),
            labels,
        }
    }
}

impl fmt::Display for MetricId {
    /// `name{k="v",…}` — the Prometheus sample identity.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)?;
        if self.labels.is_empty() {
            return Ok(());
        }
        f.write_str("{")?;
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{k}={v:?}")?;
        }
        f.write_str("}")
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Registered {
    metric: Metric,
    help: String,
}

/// A collection of named metrics.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<MetricId, Registered>>,
}

/// The process-wide registry used by all instrumentation macros.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

impl Registry {
    /// Create a standalone registry (tests; instrumentation uses
    /// [`global`]).
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<MetricId, Registered>> {
        self.metrics.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The one deliberate panic in the registry: registering a name+labels
    /// under a second metric kind is a programming error, not a runtime
    /// condition, and every accessor funnels through here so the panic
    /// ratchet stays at a single budgeted site.
    fn kind_conflict(id: &MetricId, other: &Metric) -> ! {
        panic!("{id} already registered as a {}", other.kind())
    }

    /// Register (or fetch) a counter.
    ///
    /// # Panics
    ///
    /// Panics if the same name+labels is already registered as a
    /// different metric kind — conflicting registrations are programming
    /// errors, not runtime conditions.
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        let id = MetricId::new(name, labels);
        let mut map = self.lock();
        let entry = map.entry(id.clone()).or_insert_with(|| Registered {
            metric: Metric::Counter(Counter::new()),
            help: help.to_string(),
        });
        match &entry.metric {
            Metric::Counter(c) => c.clone(),
            other => Self::kind_conflict(&id, other),
        }
    }

    /// Register (or fetch) a gauge.
    ///
    /// # Panics
    ///
    /// Panics on a metric-kind conflict (see [`Registry::counter`]).
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        let id = MetricId::new(name, labels);
        let mut map = self.lock();
        let entry = map.entry(id.clone()).or_insert_with(|| Registered {
            metric: Metric::Gauge(Gauge::new()),
            help: help.to_string(),
        });
        match &entry.metric {
            Metric::Gauge(g) => g.clone(),
            other => Self::kind_conflict(&id, other),
        }
    }

    /// Register (or fetch) a histogram. `edges` only applies on first
    /// registration; later fetches reuse the existing bucket layout.
    ///
    /// # Panics
    ///
    /// Panics on a metric-kind conflict or malformed `edges` (see
    /// [`Histogram::new`]).
    #[must_use]
    pub fn histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        edges: Vec<f64>,
        help: &str,
    ) -> Histogram {
        let id = MetricId::new(name, labels);
        let mut map = self.lock();
        let entry = map.entry(id.clone()).or_insert_with(|| Registered {
            metric: Metric::Histogram(Histogram::new(edges)),
            help: help.to_string(),
        });
        match &entry.metric {
            Metric::Histogram(h) => h.clone(),
            other => Self::kind_conflict(&id, other),
        }
    }

    /// Zero every registered metric **in place**. Registrations (and any
    /// handles held by call sites) stay valid.
    pub fn reset(&self) {
        for registered in self.lock().values() {
            match &registered.metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }

    /// A point-in-time copy of every metric, sorted by identity.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let map = self.lock();
        let mut snapshot = Snapshot::default();
        for (id, registered) in map.iter() {
            match &registered.metric {
                Metric::Counter(c) => snapshot.counters.push(CounterSnapshot {
                    id: id.clone(),
                    help: registered.help.clone(),
                    value: c.value(),
                }),
                Metric::Gauge(g) => snapshot.gauges.push(GaugeSnapshot {
                    id: id.clone(),
                    help: registered.help.clone(),
                    value: g.value(),
                }),
                Metric::Histogram(h) => {
                    let edges = h.edges().to_vec();
                    let mut cumulative = Vec::with_capacity(edges.len() + 1);
                    let mut running = 0u64;
                    for count in h.bucket_counts() {
                        running += count;
                        cumulative.push(running);
                    }
                    snapshot.histograms.push(HistogramSnapshot {
                        id: id.clone(),
                        help: registered.help.clone(),
                        count: h.count(),
                        sum: h.sum(),
                        edges,
                        cumulative,
                        percentiles: h.percentiles(),
                    });
                }
            }
        }
        snapshot
    }
}

/// Frozen value of one counter.
#[derive(Debug, Clone)]
pub struct CounterSnapshot {
    /// Metric identity.
    pub id: MetricId,
    /// Help text (may be empty).
    pub help: String,
    /// Count at snapshot time.
    pub value: u64,
}

/// Frozen value of one gauge.
#[derive(Debug, Clone)]
pub struct GaugeSnapshot {
    /// Metric identity.
    pub id: MetricId,
    /// Help text (may be empty).
    pub help: String,
    /// Value at snapshot time.
    pub value: f64,
}

/// Frozen state of one histogram.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Metric identity.
    pub id: MetricId,
    /// Help text (may be empty).
    pub help: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Finite bucket upper bounds (`+Inf` implicit as the last bucket).
    pub edges: Vec<f64>,
    /// Cumulative bucket counts, `edges.len() + 1` entries (Prometheus
    /// `le` semantics; the last entry equals [`HistogramSnapshot::count`]).
    pub cumulative: Vec<u64>,
    /// Streaming p50/p95/p99 estimates (all `NaN` when `count == 0`;
    /// exporters render empty percentiles as `null`, never `NaN`).
    pub percentiles: PercentileSnapshot,
}

impl HistogramSnapshot {
    /// Mean observation, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A point-in-time copy of a whole registry, ready for export.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// All counters, sorted by identity.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by identity.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by identity.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Value of the counter with this name+labels, if registered.
    #[must_use]
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let id = MetricId::new(name, labels);
        self.counters.iter().find(|c| c.id == id).map(|c| c.value)
    }

    /// Value of the gauge with this name+labels, if registered.
    #[must_use]
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let id = MetricId::new(name, labels);
        self.gauges.iter().find(|g| g.id == id).map(|g| g.value)
    }

    /// The histogram with this name+labels, if registered.
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        let id = MetricId::new(name, labels);
        self.histograms.iter().find(|h| h.id == id)
    }

    /// All counters as a `identity → value` map (the shape the
    /// determinism tests compare across thread counts).
    #[must_use]
    pub fn counter_map(&self) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .map(|c| (c.id.to_string(), c.value))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_sort_labels_and_render() {
        let id = MetricId::new("m", &[("b", "2"), ("a", "1")]);
        assert_eq!(id.labels[0].0, "a");
        assert_eq!(id.to_string(), r#"m{a="1",b="2"}"#);
        assert_eq!(MetricId::new("m", &[]).to_string(), "m");
    }

    #[test]
    fn same_id_returns_same_metric() {
        let r = Registry::new();
        let a = r.counter("hits", &[("route", "/x")], "");
        let b = r.counter("hits", &[("route", "/x")], "first help wins");
        a.add(2);
        assert_eq!(a.value(), b.value());
        // A different label set is a different metric.
        let c = r.counter("hits", &[("route", "/y")], "");
        assert_eq!(c.value(), 0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        let _ = r.counter("m", &[], "");
        let _ = r.gauge("m", &[], "");
    }

    #[cfg(feature = "obs")]
    #[test]
    fn snapshot_freezes_values_sorted() {
        let r = Registry::new();
        r.counter("z_last", &[], "").inc();
        r.counter("a_first", &[], "").add(3);
        r.gauge("depth", &[], "").set(2.0);
        let h = r.histogram("lat", &[], vec![1.0, 2.0], "");
        h.observe(0.5);
        h.observe(1.5);
        h.observe(9.0);
        let snap = r.snapshot();
        assert_eq!(snap.counters[0].id.name, "a_first");
        assert_eq!(snap.counter_value("z_last", &[]), Some(1));
        assert_eq!(snap.gauge_value("depth", &[]), Some(2.0));
        let hs = snap.histogram("lat", &[]).unwrap();
        assert_eq!(hs.cumulative, vec![1, 2, 3]);
        assert_eq!(hs.count, 3);
        assert!((hs.mean() - (0.5 + 1.5 + 9.0) / 3.0).abs() < 1e-12);
        // With fewer than five observations the P² estimator is exact.
        assert!((hs.percentiles.p50 - 1.5).abs() < 1e-12);
        assert_eq!(
            snap.counter_map(),
            BTreeMap::from([("a_first".to_string(), 3), ("z_last".to_string(), 1)])
        );
    }

    #[cfg(feature = "obs")]
    #[test]
    fn reset_zeroes_in_place() {
        let r = Registry::new();
        let c = r.counter("n", &[], "");
        let h = r.histogram("h", &[], vec![1.0], "");
        c.add(7);
        h.observe(0.5);
        r.reset();
        // The *same handles* read zero — registrations survive.
        assert_eq!(c.value(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(r.snapshot().counter_value("n", &[]), Some(0));
    }
}
