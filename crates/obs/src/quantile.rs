//! Streaming quantile estimation: the P² algorithm of Jain & Chlamtac
//! (CACM 1985).
//!
//! A [`P2`] estimator tracks one quantile of an unbounded observation
//! stream in O(1) memory (five markers) and O(1) time per observation —
//! no sample buffer, no sorting. Every histogram in this crate carries a
//! [`Percentiles`] set (p50/p95/p99) fed from the same `observe` call
//! that updates the buckets, which is how run reports surface tail
//! latency without storing raw samples.
//!
//! # Accuracy
//!
//! P² is an approximation: the markers follow a piecewise-parabolic model
//! of the empirical CDF. On smooth unimodal distributions the estimate
//! lands within ~1 % of the exact quantile after a few hundred
//! observations; on hard cases the tested tolerance is 10 % of the exact
//! value plus a small absolute floor (25 % for the p99 of an
//! infinite-variance heavy tail, where the parabolic model is weakest) —
//! see the unit tests, which pin uniform, bimodal and heavy-tail
//! distributions against exact order statistics.
//!
//! Estimates depend on observation *order* (like any streaming summary),
//! so percentiles are scheduling observations in the same sense as
//! latency histograms: the workspace determinism suite pins counters, not
//! quantiles, across thread counts.

/// Streaming estimator for a single quantile `p` in `(0, 1)`.
#[derive(Debug, Clone)]
pub struct P2 {
    p: f64,
    /// Marker heights; during warm-up (`count < 5`) the first `count`
    /// entries hold the raw observations instead.
    q: [f64; 5],
    /// Actual marker positions (1-based observation ranks).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    count: u64,
}

impl P2 {
    /// Create an estimator for quantile `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1` — estimating the min/max needs no
    /// marker machinery, and a quantile outside the unit interval is a
    /// programming error.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1), got {p}");
        P2 {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            count: 0,
        }
    }

    /// The quantile this estimator tracks.
    #[must_use]
    pub fn quantile(&self) -> f64 {
        self.p
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feed one observation. `NaN` is dropped (callers observing into a
    /// histogram have already filtered it, but a detached estimator must
    /// not poison its markers).
    pub fn observe(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        if self.count < 5 {
            self.q[self.count as usize] = x;
            self.count += 1;
            if self.count == 5 {
                self.q.sort_by(f64::total_cmp);
            }
            return;
        }
        self.count += 1;
        // Find the marker cell containing x, extending the extremes.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            // q[0] <= x < q[4]: the last marker with q[k] <= x.
            let mut k = 0;
            for i in 1..4 {
                if x >= self.q[i] {
                    k = i;
                }
            }
            k
        };
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        let dn = [0.0, self.p / 2.0, self.p, (1.0 + self.p) / 2.0, 1.0];
        for (np, d) in self.np.iter_mut().zip(dn) {
            *np += d;
        }
        // Adjust the three interior markers toward their desired
        // positions, preferring the piecewise-parabolic (P²) height
        // update and falling back to linear when it would break marker
        // monotonicity.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            let room_up = self.n[i + 1] - self.n[i] > 1.0;
            let room_down = self.n[i - 1] - self.n[i] < -1.0;
            if (d >= 1.0 && room_up) || (d <= -1.0 && room_down) {
                let d = d.signum();
                let parabolic = self.parabolic(i, d);
                let new_q = if self.q[i - 1] < parabolic && parabolic < self.q[i + 1] {
                    parabolic
                } else {
                    self.linear(i, d)
                };
                self.q[i] = new_q;
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.q;
        let n = &self.n;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current estimate, or `NaN` before any observation. During warm-up
    /// (< 5 observations) the estimate is the exact quantile of the
    /// stored sample by linear interpolation.
    #[must_use]
    pub fn estimate(&self) -> f64 {
        match self.count {
            0 => f64::NAN,
            c if c < 5 => {
                let mut sample = self.q[..c as usize].to_vec();
                sample.sort_by(f64::total_cmp);
                exact_quantile(&sample, self.p)
            }
            _ => self.q[2],
        }
    }

    /// Forget everything (see [`crate::Registry::reset`]).
    pub fn reset(&mut self) {
        *self = P2::new(self.p);
    }
}

/// Exact quantile of an already-**sorted** slice by linear interpolation
/// between closest ranks; `NaN` on an empty slice. This is the reference
/// the P² tests compare against, and the warm-up fallback.
#[must_use]
pub fn exact_quantile(sorted: &[f64], p: f64) -> f64 {
    match sorted.len() {
        0 => f64::NAN,
        1 => sorted[0],
        n => {
            let rank = p * (n - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            sorted[lo] + (sorted[hi] - sorted[lo]) * frac
        }
    }
}

/// The fixed percentile set every histogram carries: p50, p95, p99.
#[derive(Debug, Clone)]
pub struct Percentiles {
    p50: P2,
    p95: P2,
    p99: P2,
}

/// Frozen estimates of one [`Percentiles`] set. All three are `NaN` when
/// the histogram has no observations; exporters render that as `null`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PercentileSnapshot {
    /// Median estimate.
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

impl PercentileSnapshot {
    /// A snapshot with no observations behind it.
    #[must_use]
    pub fn empty() -> Self {
        PercentileSnapshot {
            p50: f64::NAN,
            p95: f64::NAN,
            p99: f64::NAN,
        }
    }

    /// The `(label, value)` pairs in export order.
    #[must_use]
    pub fn entries(&self) -> [(&'static str, f64); 3] {
        [("p50", self.p50), ("p95", self.p95), ("p99", self.p99)]
    }
}

impl Default for Percentiles {
    fn default() -> Self {
        Percentiles::new()
    }
}

impl Percentiles {
    /// Create the p50/p95/p99 set.
    #[must_use]
    pub fn new() -> Self {
        Percentiles {
            p50: P2::new(0.50),
            p95: P2::new(0.95),
            p99: P2::new(0.99),
        }
    }

    /// Feed one observation to all three estimators.
    pub fn observe(&mut self, x: f64) {
        self.p50.observe(x);
        self.p95.observe(x);
        self.p99.observe(x);
    }

    /// Freeze the current estimates.
    #[must_use]
    pub fn snapshot(&self) -> PercentileSnapshot {
        PercentileSnapshot {
            p50: self.p50.estimate(),
            p95: self.p95.estimate(),
            p99: self.p99.estimate(),
        }
    }

    /// Forget everything.
    pub fn reset(&mut self) {
        self.p50.reset();
        self.p95.reset();
        self.p99.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* stream in [0, 1).
    struct Rng(u64);

    impl Rng {
        fn next_f64(&mut self) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            (self.0.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Assert the P² estimate of `p` over `data` lands within `rel` of
    /// the exact quantile (plus a small absolute floor for near-zero
    /// quantiles). The documented tolerance is 10 % on uniform/bimodal
    /// streams and 25 % for the extreme tail (p99) of heavy-tailed
    /// distributions, where the parabolic CDF model is weakest.
    fn assert_close_rel(data: &[f64], p: f64, rel: f64) {
        let mut est = P2::new(p);
        for &x in data {
            est.observe(x);
        }
        let mut sorted = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        let exact = exact_quantile(&sorted, p);
        let tol = rel * exact.abs() + 0.02;
        let got = est.estimate();
        assert!(
            (got - exact).abs() <= tol,
            "p{}: estimate {got} vs exact {exact} (tol {tol})",
            p * 100.0
        );
    }

    fn assert_close(data: &[f64], p: f64) {
        assert_close_rel(data, p, 0.10);
    }

    #[test]
    fn uniform_distribution_quantiles() {
        let mut rng = Rng(0xDEAD_BEEF);
        let data: Vec<f64> = (0..4000).map(|_| rng.next_f64() * 10.0).collect();
        for p in [0.5, 0.95, 0.99] {
            assert_close(&data, p);
        }
    }

    #[test]
    fn bimodal_distribution_quantiles() {
        // Two well-separated uniform modes, 70/30 mixture: the p50 sits
        // inside the low mode, the p95/p99 inside the high one.
        let mut rng = Rng(42);
        let data: Vec<f64> = (0..6000)
            .map(|_| {
                if rng.next_f64() < 0.7 {
                    rng.next_f64()
                } else {
                    100.0 + rng.next_f64()
                }
            })
            .collect();
        for p in [0.5, 0.95, 0.99] {
            assert_close(&data, p);
        }
    }

    #[test]
    fn heavy_tail_distribution_quantiles() {
        // Pareto-like: x = (1-u)^(-1/alpha), alpha = 1.5 — infinite
        // variance, the p99 is far above the p50.
        let mut rng = Rng(7);
        let data: Vec<f64> = (0..8000)
            .map(|_| (1.0 - rng.next_f64()).powf(-1.0 / 1.5))
            .collect();
        assert_close(&data, 0.5);
        assert_close(&data, 0.95);
        // The p99 of an infinite-variance tail is the hardest case for
        // the five-marker model; the contract there is 25 %.
        assert_close_rel(&data, 0.99, 0.25);
    }

    #[test]
    fn warmup_is_exact() {
        let mut est = P2::new(0.5);
        assert!(est.estimate().is_nan());
        est.observe(3.0);
        assert_eq!(est.estimate(), 3.0);
        est.observe(1.0);
        est.observe(2.0);
        // Exact median of {1, 2, 3}.
        assert_eq!(est.estimate(), 2.0);
    }

    #[test]
    fn constant_stream_is_exact() {
        let mut est = P2::new(0.95);
        for _ in 0..1000 {
            est.observe(4.25);
        }
        assert_eq!(est.estimate(), 4.25);
    }

    #[test]
    fn sorted_and_reversed_streams_agree_with_exact() {
        let asc: Vec<f64> = (0..2000).map(f64::from).collect();
        let desc: Vec<f64> = asc.iter().rev().copied().collect();
        assert_close(&asc, 0.5);
        assert_close(&desc, 0.5);
        assert_close(&asc, 0.99);
        assert_close(&desc, 0.99);
    }

    #[test]
    fn nan_observations_are_dropped() {
        let mut est = P2::new(0.5);
        for i in 0..100 {
            est.observe(f64::from(i));
            est.observe(f64::NAN);
        }
        assert_eq!(est.count(), 100);
        assert!(est.estimate().is_finite());
    }

    #[test]
    fn reset_forgets() {
        let mut est = P2::new(0.5);
        for i in 0..50 {
            est.observe(f64::from(i));
        }
        est.reset();
        assert_eq!(est.count(), 0);
        assert!(est.estimate().is_nan());
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0, 1)")]
    fn rejects_out_of_range_quantile() {
        let _ = P2::new(1.0);
    }

    #[test]
    fn percentile_set_orders() {
        let mut set = Percentiles::new();
        let mut rng = Rng(99);
        for _ in 0..3000 {
            set.observe(rng.next_f64());
        }
        let snap = set.snapshot();
        assert!(snap.p50 < snap.p95 && snap.p95 < snap.p99, "{snap:?}");
        assert_eq!(snap.entries()[0].0, "p50");
    }

    #[test]
    fn empty_percentiles_are_nan() {
        let snap = Percentiles::new().snapshot();
        assert!(snap.p50.is_nan() && snap.p95.is_nan() && snap.p99.is_nan());
        let empty = PercentileSnapshot::empty();
        assert!(empty.p50.is_nan() && empty.p95.is_nan() && empty.p99.is_nan());
    }

    #[test]
    fn exact_quantile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(exact_quantile(&data, 0.5), 2.5);
        assert!(exact_quantile(&[], 0.5).is_nan());
        assert_eq!(exact_quantile(&[7.0], 0.99), 7.0);
    }
}
