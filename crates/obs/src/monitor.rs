//! Continuous engine monitoring: windows + health + flight recorder,
//! composed behind one per-push entry point.
//!
//! [`EngineMonitor`] is the piece the streaming engine attaches: every
//! push feeds the [`SlidingWindow`], every closed window is scored by the
//! [`HealthModel`], and the [`FlightRecorder`] continuously taps the raw
//! stream. A transition **into** `Unhealthy` produces exactly one
//! post-mortem [`Dump`] per unhealthy episode — the trigger re-arms only
//! after the engine recovers to `Healthy`, so a breach that oscillates
//! between `Unhealthy` and `Degraded` cannot flood the dump store.
//!
//! Closed windows publish to the global registry under the §9 schema:
//! `engine_windows_closed_total`, the `engine_window_*` gauges,
//! `health_state` (severity ordinal 0/1/2),
//! `health_transitions_total{to}`, and `recorder_dumps_total`. All the
//! counters are deterministic sample-count functions of the input stream;
//! only the latency-valued gauges are scheduling observations.

use crate::health::{HealthModel, HealthState, SloRules, Transition};
use crate::recorder::{Dump, FlightRecorder, RecorderConfig};
use crate::window::{Outcome, SlidingWindow, WindowConfig, WindowStats};

/// Configuration for [`EngineMonitor`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MonitorConfig {
    /// Sliding-window horizon.
    pub window: WindowConfig,
    /// SLO rule ceilings.
    pub rules: SloRules,
    /// Flight-recorder ring capacity.
    pub recorder: RecorderConfig,
}

/// Live health monitor for one streaming engine.
#[derive(Debug)]
pub struct EngineMonitor {
    window: SlidingWindow,
    health: HealthModel,
    recorder: FlightRecorder,
    dumps: Vec<Dump>,
    dump_sequence: u64,
    dump_armed: bool,
    samples_seen: u64,
    windows_closed: u64,
}

impl EngineMonitor {
    /// Build a monitor from its configuration.
    #[must_use]
    pub fn new(config: MonitorConfig) -> Self {
        EngineMonitor {
            window: SlidingWindow::new(config.window),
            health: HealthModel::new(config.rules),
            recorder: FlightRecorder::new(config.recorder),
            dumps: Vec::new(),
            dump_sequence: 0,
            dump_armed: true,
            samples_seen: 0,
            windows_closed: 0,
        }
    }

    /// Preset the Otsu-threshold drift baseline (otherwise calibrated
    /// from the first closed window).
    #[must_use]
    pub fn with_baseline_threshold(mut self, baseline: f64) -> Self {
        self.health = HealthModel::new(*self.health.rules()).with_baseline_threshold(baseline);
        self
    }

    /// Observe one pushed sample. Returns the window statistics when this
    /// push closed a monitoring window.
    pub fn observe_push(
        &mut self,
        channels: &[f64],
        push_seconds: f64,
        mean_threshold: f64,
        outcome: Outcome,
    ) -> Option<WindowStats> {
        let event = if outcome.closed_segment() {
            Some(outcome.tag())
        } else {
            None
        };
        self.recorder
            .record(self.samples_seen, channels, push_seconds, event);
        self.samples_seen += 1;
        let closed = self.window.observe(push_seconds, mean_threshold, outcome)?;
        self.publish_window(&closed);
        if let Some(transition) = self.health.observe_window(&closed) {
            self.publish_transition(transition, &closed);
        }
        crate::gauge!("health_state").set(f64::from(self.health.state().level()));
        self.record_point(&closed);
        Some(closed)
    }

    /// Close the trailing partial window at end of stream. Partial
    /// windows publish their statistics but are **not** scored by the
    /// health model — a short tail with no segments is not a stall.
    pub fn finish(&mut self) -> Option<WindowStats> {
        let closed = self.window.flush()?;
        self.publish_window(&closed);
        self.record_point(&closed);
        Some(closed)
    }

    /// Current health verdict.
    #[must_use]
    pub fn health(&self) -> HealthState {
        self.health.state()
    }

    /// The health model's recorded level transitions, oldest first.
    #[must_use]
    pub fn transitions(&self) -> &[Transition] {
        self.health.transitions()
    }

    /// The most recently closed window.
    #[must_use]
    pub fn last_window(&self) -> Option<&WindowStats> {
        self.window.last()
    }

    /// Samples observed so far.
    #[must_use]
    pub fn samples_seen(&self) -> u64 {
        self.samples_seen
    }

    /// Windows closed so far (including a final partial window).
    #[must_use]
    pub fn windows_closed(&self) -> u64 {
        self.windows_closed
    }

    /// Flight-recorder dumps produced so far (cumulative, including any
    /// already taken via [`EngineMonitor::take_dumps`]).
    #[must_use]
    pub fn dump_count(&self) -> u64 {
        self.dump_sequence
    }

    /// Pending dumps (produced but not yet taken).
    #[must_use]
    pub fn dumps(&self) -> &[Dump] {
        &self.dumps
    }

    /// Drain the pending dumps so the caller can write them out.
    pub fn take_dumps(&mut self) -> Vec<Dump> {
        std::mem::take(&mut self.dumps)
    }

    fn publish_window(&mut self, w: &WindowStats) {
        self.windows_closed += 1;
        crate::counter!("engine_windows_closed_total").inc();
        crate::gauge!("engine_window_samples").set(w.samples as f64);
        crate::gauge!("engine_window_recognitions").set(w.recognitions as f64);
        crate::gauge!("engine_window_rejections").set(w.rejections as f64);
        crate::gauge!("engine_window_segments").set(w.segments as f64);
        crate::gauge!("engine_window_rejection_ratio").set(w.rejection_ratio());
        crate::gauge!("engine_window_push_p95_ms").set(w.p95_push_seconds * 1000.0);
    }

    /// Append one point to the bounded history ring ([`crate::timeseries`])
    /// — the `/health` scrape endpoint's trend data. One point per closed
    /// window, so the cadence (and thus the retained history) is a
    /// deterministic function of the sample stream.
    fn record_point(&self, w: &WindowStats) {
        crate::timeseries::record(&[
            ("window_samples", w.samples as f64),
            ("window_segments", w.segments as f64),
            ("window_recognitions", w.recognitions as f64),
            ("window_rejections", w.rejections as f64),
            ("rejection_ratio", w.rejection_ratio()),
            ("push_p95_ms", w.p95_push_seconds * 1000.0),
            ("health_level", f64::from(self.health.state().level())),
        ]);
    }

    fn publish_transition(&mut self, transition: Transition, window: &WindowStats) {
        crate::counter_with("health_transitions_total", &[("to", transition.to.tag())]).inc();
        match transition.to {
            HealthState::Unhealthy(reason) => {
                if self.dump_armed {
                    let dump = self.recorder.dump(
                        self.dump_sequence,
                        transition.to.tag(),
                        reason.tag(),
                        window,
                        self.health.transitions(),
                    );
                    self.dump_sequence += 1;
                    self.dump_armed = false;
                    crate::counter!("recorder_dumps_total").inc();
                    self.dumps.push(dump);
                }
            }
            HealthState::Healthy => self.dump_armed = true,
            HealthState::Degraded(_) => {}
        }
    }
}

/// Convenience: a monitor with a custom horizon and otherwise default
/// rules and recorder sizing.
#[must_use]
pub fn with_horizon(horizon: usize) -> EngineMonitor {
    EngineMonitor::new(MonitorConfig {
        window: WindowConfig { horizon },
        rules: SloRules::default(),
        recorder: RecorderConfig::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(horizon: usize) -> MonitorConfig {
        MonitorConfig {
            window: WindowConfig { horizon },
            rules: SloRules::default(),
            recorder: RecorderConfig { capacity: 32 },
        }
    }

    /// Push `n` quiet samples; a detect closes the last sample of each
    /// window when `active` is set.
    fn feed(m: &mut EngineMonitor, windows: usize, horizon: usize, active: bool) {
        for _ in 0..windows {
            for i in 0..horizon {
                let outcome = if active && i == horizon - 1 {
                    Outcome::Detect
                } else {
                    Outcome::Quiet
                };
                m.observe_push(&[200.0, 210.0, 190.0], 1e-6, 25.0, outcome);
            }
        }
    }

    #[test]
    fn healthy_session_produces_no_dumps() {
        let mut m = EngineMonitor::new(config(10));
        feed(&mut m, 5, 10, true);
        assert_eq!(m.health(), HealthState::Healthy);
        assert_eq!(m.windows_closed(), 5);
        assert_eq!(m.dump_count(), 0);
        assert!(m.transitions().is_empty());
    }

    #[test]
    fn stall_produces_exactly_one_dump_per_episode() {
        let mut m = EngineMonitor::new(config(10));
        feed(&mut m, 1, 10, true); // healthy baseline
        feed(&mut m, 6, 10, false); // stall → degraded → unhealthy
        assert_eq!(m.health().level(), 2);
        assert_eq!(m.dump_count(), 1, "one dump per episode");
        feed(&mut m, 4, 10, false); // still stalled: no second dump
        assert_eq!(m.dump_count(), 1);
        feed(&mut m, 2, 10, true); // recovery re-arms
        assert_eq!(m.health(), HealthState::Healthy);
        feed(&mut m, 6, 10, false); // second episode → second dump
        assert_eq!(m.dump_count(), 2);
        let dumps = m.take_dumps();
        assert_eq!(dumps.len(), 2);
        assert!(m.dumps().is_empty());
        assert_eq!(m.dump_count(), 2, "count survives take");
    }

    #[test]
    fn dump_references_the_breach_window() {
        let mut m = EngineMonitor::new(config(10));
        feed(&mut m, 1, 10, true);
        feed(&mut m, 6, 10, false);
        let dumps = m.take_dumps();
        assert_eq!(dumps.len(), 1);
        // Breach at the 4th consecutive stall window: windows 1..=4 stall,
        // breach window index 4 (0-based, after 1 healthy window).
        assert_eq!(dumps[0].window_index, 4);
        assert_eq!(dumps[0].trigger, "segmentation_stall");
        assert!(dumps[0]
            .json
            .contains("\"schema\": \"airfinger-flight-recorder-v1\""));
    }

    #[test]
    fn finish_closes_partial_window_without_health_scoring() {
        let mut m = EngineMonitor::new(config(10));
        feed(&mut m, 1, 10, true);
        for _ in 0..3 {
            m.observe_push(&[200.0, 210.0, 190.0], 1e-6, 25.0, Outcome::Quiet);
        }
        let partial = m.finish().expect("partial window closes");
        assert_eq!(partial.samples, 3);
        assert_eq!(m.windows_closed(), 2);
        assert_eq!(m.health(), HealthState::Healthy, "tail does not stall");
        assert!(m.finish().is_none());
    }

    #[test]
    fn samples_seen_counts_every_push() {
        let mut m = EngineMonitor::new(config(10));
        feed(&mut m, 2, 10, true);
        assert_eq!(m.samples_seen(), 20);
    }
}
