//! Continuous engine monitoring: windows + health + flight recorder,
//! composed behind one per-push entry point.
//!
//! [`EngineMonitor`] is the piece the streaming engine attaches: every
//! push feeds the [`SlidingWindow`], every closed window is scored by the
//! [`HealthModel`], and the [`FlightRecorder`] continuously taps the raw
//! stream. A transition **into** `Unhealthy` produces exactly one
//! post-mortem [`Dump`] per unhealthy episode — the trigger re-arms only
//! after the engine recovers to `Healthy`, so a breach that oscillates
//! between `Unhealthy` and `Degraded` cannot flood the dump store.
//!
//! Closed windows publish to the global registry under the §9 schema:
//! `engine_windows_closed_total`, the `engine_window_*` gauges,
//! `health_state` (severity ordinal 0/1/2),
//! `health_transitions_total{to}`, and `recorder_dumps_total`. All the
//! counters are deterministic sample-count functions of the input stream;
//! only the latency-valued gauges are scheduling observations.

use crate::budget::{BudgetConfig, ErrorBudget};
use crate::events::{Event, EventKind, Journal};
use crate::health::{HealthModel, HealthState, SloRules, Transition};
use crate::recorder::{Dump, FlightRecorder, RecorderConfig};
use crate::window::{Outcome, SlidingWindow, WindowConfig, WindowStats};
use std::collections::VecDeque;

/// Bound on buffered (undrained) journal events per monitor: enough for
/// every per-window event of a long soak, small enough that a monitor
/// nobody drains stays O(1). Overflow evicts the oldest event and counts
/// `events_dropped_total`.
const EVENT_BUFFER: usize = 256;

/// Configuration for [`EngineMonitor`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MonitorConfig {
    /// Sliding-window horizon.
    pub window: WindowConfig,
    /// SLO rule ceilings.
    pub rules: SloRules,
    /// Flight-recorder ring capacity.
    pub recorder: RecorderConfig,
    /// Error-budget / burn-rate alerting configuration.
    pub budget: BudgetConfig,
}

/// Live health monitor for one streaming engine.
#[derive(Debug)]
pub struct EngineMonitor {
    window: SlidingWindow,
    health: HealthModel,
    recorder: FlightRecorder,
    budget: ErrorBudget,
    dumps: Vec<Dump>,
    dump_sequence: u64,
    dump_armed: bool,
    samples_seen: u64,
    windows_closed: u64,
    /// (session id, shard index) correlation stamped onto every event.
    identity: Option<(u64, u64)>,
    /// Immediate-publish sink; when absent, events buffer in `events`
    /// until drained (the fleet drains at its deterministic round
    /// barrier).
    journal: Option<Journal>,
    events: VecDeque<Event>,
    /// Emitter-local monotone event ordinal (`session_seq` source).
    events_emitted: u64,
    /// `session_seq` of the transition that opened the current unhealthy
    /// episode — the start of the dump's journal cross-link range.
    episode_first_seq: Option<u64>,
}

impl EngineMonitor {
    /// Build a monitor from its configuration.
    #[must_use]
    pub fn new(config: MonitorConfig) -> Self {
        crate::events::preregister_metrics();
        crate::counter!("budget_windows_total").add(0);
        crate::counter!("budget_bad_windows_total").add(0);
        crate::counter_with("budget_alerts_total", &[("speed", "fast")]).add(0);
        crate::counter_with("budget_alerts_total", &[("speed", "slow")]).add(0);
        EngineMonitor {
            window: SlidingWindow::new(config.window),
            health: HealthModel::new(config.rules),
            recorder: FlightRecorder::new(config.recorder),
            budget: ErrorBudget::new(config.budget),
            dumps: Vec::new(),
            dump_sequence: 0,
            dump_armed: true,
            samples_seen: 0,
            windows_closed: 0,
            identity: None,
            journal: None,
            events: VecDeque::new(),
            events_emitted: 0,
            episode_first_seq: None,
        }
    }

    /// Stamp a (session id, shard index) identity onto every emitted
    /// event (fleet-hosted monitors; solo monitors leave both `null`).
    #[must_use]
    pub fn with_identity(mut self, session: u64, shard: u64) -> Self {
        self.identity = Some((session, shard));
        self
    }

    /// Publish events into `journal` immediately instead of buffering.
    /// Only safe for single-threaded drivers — fleet monitors must
    /// buffer so the round barrier can publish in deterministic (shard,
    /// session) order.
    #[must_use]
    pub fn with_journal(mut self, journal: Journal) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Preset the Otsu-threshold drift baseline (otherwise calibrated
    /// from the first closed window).
    #[must_use]
    pub fn with_baseline_threshold(mut self, baseline: f64) -> Self {
        self.health = HealthModel::new(*self.health.rules()).with_baseline_threshold(baseline);
        self
    }

    /// Observe one pushed sample. Returns the window statistics when this
    /// push closed a monitoring window.
    pub fn observe_push(
        &mut self,
        channels: &[f64],
        push_seconds: f64,
        mean_threshold: f64,
        outcome: Outcome,
    ) -> Option<WindowStats> {
        let event = if outcome.closed_segment() {
            Some(outcome.tag())
        } else {
            None
        };
        self.recorder
            .record(self.samples_seen, channels, push_seconds, event);
        if outcome.closed_segment() {
            let kind = match outcome {
                Outcome::Rejected => EventKind::Rejection,
                _ => EventKind::Recognition {
                    family: outcome.tag(),
                },
            };
            // `windows_closed` is the in-progress window's ordinal;
            // `samples_seen` (pre-increment) matches the recorder's
            // sample index for the same push.
            self.emit(kind, Some(self.windows_closed));
        }
        self.samples_seen += 1;
        let closed = self.window.observe(push_seconds, mean_threshold, outcome)?;
        self.publish_window(&closed);
        if let Some(transition) = self.health.observe_window(&closed) {
            self.publish_transition(transition, &closed);
        }
        crate::gauge!("health_state").set(f64::from(self.health.state().level()));
        self.observe_drift(&closed);
        self.observe_budget(&closed);
        self.record_point(&closed);
        Some(closed)
    }

    /// Close the trailing partial window at end of stream. Partial
    /// windows publish their statistics but are **not** scored by the
    /// health model — a short tail with no segments is not a stall.
    pub fn finish(&mut self) -> Option<WindowStats> {
        let closed = self.window.flush()?;
        self.publish_window(&closed);
        self.record_point(&closed);
        Some(closed)
    }

    /// Current health verdict.
    #[must_use]
    pub fn health(&self) -> HealthState {
        self.health.state()
    }

    /// The health model's recorded level transitions, oldest first.
    #[must_use]
    pub fn transitions(&self) -> &[Transition] {
        self.health.transitions()
    }

    /// The most recently closed window.
    #[must_use]
    pub fn last_window(&self) -> Option<&WindowStats> {
        self.window.last()
    }

    /// Samples observed so far.
    #[must_use]
    pub fn samples_seen(&self) -> u64 {
        self.samples_seen
    }

    /// Windows closed so far (including a final partial window).
    #[must_use]
    pub fn windows_closed(&self) -> u64 {
        self.windows_closed
    }

    /// Flight-recorder dumps produced so far (cumulative, including any
    /// already taken via [`EngineMonitor::take_dumps`]).
    #[must_use]
    pub fn dump_count(&self) -> u64 {
        self.dump_sequence
    }

    /// Pending dumps (produced but not yet taken).
    #[must_use]
    pub fn dumps(&self) -> &[Dump] {
        &self.dumps
    }

    /// Drain the pending dumps so the caller can write them out.
    pub fn take_dumps(&mut self) -> Vec<Dump> {
        std::mem::take(&mut self.dumps)
    }

    /// The error-budget accountant (burn rates, alert counts, remaining
    /// budget).
    #[must_use]
    pub fn budget(&self) -> &ErrorBudget {
        &self.budget
    }

    /// Events emitted so far (cumulative; the next event's
    /// `session_seq`).
    #[must_use]
    pub fn events_emitted(&self) -> u64 {
        self.events_emitted
    }

    /// Buffered (not yet drained) events. Empty when a journal is
    /// attached — events publish immediately.
    #[must_use]
    pub fn events(&self) -> &VecDeque<Event> {
        &self.events
    }

    /// Drain buffered events in emission order so the caller can publish
    /// them into a [`Journal`] (the fleet does this at its round
    /// barrier, in deterministic shard/session order).
    pub fn take_events(&mut self) -> Vec<Event> {
        self.events.drain(..).collect()
    }

    fn publish_window(&mut self, w: &WindowStats) {
        self.windows_closed += 1;
        crate::counter!("engine_windows_closed_total").inc();
        crate::gauge!("engine_window_samples").set(w.samples as f64);
        crate::gauge!("engine_window_recognitions").set(w.recognitions as f64);
        crate::gauge!("engine_window_rejections").set(w.rejections as f64);
        crate::gauge!("engine_window_segments").set(w.segments as f64);
        crate::gauge!("engine_window_rejection_ratio").set(w.rejection_ratio());
        crate::gauge!("engine_window_push_p95_ms").set(w.p95_push_seconds * 1000.0);
    }

    /// Append one point to the bounded history ring ([`crate::timeseries`])
    /// — the `/health` scrape endpoint's trend data. One point per closed
    /// window, so the cadence (and thus the retained history) is a
    /// deterministic function of the sample stream.
    fn record_point(&self, w: &WindowStats) {
        crate::timeseries::record(&[
            ("window_samples", w.samples as f64),
            ("window_segments", w.segments as f64),
            ("window_recognitions", w.recognitions as f64),
            ("window_rejections", w.rejections as f64),
            ("rejection_ratio", w.rejection_ratio()),
            ("push_p95_ms", w.p95_push_seconds * 1000.0),
            ("health_level", f64::from(self.health.state().level())),
        ]);
    }

    fn publish_transition(&mut self, transition: Transition, window: &WindowStats) {
        crate::counter_with("health_transitions_total", &[("to", transition.to.tag())]).inc();
        // Journal the transition before any dump so the dump's journal
        // range includes it; remember where the episode started the
        // moment we leave Healthy.
        let transition_seq = self.events_emitted;
        self.emit(
            EventKind::HealthTransition {
                from: transition.from.tag(),
                to: transition.to.tag(),
                reason: transition.to.reason().map_or("none", |r| r.tag()),
            },
            Some(window.index),
        );
        if transition.from.level() == 0 {
            self.episode_first_seq = Some(transition_seq);
        }
        match transition.to {
            HealthState::Unhealthy(reason) => {
                if self.dump_armed {
                    let first_seq = self.episode_first_seq.unwrap_or(transition_seq);
                    let dump = self.recorder.dump(
                        self.dump_sequence,
                        transition.to.tag(),
                        reason.tag(),
                        window,
                        self.health.transitions(),
                        Some((first_seq, transition_seq)),
                    );
                    self.emit(
                        EventKind::DumpRef {
                            dump: dump.sequence,
                            trigger: reason.tag(),
                            first_seq,
                            last_seq: transition_seq,
                        },
                        Some(window.index),
                    );
                    self.dump_sequence += 1;
                    self.dump_armed = false;
                    crate::counter!("recorder_dumps_total").inc();
                    self.dumps.push(dump);
                }
            }
            HealthState::Healthy => {
                self.dump_armed = true;
                self.episode_first_seq = None;
            }
            HealthState::Degraded(_) => {}
        }
    }

    /// Journal an Otsu drift flag when the closed window's mean dynamic
    /// threshold strays past the degraded ceiling relative to the
    /// calibrated baseline (the same ratio the health model scores).
    fn observe_drift(&mut self, w: &WindowStats) {
        let Some(base) = self.health.baseline_threshold() else {
            return;
        };
        if base <= 0.0 {
            return;
        }
        let drift = (w.mean_threshold / base - 1.0).abs();
        if drift > self.health.rules().degraded_threshold_drift {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let drift_permille = (drift * 1000.0).min(u64::MAX as f64) as u64;
            self.emit(EventKind::DriftFlag { drift_permille }, Some(w.index));
        }
    }

    /// Account the closed window against the error budget, journal any
    /// burn alerts (fast before slow), and export the budget gauges. A
    /// window is *bad* when the post-score health level is degraded or
    /// worse.
    fn observe_budget(&mut self, w: &WindowStats) {
        let bad = self.health.state().level() >= 1;
        crate::counter!("budget_windows_total").inc();
        if bad {
            crate::counter!("budget_bad_windows_total").inc();
        }
        for alert in self.budget.observe_window(bad, w.index) {
            crate::counter_with("budget_alerts_total", &[("speed", alert.speed.tag())]).inc();
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let burn_permille = (alert.burn * 1000.0).clamp(0.0, u64::MAX as f64) as u64;
            self.emit(
                EventKind::BurnAlert {
                    speed: alert.speed.tag(),
                    burn_permille,
                },
                Some(w.index),
            );
        }
        crate::gauge!("burn_rate_fast").set(self.budget.burn_fast());
        crate::gauge!("burn_rate_slow").set(self.budget.burn_slow());
        crate::gauge!("budget_remaining").set(self.budget.remaining());
    }

    /// Append one event, stamping correlation fields: identity, the
    /// emitter-local `session_seq`, and the deterministic sample count.
    fn emit(&mut self, kind: EventKind, window: Option<u64>) {
        let event = Event {
            seq: 0,
            session_seq: self.events_emitted,
            sample: self.samples_seen,
            session: self.identity.map(|(session, _)| session),
            shard: self.identity.map(|(_, shard)| shard),
            window,
            kind,
        };
        self.events_emitted += 1;
        crate::events::count_emitted(&kind);
        match &self.journal {
            Some(journal) => {
                let _ = journal.publish(event);
            }
            None => {
                if self.events.len() == EVENT_BUFFER {
                    self.events.pop_front();
                    crate::counter!("events_dropped_total").inc();
                }
                self.events.push_back(event);
            }
        }
    }
}

/// Convenience: a monitor with a custom horizon and otherwise default
/// rules and recorder sizing.
#[must_use]
pub fn with_horizon(horizon: usize) -> EngineMonitor {
    EngineMonitor::new(MonitorConfig {
        window: WindowConfig { horizon },
        ..MonitorConfig::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(horizon: usize) -> MonitorConfig {
        MonitorConfig {
            window: WindowConfig { horizon },
            rules: SloRules::default(),
            recorder: RecorderConfig { capacity: 32 },
            budget: crate::budget::BudgetConfig::default(),
        }
    }

    /// Push `n` quiet samples; a detect closes the last sample of each
    /// window when `active` is set.
    fn feed(m: &mut EngineMonitor, windows: usize, horizon: usize, active: bool) {
        for _ in 0..windows {
            for i in 0..horizon {
                let outcome = if active && i == horizon - 1 {
                    Outcome::Detect
                } else {
                    Outcome::Quiet
                };
                m.observe_push(&[200.0, 210.0, 190.0], 1e-6, 25.0, outcome);
            }
        }
    }

    #[test]
    fn healthy_session_produces_no_dumps() {
        let mut m = EngineMonitor::new(config(10));
        feed(&mut m, 5, 10, true);
        assert_eq!(m.health(), HealthState::Healthy);
        assert_eq!(m.windows_closed(), 5);
        assert_eq!(m.dump_count(), 0);
        assert!(m.transitions().is_empty());
    }

    #[test]
    fn stall_produces_exactly_one_dump_per_episode() {
        let mut m = EngineMonitor::new(config(10));
        feed(&mut m, 1, 10, true); // healthy baseline
        feed(&mut m, 6, 10, false); // stall → degraded → unhealthy
        assert_eq!(m.health().level(), 2);
        assert_eq!(m.dump_count(), 1, "one dump per episode");
        feed(&mut m, 4, 10, false); // still stalled: no second dump
        assert_eq!(m.dump_count(), 1);
        feed(&mut m, 2, 10, true); // recovery re-arms
        assert_eq!(m.health(), HealthState::Healthy);
        feed(&mut m, 6, 10, false); // second episode → second dump
        assert_eq!(m.dump_count(), 2);
        let dumps = m.take_dumps();
        assert_eq!(dumps.len(), 2);
        assert!(m.dumps().is_empty());
        assert_eq!(m.dump_count(), 2, "count survives take");
    }

    #[test]
    fn dump_references_the_breach_window() {
        let mut m = EngineMonitor::new(config(10));
        feed(&mut m, 1, 10, true);
        feed(&mut m, 6, 10, false);
        let dumps = m.take_dumps();
        assert_eq!(dumps.len(), 1);
        // Breach at the 4th consecutive stall window: windows 1..=4 stall,
        // breach window index 4 (0-based, after 1 healthy window).
        assert_eq!(dumps[0].window_index, 4);
        assert_eq!(dumps[0].trigger, "segmentation_stall");
        assert!(dumps[0]
            .json
            .contains("\"schema\": \"airfinger-flight-recorder-v1\""));
    }

    #[test]
    fn finish_closes_partial_window_without_health_scoring() {
        let mut m = EngineMonitor::new(config(10));
        feed(&mut m, 1, 10, true);
        for _ in 0..3 {
            m.observe_push(&[200.0, 210.0, 190.0], 1e-6, 25.0, Outcome::Quiet);
        }
        let partial = m.finish().expect("partial window closes");
        assert_eq!(partial.samples, 3);
        assert_eq!(m.windows_closed(), 2);
        assert_eq!(m.health(), HealthState::Healthy, "tail does not stall");
        assert!(m.finish().is_none());
    }

    #[test]
    fn samples_seen_counts_every_push() {
        let mut m = EngineMonitor::new(config(10));
        feed(&mut m, 2, 10, true);
        assert_eq!(m.samples_seen(), 20);
    }
}
