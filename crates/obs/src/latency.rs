//! Nanosecond latency attribution: fixed-size, log2-bucketed histograms.
//!
//! The second-resolution [`crate::Histogram`] answers "how is time spent
//! across a run"; it cannot answer "what is push p99 in nanoseconds"
//! because its P² estimators take a lock on every observation and its
//! bucket edges bottom out at 1 µs. [`LatencyHist`] is the hot-path
//! counterpart: 64 power-of-two buckets covering every representable
//! `u64` nanosecond value, recorded with a handful of relaxed atomic
//! instructions and **no heap traffic after construction** — the record
//! path allocates nothing, locks nothing, and never blocks, so it is safe
//! inside functions audited by lint rule H.
//!
//! Bucket `0` holds exact zeros; bucket `i` (1 ≤ i ≤ 62) holds values in
//! `[2^(i−1), 2^i − 1]`; bucket `63` holds everything from `2^62` up to
//! `u64::MAX`. Percentiles are derived from the bucket counts by rank
//! walk and reported as the matched bucket's inclusive upper edge — a
//! deterministic, conservative (never under-reporting) estimate with at
//! most 2× quantization, plenty for a regression gate with a ±10% band
//! on top.
//!
//! Handles are registered in a process-global table keyed by
//! [`MetricId`] — the same identity scheme as the metric registry — via
//! the [`crate::latency!`] macro, which caches the handle per call site
//! in a `OnceLock` so steady-state recording never touches the table
//! lock.

use crate::registry::MetricId;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Number of buckets: one per possible bit length of a `u64`, plus the
/// dedicated zero bucket folded into index 0.
pub const LATENCY_BUCKETS: usize = 64;

/// A lock-free nanosecond histogram with power-of-two buckets.
///
/// Cloning is a cheap `Arc` bump; all clones observe the same buckets.
#[derive(Debug, Clone, Default)]
pub struct LatencyHist {
    inner: Arc<LatencyInner>,
}

#[derive(Debug)]
struct LatencyInner {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyInner {
    fn default() -> Self {
        LatencyInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

/// The bucket index a nanosecond value lands in: 0 for 0, otherwise the
/// value's bit length, clamped so bucket 63 absorbs everything ≥ 2^62.
#[must_use]
#[inline]
pub fn bucket_index(ns: u64) -> usize {
    let bits = (u64::BITS - ns.leading_zeros()) as usize;
    bits.min(LATENCY_BUCKETS - 1)
}

/// The inclusive upper edge of a bucket: 0 for bucket 0, `2^i − 1` for
/// buckets 1..=62, and `u64::MAX` for the overflow bucket 63.
#[must_use]
#[inline]
pub fn bucket_upper(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= LATENCY_BUCKETS - 1 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl LatencyHist {
    /// Create a detached histogram (tests; instrumentation should go
    /// through [`crate::latency!`]).
    #[must_use]
    pub fn new() -> Self {
        LatencyHist::default()
    }

    /// Record one duration. A few relaxed atomics; no allocation, no
    /// lock, no syscall — the whole point of this type.
    #[inline]
    pub fn record(&self, ns: u64) {
        if !crate::recording() {
            return;
        }
        let inner = &*self.inner;
        inner.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        // Saturate rather than wrap: ~584 years of accumulated
        // nanoseconds should clamp, not jump backwards mid-scrape.
        let mut current = inner.sum_ns.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_add(ns);
            match inner.sum_ns.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(observed) => current = observed,
            }
        }
        inner.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Total number of recorded durations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded durations (saturating).
    #[must_use]
    pub fn sum_ns(&self) -> u64 {
        self.inner.sum_ns.load(Ordering::Relaxed)
    }

    /// Largest recorded duration.
    #[must_use]
    pub fn max_ns(&self) -> u64 {
        self.inner.max_ns.load(Ordering::Relaxed)
    }

    /// Per-bucket counts, exactly [`LATENCY_BUCKETS`] entries.
    #[must_use]
    pub fn bucket_counts(&self) -> [u64; LATENCY_BUCKETS] {
        std::array::from_fn(|i| self.inner.buckets[i].load(Ordering::Relaxed))
    }

    /// Zero every bucket and the count/sum/max, in place, so cached
    /// handles keep working (same contract as [`crate::Registry::reset`]).
    pub fn reset(&self) {
        for b in &self.inner.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.inner.count.store(0, Ordering::Relaxed);
        self.inner.sum_ns.store(0, Ordering::Relaxed);
        self.inner.max_ns.store(0, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy for export (bucket loads
    /// are individually atomic; a scrape racing a record may be off by
    /// the in-flight observation, which is fine for telemetry).
    #[must_use]
    pub fn snapshot(&self, id: MetricId) -> LatencySnapshot {
        LatencySnapshot {
            id,
            count: self.count(),
            sum_ns: self.sum_ns(),
            max_ns: self.max_ns(),
            buckets: self.bucket_counts().to_vec(),
        }
    }
}

/// A point-in-time copy of one [`LatencyHist`], ready for export.
#[derive(Debug, Clone)]
pub struct LatencySnapshot {
    /// Metric identity (name + sorted labels).
    pub id: MetricId,
    /// Total recorded durations.
    pub count: u64,
    /// Saturating sum of recorded nanoseconds.
    pub sum_ns: u64,
    /// Largest recorded duration.
    pub max_ns: u64,
    /// Per-bucket counts, [`LATENCY_BUCKETS`] entries.
    pub buckets: Vec<u64>,
}

impl LatencySnapshot {
    /// The `q`-quantile (0 < q ≤ 1) as the inclusive upper edge of the
    /// bucket holding the rank-⌈q·count⌉ observation; 0 when empty. The
    /// max is substituted for the top bucket's edge when the rank lands
    /// in the overflow bucket, keeping the estimate finite and tight.
    #[must_use]
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                if i == LATENCY_BUCKETS - 1 {
                    return self.max_ns;
                }
                return bucket_upper(i);
            }
        }
        self.max_ns
    }

    /// p50 upper-edge estimate in nanoseconds.
    #[must_use]
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// p95 upper-edge estimate in nanoseconds.
    #[must_use]
    pub fn p95_ns(&self) -> u64 {
        self.quantile_ns(0.95)
    }

    /// p99 upper-edge estimate in nanoseconds.
    #[must_use]
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// Mean nanoseconds per observation (0 when empty).
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let mean = self.sum_ns as f64 / self.count as f64;
        mean
    }

    /// One JSON object:
    /// `{"name","labels","count","sum_ns","max_ns","p50_ns",…,"buckets"}`.
    /// Empty buckets are elided from the `buckets` array to keep reports
    /// compact; each entry is `{"le_ns": upper, "count": n}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        use crate::export::{json_string, sanitize_name};
        let mut out = String::with_capacity(256);
        out.push_str("{\"name\": ");
        out.push_str(&json_string(&sanitize_name(&self.id.name)));
        out.push_str(", \"labels\": {");
        for (i, (k, v)) in self.id.labels.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(k));
            out.push_str(": ");
            out.push_str(&json_string(v));
        }
        out.push_str("}, ");
        out.push_str(&format!(
            "\"count\": {}, \"sum_ns\": {}, \"max_ns\": {}, \
             \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"buckets\": [",
            self.count,
            self.sum_ns,
            self.max_ns,
            self.p50_ns(),
            self.p95_ns(),
            self.p99_ns(),
        ));
        let mut first = true;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!(
                "{{\"le_ns\": {}, \"count\": {c}}}",
                bucket_upper(i)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// The process-global latency table. One table (not one per
/// [`crate::Registry`]) because the recording sites cache `'static`
/// handles; [`reset`] zeroes in place exactly like the registry does.
fn table() -> &'static Mutex<BTreeMap<MetricId, LatencyHist>> {
    static TABLE: OnceLock<Mutex<BTreeMap<MetricId, LatencyHist>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn lock_table() -> std::sync::MutexGuard<'static, BTreeMap<MetricId, LatencyHist>> {
    table().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Register-or-fetch the histogram named `name` with no labels.
#[must_use]
pub fn hist(name: &str) -> LatencyHist {
    hist_with(name, &[])
}

/// Register-or-fetch the histogram named `name` with static labels.
/// Prefer the [`crate::latency!`] macro, which caches the handle.
#[must_use]
pub fn hist_with(name: &str, labels: &[(&str, &str)]) -> LatencyHist {
    let id = MetricId::new(name, labels);
    lock_table().entry(id).or_default().clone()
}

/// Snapshot every registered histogram, sorted by metric identity.
#[must_use]
pub fn snapshot_all() -> Vec<LatencySnapshot> {
    lock_table()
        .iter()
        .map(|(id, h)| h.snapshot(id.clone()))
        .collect()
}

/// Zero every registered histogram in place; cached handles survive.
pub fn reset() {
    for h in lock_table().values() {
        h.reset();
    }
}

/// All registered histograms as a JSON array (one object per histogram,
/// see [`LatencySnapshot::to_json`]). Always present in run reports so
/// downstream tooling can key on it unconditionally.
#[must_use]
pub fn export_json() -> String {
    let snaps = snapshot_all();
    let mut out = String::from("[");
    for (i, s) in snaps.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&s.to_json());
    }
    out.push(']');
    out
}

/// Prometheus exposition for every registered histogram: a cumulative
/// `_bucket`/`_sum`/`_count` family (bucket edges in nanoseconds) plus a
/// companion `<name>_quantiles` summary carrying p50/p95/p99/max.
#[must_use]
pub fn export_prometheus() -> String {
    use crate::export::{escape_label_value, prom_number, sanitize_name};
    let snaps = snapshot_all();
    let mut out = String::new();
    let mut seen: Option<String> = None;
    for s in &snaps {
        let name = sanitize_name(&s.id.name);
        if seen.as_deref() != Some(name.as_str()) {
            out.push_str(&format!(
                "# HELP {name} log2-bucketed nanosecond latency histogram\n\
                 # TYPE {name} histogram\n"
            ));
            seen = Some(name.clone());
        }
        let labels = |extra: &str| -> String {
            let mut parts: Vec<String> =
                s.id.labels
                    .iter()
                    .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
                    .collect();
            if !extra.is_empty() {
                parts.push(extra.to_string());
            }
            if parts.is_empty() {
                String::new()
            } else {
                format!("{{{}}}", parts.join(","))
            }
        };
        let mut cumulative = 0u64;
        for (i, &c) in s.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(c);
            if c == 0 && i != LATENCY_BUCKETS - 1 {
                continue;
            }
            let le = if i == LATENCY_BUCKETS - 1 {
                "le=\"+Inf\"".to_string()
            } else {
                format!("le=\"{}\"", bucket_upper(i))
            };
            out.push_str(&format!("{name}_bucket{} {cumulative}\n", labels(&le)));
        }
        out.push_str(&format!("{name}_sum{} {}\n", labels(""), s.sum_ns));
        out.push_str(&format!("{name}_count{} {}\n", labels(""), s.count));
        if s.count > 0 {
            for (q, v) in [
                ("0.5", s.p50_ns()),
                ("0.95", s.p95_ns()),
                ("0.99", s.p99_ns()),
            ] {
                #[allow(clippy::cast_precision_loss)]
                let value = prom_number(v as f64);
                out.push_str(&format!(
                    "{name}_quantiles{} {value}\n",
                    labels(&format!("quantile=\"{q}\""))
                ));
            }
            out.push_str(&format!(
                "{name}_quantiles_max{} {}\n",
                labels(""),
                s.max_ns
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(h: &LatencyHist) -> LatencySnapshot {
        h.snapshot(MetricId::new("test_ns", &[]))
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        // Every power of two opens a new bucket; its predecessor closes
        // the previous one.
        for i in 1..62 {
            let edge = 1u64 << i;
            assert_eq!(bucket_index(edge), i + 1, "2^{i}");
            assert_eq!(bucket_index(edge - 1), i, "2^{i} - 1");
        }
        // The overflow bucket absorbs 2^62 .. u64::MAX.
        assert_eq!(bucket_index(1u64 << 62), 63);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn bucket_upper_matches_index() {
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(62), (1u64 << 62) - 1);
        assert_eq!(bucket_upper(63), u64::MAX);
        // Round trip: every value's bucket upper edge is >= the value.
        for v in [0, 1, 2, 3, 4, 1000, 1 << 40, u64::MAX] {
            assert!(bucket_upper(bucket_index(v)) >= v, "{v}");
        }
    }

    #[cfg(feature = "obs")]
    #[test]
    fn records_extremes_without_losing_counts() {
        let h = LatencyHist::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max_ns(), u64::MAX);
        let buckets = h.bucket_counts();
        assert_eq!(buckets[0], 1);
        assert_eq!(buckets[1], 1);
        assert_eq!(buckets[63], 1);
        // The sum saturates instead of wrapping.
        assert_eq!(h.sum_ns(), u64::MAX);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn quantiles_walk_bucket_edges() {
        let h = LatencyHist::new();
        for _ in 0..50 {
            h.record(100); // bucket 7, upper edge 127
        }
        for _ in 0..49 {
            h.record(1000); // bucket 10, upper edge 1023
        }
        h.record(1_000_000); // bucket 20, upper edge 1_048_575
        let s = snap(&h);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ns(), 127);
        assert_eq!(s.p95_ns(), 1023);
        assert_eq!(s.p99_ns(), 1023);
        assert_eq!(s.quantile_ns(1.0), 1_048_575);
        assert_eq!(s.max_ns, 1_000_000);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn overflow_bucket_reports_the_exact_max() {
        let h = LatencyHist::new();
        h.record(u64::MAX - 7);
        let s = snap(&h);
        // The rank walk lands in bucket 63; the snapshot substitutes the
        // tracked max so the estimate stays finite and tight.
        assert_eq!(s.p99_ns(), u64::MAX - 7);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = snap(&LatencyHist::new());
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_ns(), 0);
        assert_eq!(s.p99_ns(), 0);
        assert_eq!(s.max_ns, 0);
        assert!((s.mean_ns() - 0.0).abs() < f64::EPSILON);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn reset_zeroes_in_place_and_handles_survive() {
        let a = hist_with("latency_reset_test_ns", &[("stage", "x")]);
        a.record(42);
        assert_eq!(a.count(), 1);
        reset();
        assert_eq!(a.count(), 0);
        assert_eq!(a.sum_ns(), 0);
        assert_eq!(a.max_ns(), 0);
        a.record(7);
        let b = hist_with("latency_reset_test_ns", &[("stage", "x")]);
        assert_eq!(b.count(), 1, "handles must share state after reset");
    }

    #[cfg(feature = "obs")]
    #[test]
    fn clones_share_state_and_ids_separate() {
        let a = hist_with("latency_share_test_ns", &[]);
        let b = hist_with("latency_share_test_ns", &[]);
        let other = hist_with("latency_share_test_ns", &[("stage", "y")]);
        a.record(5);
        assert_eq!(b.count(), 1);
        assert_eq!(other.count(), 0);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn json_export_elides_empty_buckets() {
        let h = hist_with("latency_json_test_ns", &[("stage", "sbc")]);
        h.reset();
        h.record(100);
        let json = h
            .snapshot(MetricId::new("latency_json_test_ns", &[("stage", "sbc")]))
            .to_json();
        assert!(
            json.contains("\"name\": \"latency_json_test_ns\""),
            "{json}"
        );
        assert!(json.contains("\"stage\": \"sbc\""), "{json}");
        assert!(json.contains("\"le_ns\": 127"), "{json}");
        assert!(!json.contains("\"le_ns\": 63"), "{json}");
    }

    #[cfg(feature = "obs")]
    #[test]
    fn prometheus_export_is_cumulative_with_inf() {
        let h = hist_with("latency_prom_test_ns", &[]);
        h.reset();
        h.record(2);
        h.record(100);
        let text = export_prometheus();
        assert!(
            text.contains("# TYPE latency_prom_test_ns histogram"),
            "{text}"
        );
        assert!(
            text.contains("latency_prom_test_ns_bucket{le=\"3\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("latency_prom_test_ns_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("latency_prom_test_ns_count 2"), "{text}");
        assert!(
            text.contains("latency_prom_test_ns_quantiles{quantile=\"0.99\"}"),
            "{text}"
        );
    }

    #[test]
    fn recording_gate_respected() {
        let h = LatencyHist::new();
        let was = crate::recording();
        crate::set_recording(false);
        h.record(99);
        crate::set_recording(was);
        assert_eq!(h.count(), 0);
    }
}
