//! The airFinger pipeline: micro finger gesture recognition and tracking
//! via NIR light sensing (Zhang et al., ICDCS 2020).
//!
//! The pipeline has the paper's three major parts (§IV, Fig. 4):
//!
//! 1. **Data Processing** ([`processing`]) — the Square Based Calculation
//!    (SBC) noise-mitigation transform and the Otsu-style Dynamic
//!    Threshold (DT) gesture segmentation.
//! 2. **Detect-aimed Gesture Recognition** ([`detect`]) — Table-I features
//!    over each photodiode's `ΔRSS²`, classified by a random forest.
//! 3. **Track-aimed Gesture Recognition** ([`zebra`]) — the ZEBRA
//!    algorithm recovering scroll direction, velocity and displacement
//!    from per-photodiode signal-ascent ordering.
//!
//! Two auxiliary stages route windows between them: the detect/track
//! **distinguisher** ([`distinguish`], threshold `I_g`) and the
//! gesture/non-gesture **interference filter** ([`filter`], the bold
//! 9-feature subset). [`pipeline::AirFinger`] wires everything together;
//! [`engine::StreamingEngine`] runs it sample-by-sample in real time.
//!
//! The paper's §VI future-work items are implemented as extensions:
//! user-defined gestures ([`custom`]), adaptive duty cycling with an
//! energy ledger ([`power`]), two-dimensional tracking over the
//! cross-shaped board ([`zebra2d`]), per-user enrollment closing the
//! Fig. 11 individual-diversity gap ([`adapt`]), and — on the simulator
//! side — the lock-in outdoor front end (`airfinger_nir_sim::modulation`).
//!
//! # Quickstart
//!
//! ```no_run
//! use airfinger_core::prelude::*;
//! use airfinger_synth::dataset::{generate_corpus, CorpusSpec};
//!
//! let corpus = generate_corpus(&CorpusSpec::small(7));
//! let mut af = AirFinger::new(AirFingerConfig::default());
//! af.train_on_corpus(&corpus, None)?;
//! let event = af.recognize_primary(&corpus.samples()[0].trace)?;
//! println!("recognized: {event}");
//! # Ok::<(), airfinger_core::error::AirFingerError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapt;
pub mod config;
pub mod custom;
pub mod detect;
pub mod distinguish;
pub mod engine;
pub mod error;
pub mod events;
pub mod filter;
pub mod pipeline;
pub mod power;
pub mod processing;
pub mod train;
pub mod zebra;
pub mod zebra2d;

/// Convenient re-exports of the main entry points.
pub mod prelude {
    pub use crate::config::AirFingerConfig;
    pub use crate::engine::{SharedEngine, StreamingEngine};
    pub use crate::error::AirFingerError;
    pub use crate::events::Recognition;
    pub use crate::pipeline::AirFinger;
    pub use crate::zebra::{ScrollDirection, ScrollTrack};
}

pub use config::AirFingerConfig;
pub use error::AirFingerError;
pub use events::Recognition;
pub use pipeline::AirFinger;
