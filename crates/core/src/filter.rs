//! *Remove Other Interferences* (§IV-F): the gesture/non-gesture filter.
//!
//! Unintentional motions (scratching, repositioning) segment just like
//! gestures; a binary random forest over the bold 9-feature Table-I subset
//! decides whether a window is a deliberate gesture before it reaches the
//! recognizers. The 9 features are a subset of the 25, so (as the paper
//! notes) they can be reused downstream "without extra consumption burden".

use crate::config::AirFingerConfig;
use crate::error::AirFingerError;
use crate::processing::GestureWindow;
use airfinger_features::FeatureExtractor;
use airfinger_ml::classifier::Classifier;
use airfinger_ml::forest::{RandomForest, RandomForestConfig};
use serde::{Deserialize, Serialize};

/// Binary label used by the filter.
pub const LABEL_NON_GESTURE: usize = 0;
/// Binary label used by the filter.
pub const LABEL_GESTURE: usize = 1;

/// The gesture/non-gesture filter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NonGestureFilter {
    extractor: FeatureExtractor,
    forest: RandomForest,
    trained: bool,
}

impl NonGestureFilter {
    /// Create an untrained filter over the 9-feature subset.
    #[must_use]
    pub fn new(config: &AirFingerConfig) -> Self {
        NonGestureFilter {
            extractor: FeatureExtractor::nongesture9(),
            forest: RandomForest::new(RandomForestConfig {
                n_trees: config.forest_trees,
                seed: config.train_seed.wrapping_add(1),
                n_threads: config.n_threads,
                ..Default::default()
            }),
            trained: false,
        }
    }

    /// Whether training has succeeded.
    #[must_use]
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// The 9-feature extractor.
    #[must_use]
    pub fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    /// Feature vector of a window (same preparation as the recognizer —
    /// see [`crate::detect::prepare_features`]).
    #[must_use]
    pub fn features(&self, window: &GestureWindow) -> Vec<f64> {
        crate::detect::prepare_features(&self.extractor, window)
    }

    /// Train from precomputed feature vectors with binary labels
    /// ([`LABEL_GESTURE`] / [`LABEL_NON_GESTURE`]).
    ///
    /// # Errors
    ///
    /// Propagates classifier errors.
    pub fn train_features(&mut self, x: &[Vec<f64>], y: &[usize]) -> Result<(), AirFingerError> {
        self.forest.fit(x, y)?;
        self.trained = true;
        Ok(())
    }

    /// Train from windows with binary labels.
    ///
    /// # Errors
    ///
    /// Propagates classifier errors.
    pub fn train(
        &mut self,
        windows: &[GestureWindow],
        labels: &[usize],
    ) -> Result<(), AirFingerError> {
        let x: Vec<Vec<f64>> = windows.iter().map(|w| self.features(w)).collect();
        self.train_features(&x, labels)
    }

    /// Whether the window is a deliberate gesture.
    ///
    /// # Errors
    ///
    /// Returns [`AirFingerError::NotTrained`] before training.
    pub fn is_gesture(&self, window: &GestureWindow) -> Result<bool, AirFingerError> {
        if !self.trained {
            return Err(AirFingerError::NotTrained);
        }
        Ok(self.forest.predict(&self.features(window))? == LABEL_GESTURE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airfinger_dsp::segment::Segment;

    /// Gestures: strong periodic bursts. Non-gestures: weak drifty wiggle.
    fn toy_window(gesture: bool, seed: usize) -> GestureWindow {
        let n = 110;
        let delta: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                if gesture {
                    60.0 * (std::f64::consts::TAU * 3.0 * t).sin().powi(2)
                        * (1.0 + 0.05 * (seed % 7) as f64)
                } else {
                    6.0 * (std::f64::consts::TAU * (0.7 + 0.1 * (seed % 5) as f64) * t)
                        .sin()
                        .abs()
                }
            })
            .collect();
        let chans = vec![delta.clone(), delta.clone(), delta];
        GestureWindow {
            segment: Segment::new(0, n),
            raw: chans.clone(),
            delta: chans,
            thresholds: vec![10.0; 3],
            sample_rate_hz: 100.0,
        }
    }

    #[test]
    fn separates_gestures_from_wiggle() {
        let cfg = AirFingerConfig {
            forest_trees: 15,
            ..Default::default()
        };
        let mut f = NonGestureFilter::new(&cfg);
        let mut windows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..15 {
            windows.push(toy_window(true, i));
            labels.push(LABEL_GESTURE);
            windows.push(toy_window(false, i));
            labels.push(LABEL_NON_GESTURE);
        }
        f.train(&windows, &labels).unwrap();
        assert!(f.is_gesture(&toy_window(true, 99)).unwrap());
        assert!(!f.is_gesture(&toy_window(false, 99)).unwrap());
    }

    #[test]
    fn untrained_errors() {
        let f = NonGestureFilter::new(&AirFingerConfig::default());
        assert_eq!(
            f.is_gesture(&toy_window(true, 0)),
            Err(AirFingerError::NotTrained)
        );
    }

    #[test]
    fn uses_nine_feature_subset() {
        let f = NonGestureFilter::new(&AirFingerConfig::default());
        assert_eq!(f.extractor().kinds().len(), 9);
        // Reusability claim: every filter kind also appears in Table I.
        let table1 = airfinger_features::FeatureKind::table1();
        assert!(f.extractor().kinds().iter().all(|k| table1.contains(k)));
    }
}
