//! Training-set construction: corpus → processed windows → feature
//! matrices with user/session group labels for the paper's CV protocols.

use crate::config::AirFingerConfig;
use crate::processing::DataProcessor;
use airfinger_features::FeatureExtractor;
use airfinger_synth::dataset::Corpus;

/// A feature matrix with labels and grouping metadata.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LabeledFeatures {
    /// Feature vectors, one row per sample.
    pub x: Vec<Vec<f64>>,
    /// Class labels.
    pub y: Vec<usize>,
    /// Volunteer id per sample (for leave-one-user-out).
    pub users: Vec<usize>,
    /// Session id per sample (for leave-one-session-out).
    pub sessions: Vec<usize>,
    /// Repetition id per sample (for enrollment-count sweeps).
    pub reps: Vec<usize>,
}

impl LabeledFeatures {
    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }
}

/// Extract features for every sample of `corpus` using `extractor`,
/// labelling each sample with `label_of(sample) -> Option<usize>` (samples
/// mapped to `None` are skipped).
///
/// Per-sample extraction (segmentation + Table-I features) dominates
/// corpus training time and every sample is independent, so the work is
/// fanned across [`AirFingerConfig::n_threads`] workers. The order-
/// preserving map keeps row order — and therefore every downstream split,
/// fold and trained model — identical to the sequential path.
#[must_use]
pub fn feature_set<F>(
    corpus: &Corpus,
    config: &AirFingerConfig,
    extractor: &FeatureExtractor,
    label_of: F,
) -> LabeledFeatures
where
    F: Fn(&airfinger_synth::dataset::GestureSample) -> Option<usize> + Sync,
{
    let _span = airfinger_obs::span!("train_feature_extraction_seconds");
    let processor = DataProcessor::new(*config);
    let threads = airfinger_parallel::effective_threads(Some(config.n_threads));
    let rows = airfinger_parallel::par_map(corpus.samples(), threads, |s| {
        let label = label_of(s)?;
        let window = processor.primary_window(&s.trace);
        let features = crate::detect::prepare_features(extractor, &window);
        Some((features, label, s.user, s.session, s.rep))
    });
    let mut out = LabeledFeatures::default();
    for (features, label, user, session, rep) in rows.into_iter().flatten() {
        out.x.push(features);
        out.y.push(label);
        out.users.push(user);
        out.sessions.push(session);
        out.reps.push(rep);
    }
    airfinger_obs::counter!("train_feature_rows_total").add(out.len() as u64);
    out
}

/// Detect-aimed feature set: Table-I features, labels are detect indices
/// `0..6`; track-aimed and non-gesture samples are skipped.
#[must_use]
pub fn detect_feature_set(corpus: &Corpus, config: &AirFingerConfig) -> LabeledFeatures {
    let extractor = FeatureExtractor::table1();
    feature_set(corpus, config, &extractor, |s| {
        s.label.gesture().and_then(|g| g.detect_index())
    })
}

/// All-gesture feature set: Table-I features, labels are gesture indices
/// `0..8` (the Fig. 9 classifier-comparison protocol uses "all the
/// collected gesture samples").
#[must_use]
pub fn all_gesture_feature_set(corpus: &Corpus, config: &AirFingerConfig) -> LabeledFeatures {
    let extractor = FeatureExtractor::table1();
    feature_set(corpus, config, &extractor, |s| {
        s.label.gesture().map(|g| g.index())
    })
}

/// Binary gesture/non-gesture feature set over the 9-feature subset:
/// label 1 for any designed gesture, 0 for unintentional motions.
#[must_use]
pub fn binary_feature_set(corpus: &Corpus, config: &AirFingerConfig) -> LabeledFeatures {
    let extractor = FeatureExtractor::nongesture9();
    feature_set(corpus, config, &extractor, |s| {
        Some(usize::from(s.label.is_gesture()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use airfinger_synth::dataset::{generate_corpus, generate_nongesture_corpus, CorpusSpec};
    use airfinger_synth::gesture::Gesture;

    fn tiny_spec() -> CorpusSpec {
        CorpusSpec {
            users: 1,
            sessions: 1,
            reps: 1,
            ..Default::default()
        }
    }

    #[test]
    fn detect_set_skips_scrolls() {
        let corpus = generate_corpus(&tiny_spec());
        let set = detect_feature_set(&corpus, &AirFingerConfig::default());
        assert_eq!(set.len(), 6);
        assert!(set.y.iter().all(|&l| l < 6));
    }

    #[test]
    fn all_gesture_set_keeps_everything() {
        let corpus = generate_corpus(&tiny_spec());
        let set = all_gesture_feature_set(&corpus, &AirFingerConfig::default());
        assert_eq!(set.len(), 8);
        let mut labels = set.y.clone();
        labels.sort_unstable();
        assert_eq!(labels, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn binary_set_mixes_labels() {
        let spec = tiny_spec();
        let gestures = generate_corpus(&CorpusSpec {
            gestures: vec![Gesture::Click, Gesture::Rub],
            ..spec.clone()
        });
        let non = generate_nongesture_corpus(&CorpusSpec { reps: 3, ..spec });
        let merged = gestures.merged(non);
        let set = binary_feature_set(&merged, &AirFingerConfig::default());
        assert_eq!(set.len(), 5);
        assert_eq!(set.y.iter().filter(|&&l| l == 1).count(), 2);
        assert_eq!(set.y.iter().filter(|&&l| l == 0).count(), 3);
    }

    #[test]
    fn rows_are_rectangular_and_finite() {
        let corpus = generate_corpus(&tiny_spec());
        let set = detect_feature_set(&corpus, &AirFingerConfig::default());
        let width = set.x[0].len();
        for row in &set.x {
            assert_eq!(row.len(), width);
            assert!(row.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn groups_align_with_samples() {
        let spec = CorpusSpec {
            users: 2,
            sessions: 2,
            reps: 1,
            ..Default::default()
        };
        let corpus = generate_corpus(&spec);
        let set = all_gesture_feature_set(&corpus, &AirFingerConfig::default());
        assert_eq!(set.users.len(), set.len());
        assert_eq!(set.sessions.len(), set.len());
        assert!(set.users.contains(&0) && set.users.contains(&1));
    }
}
