//! User-defined gestures — the §VI "Gesture Set" proposal: "it is an
//! interesting option to enable user-self-defined gestures … like
//! personalized icons, customized gestures can provide more space for
//! users to interact with their smart devices".
//!
//! A [`CustomRecognizer`] extends the eight built-in classes with any
//! number of user-registered gestures, each taught from a handful of
//! example recordings. Internally it is the same Table-I feature bank and
//! random forest, retrained over the union label space.

use crate::config::AirFingerConfig;
use crate::detect::prepare_features;
use crate::error::AirFingerError;
use crate::processing::{DataProcessor, GestureWindow};
use airfinger_features::FeatureExtractor;
use airfinger_ml::classifier::Classifier;
use airfinger_ml::forest::{RandomForest, RandomForestConfig};
use airfinger_nir_sim::trace::RssTrace;
use airfinger_synth::dataset::Corpus;
use airfinger_synth::gesture::Gesture;
use serde::{Deserialize, Serialize};

/// A label in the extended gesture space.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExtendedLabel {
    /// One of the paper's eight gestures.
    Builtin(Gesture),
    /// A user-registered gesture, by name.
    Custom(String),
}

impl std::fmt::Display for ExtendedLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtendedLabel::Builtin(g) => g.fmt(f),
            ExtendedLabel::Custom(name) => write!(f, "custom:{name}"),
        }
    }
}

/// A recognizer over the eight built-in gestures plus registered custom
/// ones.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CustomRecognizer {
    config: AirFingerConfig,
    extractor: FeatureExtractor,
    forest: RandomForest,
    custom_names: Vec<String>,
    trained: bool,
}

impl CustomRecognizer {
    /// Create an untrained recognizer.
    #[must_use]
    pub fn new(config: AirFingerConfig) -> Self {
        CustomRecognizer {
            extractor: FeatureExtractor::table1(),
            forest: RandomForest::new(RandomForestConfig {
                n_trees: config.forest_trees,
                seed: config.train_seed.wrapping_add(2),
                n_threads: config.n_threads,
                ..Default::default()
            }),
            custom_names: Vec::new(),
            trained: false,
            config,
        }
    }

    /// The registered custom gesture names, in label order.
    #[must_use]
    pub fn custom_names(&self) -> &[String] {
        &self.custom_names
    }

    /// Whether training has succeeded.
    #[must_use]
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Train over the built-in corpus plus user-registered gestures.
    ///
    /// Each entry of `custom` is a gesture name with its example
    /// recordings (one gesture per recording, like the corpus protocol).
    /// Labels `0..8` stay the built-in gestures; label `8 + k` is
    /// `custom[k]`.
    ///
    /// # Errors
    ///
    /// Returns [`AirFingerError::InvalidTrainingData`] for an empty corpus,
    /// a custom gesture with no examples, or a duplicate name; propagates
    /// classifier errors.
    pub fn train(
        &mut self,
        builtin: &Corpus,
        custom: &[(String, Vec<RssTrace>)],
    ) -> Result<(), AirFingerError> {
        if builtin.is_empty() {
            return Err(AirFingerError::InvalidTrainingData(
                "built-in corpus is empty",
            ));
        }
        let mut names: Vec<&str> = custom.iter().map(|(n, _)| n.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != custom.len() {
            return Err(AirFingerError::InvalidTrainingData(
                "duplicate custom gesture name",
            ));
        }
        let processor = DataProcessor::new(self.config);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for s in builtin.samples() {
            let Some(g) = s.label.gesture() else { continue };
            let w = processor.primary_window(&s.trace);
            x.push(prepare_features(&self.extractor, &w));
            y.push(g.index());
        }
        for (k, (name, traces)) in custom.iter().enumerate() {
            if traces.is_empty() {
                return Err(AirFingerError::InvalidTrainingData(
                    "custom gesture registered with no examples",
                ));
            }
            for trace in traces {
                let w = processor.primary_window(trace);
                x.push(prepare_features(&self.extractor, &w));
                y.push(Gesture::ALL.len() + k);
            }
            let _ = name;
        }
        self.forest.fit(&x, &y)?;
        self.custom_names = custom.iter().map(|(n, _)| n.clone()).collect();
        self.trained = true;
        Ok(())
    }

    /// Recognize one window in the extended label space.
    ///
    /// # Errors
    ///
    /// Returns [`AirFingerError::NotTrained`] before training.
    pub fn recognize_window(
        &self,
        window: &GestureWindow,
    ) -> Result<ExtendedLabel, AirFingerError> {
        if !self.trained {
            return Err(AirFingerError::NotTrained);
        }
        let idx = self
            .forest
            .predict(&prepare_features(&self.extractor, window))?;
        Ok(self.label_of(idx))
    }

    /// Recognize the primary window of a recording.
    ///
    /// # Errors
    ///
    /// Returns [`AirFingerError::NotTrained`] before training.
    pub fn recognize(&self, trace: &RssTrace) -> Result<ExtendedLabel, AirFingerError> {
        let w = DataProcessor::new(self.config).primary_window(trace);
        self.recognize_window(&w)
    }

    fn label_of(&self, idx: usize) -> ExtendedLabel {
        match Gesture::from_index(idx) {
            Some(g) => ExtendedLabel::Builtin(g),
            None => {
                let k = (idx - Gesture::ALL.len()).min(self.custom_names.len().saturating_sub(1));
                ExtendedLabel::Custom(self.custom_names[k].clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airfinger_nir_sim::sampler::{Sampler, Scene};
    use airfinger_nir_sim::{SensorLayout, Vec3};
    use airfinger_synth::dataset::{generate_corpus, CorpusSpec};

    /// A "Z-swipe": a gesture the paper's set does not contain — two quick
    /// lateral strokes at different heights.
    fn z_swipe(seed: u64) -> RssTrace {
        let sampler = Sampler::new(Scene::new(SensorLayout::paper_prototype()), 100.0);
        sampler.sample(1.4, seed, |t| {
            let z = if t < 0.5 { 0.018 } else { 0.013 };
            let phase = (t * 2.5).fract();
            Some(Vec3::new(-0.008 + 0.016 * phase, 0.002, z))
        })
    }

    fn small_corpus() -> Corpus {
        generate_corpus(&CorpusSpec {
            users: 2,
            sessions: 1,
            reps: 3,
            ..Default::default()
        })
    }

    #[test]
    fn learns_custom_gesture_alongside_builtins() {
        let config = AirFingerConfig {
            forest_trees: 25,
            ..Default::default()
        };
        let mut rec = CustomRecognizer::new(config);
        let examples: Vec<RssTrace> = (0..6).map(z_swipe).collect();
        rec.train(&small_corpus(), &[("z-swipe".into(), examples)])
            .unwrap();
        assert!(rec.is_trained());
        // A fresh z-swipe is recognized as the custom gesture.
        let got = rec.recognize(&z_swipe(99)).unwrap();
        assert_eq!(got, ExtendedLabel::Custom("z-swipe".into()));
        // Built-ins still recognized.
        let corpus = small_corpus();
        let mut correct = 0;
        let mut total = 0;
        for s in corpus.samples().iter().take(24) {
            total += 1;
            if rec.recognize(&s.trace).unwrap()
                == ExtendedLabel::Builtin(s.label.gesture().unwrap())
            {
                correct += 1;
            }
        }
        assert!(
            correct * 10 >= total * 7,
            "builtin accuracy {correct}/{total}"
        );
    }

    #[test]
    fn rejects_empty_examples() {
        let config = AirFingerConfig {
            forest_trees: 10,
            ..Default::default()
        };
        let mut rec = CustomRecognizer::new(config);
        let err = rec.train(&small_corpus(), &[("ghost".into(), vec![])]);
        assert!(matches!(err, Err(AirFingerError::InvalidTrainingData(_))));
    }

    #[test]
    fn rejects_duplicate_names() {
        let config = AirFingerConfig {
            forest_trees: 10,
            ..Default::default()
        };
        let mut rec = CustomRecognizer::new(config);
        let err = rec.train(
            &small_corpus(),
            &[
                ("a".into(), vec![z_swipe(1)]),
                ("a".into(), vec![z_swipe(2)]),
            ],
        );
        assert!(matches!(err, Err(AirFingerError::InvalidTrainingData(_))));
    }

    #[test]
    fn untrained_errors() {
        let rec = CustomRecognizer::new(AirFingerConfig::default());
        assert!(matches!(
            rec.recognize(&z_swipe(1)),
            Err(AirFingerError::NotTrained)
        ));
    }

    #[test]
    fn display_formats() {
        assert_eq!(ExtendedLabel::Builtin(Gesture::Rub).to_string(), "rub");
        assert_eq!(
            ExtendedLabel::Custom("wave".into()).to_string(),
            "custom:wave"
        );
    }
}
