//! The ZEBRA tracking algorithm (§IV-D, Alg. 1): scroll direction,
//! velocity and displacement from per-photodiode ascent ordering.
//!
//! * **Direction** `α`: if `P1` ascends before `P3` (or only `P1`
//!   ascends), the gesture is *scroll up* (`α = 1`); the mirror case is
//!   *scroll down* (`α = −1`).
//! * **Velocity**: the `P1`–`P3` physical baseline is fixed, so
//!   `v = baseline / Δt` when both ascents exist; otherwise the
//!   experience velocity `v′` (80 mm/s) is assigned.
//! * **Displacement**: `D_t = α · v · min{t, T}` with `T` the gesture
//!   duration — queryable in real time at any `t`.

use crate::config::AirFingerConfig;
use crate::processing::GestureWindow;
use serde::{Deserialize, Serialize};

/// Scroll direction `α`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScrollDirection {
    /// `α = 1`: passes `P1` before `P3`.
    Up,
    /// `α = −1`: passes `P3` before `P1`.
    Down,
}

impl ScrollDirection {
    /// The sign `α`.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        match self {
            ScrollDirection::Up => 1.0,
            ScrollDirection::Down => -1.0,
        }
    }

    /// Display name matching the paper.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ScrollDirection::Up => "scroll up",
            ScrollDirection::Down => "scroll down",
        }
    }
}

impl std::fmt::Display for ScrollDirection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How the velocity was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VelocitySource {
    /// Measured from the `Δt` between outer-photodiode ascents.
    Measured,
    /// Assigned from experience (`v′`) because `Δt` was incalculable.
    Experience,
}

/// A tracked scroll gesture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScrollTrack {
    /// Direction `α`.
    pub direction: ScrollDirection,
    /// Scroll velocity in mm/s.
    pub velocity_mm_s: f64,
    /// Where the velocity came from.
    pub velocity_source: VelocitySource,
    /// Ascent time gap `Δt` in seconds, when measurable.
    pub delta_t_s: Option<f64>,
    /// Total gesture duration `T` in seconds.
    pub duration_s: f64,
}

impl ScrollTrack {
    /// Displacement `D_t = α · v · min{t, T}` in millimeters at time `t`
    /// seconds after the gesture start.
    ///
    /// # Panics
    ///
    /// Panics if `t` is negative.
    #[must_use]
    pub fn displacement_mm(&self, t: f64) -> f64 {
        assert!(t >= 0.0, "time must be non-negative");
        self.direction.alpha() * self.velocity_mm_s * t.min(self.duration_s)
    }

    /// Final displacement at the end of the gesture.
    #[must_use]
    pub fn total_displacement_mm(&self) -> f64 {
        self.displacement_mm(self.duration_s)
    }
}

/// The ZEBRA tracker.
#[derive(Debug, Clone, Copy)]
pub struct Zebra {
    config: AirFingerConfig,
}

impl Zebra {
    /// Create a tracker with `config`.
    #[must_use]
    pub fn new(config: AirFingerConfig) -> Self {
        Zebra { config }
    }

    /// Track a gesture window. Returns `None` when no photodiode-crossing
    /// order can be established (nothing crossed the board).
    #[must_use]
    pub fn track(&self, window: &GestureWindow) -> Option<ScrollTrack> {
        let timing = window.channel_timing(&self.config);
        let n = timing.active.len();
        if n < 2 {
            return None;
        }
        let duration_s = window.duration_s();
        let rate = window.sample_rate_hz;
        let make = |direction, dt: Option<f64>, baseline_m: f64| {
            let (velocity_mm_s, velocity_source) = match dt {
                Some(d) if d > 0.0 => (baseline_m * 1000.0 / d, VelocitySource::Measured),
                _ => (self.config.v_prime_mm_s, VelocitySource::Experience),
            };
            ScrollTrack {
                direction,
                velocity_mm_s,
                velocity_source,
                delta_t_s: dt.filter(|d| *d > 0.0),
                duration_s,
            }
        };
        match (timing.first_active, timing.last_active, timing.lag_samples) {
            // Alg. 1 lines 8–13 / 20–25: two crossings → order gives α,
            // Δt gives v over the physical span between those photodiodes.
            (Some(i), Some(j), Some(lag)) if i != j && lag != 0 => {
                let dt = lag.unsigned_abs() as f64 / rate / self.config.lag_calibration;
                let span = self.config.pd_baseline_m * (j - i) as f64 / (n - 1) as f64;
                let direction = if lag > 0 {
                    ScrollDirection::Up
                } else {
                    ScrollDirection::Down
                };
                Some(make(direction, Some(dt), span))
            }
            // Lines 2–7 / 14–19: only one outer photodiode crossed →
            // direction from which one, velocity from experience v′.
            (Some(i), Some(j), _) if i == j && i == 0 => Some(make(ScrollDirection::Up, None, 0.0)),
            (Some(i), Some(j), _) if i == j && i == n - 1 => {
                Some(make(ScrollDirection::Down, None, 0.0))
            }
            // Zero lag or no active channels: not a scroll.
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::processing::GestureWindow;
    use airfinger_dsp::segment::Segment;

    /// Build a 3-channel window with Gaussian energy bumps centered at the
    /// given samples (None = channel stays at the noise floor).
    fn window_with_bumps(centers: [Option<usize>; 3], n: usize) -> GestureWindow {
        let delta: Vec<Vec<f64>> = centers
            .iter()
            .map(|c| {
                (0..n)
                    .map(|i| match c {
                        Some(center) => {
                            let d = (i as f64 - *center as f64) / 8.0;
                            120.0 * (-d * d).exp()
                        }
                        None => 0.5,
                    })
                    .collect()
            })
            .collect();
        GestureWindow {
            segment: Segment::new(0, n),
            raw: delta.clone(),
            delta,
            thresholds: vec![10.0; 3],
            sample_rate_hz: 100.0,
        }
    }

    fn zebra() -> Zebra {
        // Synthetic bump envelopes have no cone overlap, so their centroid
        // lag IS the true crossing time: disable the geometric calibration.
        Zebra::new(AirFingerConfig {
            lag_calibration: 1.0,
            ..Default::default()
        })
    }

    #[test]
    fn p1_before_p3_is_scroll_up_with_measured_velocity() {
        // Lag = 40 samples = 0.4 s over the 20 mm P1-P3 baseline -> 50 mm/s.
        let w = window_with_bumps([Some(30), Some(50), Some(70)], 140);
        let t = zebra().track(&w).unwrap();
        assert_eq!(t.direction, ScrollDirection::Up);
        assert_eq!(t.velocity_source, VelocitySource::Measured);
        assert!(
            (t.velocity_mm_s - 50.0).abs() < 8.0,
            "v = {}",
            t.velocity_mm_s
        );
        let dt = t.delta_t_s.unwrap();
        assert!((dt - 0.4).abs() < 0.05, "dt = {dt}");
    }

    #[test]
    fn p3_before_p1_is_scroll_down() {
        let w = window_with_bumps([Some(70), Some(50), Some(30)], 140);
        let t = zebra().track(&w).unwrap();
        assert_eq!(t.direction, ScrollDirection::Down);
        assert_eq!(t.velocity_source, VelocitySource::Measured);
    }

    #[test]
    fn only_p1_is_scroll_up_at_v_prime() {
        let w = window_with_bumps([Some(30), None, None], 100);
        let t = zebra().track(&w).unwrap();
        assert_eq!(t.direction, ScrollDirection::Up);
        assert_eq!(t.velocity_source, VelocitySource::Experience);
        assert_eq!(t.velocity_mm_s, 80.0);
        assert_eq!(t.delta_t_s, None);
    }

    #[test]
    fn only_p3_is_scroll_down_at_v_prime() {
        let w = window_with_bumps([None, None, Some(30)], 100);
        let t = zebra().track(&w).unwrap();
        assert_eq!(t.direction, ScrollDirection::Down);
        assert_eq!(t.velocity_source, VelocitySource::Experience);
    }

    #[test]
    fn no_active_channel_is_not_a_scroll() {
        assert!(zebra()
            .track(&window_with_bumps([None, None, None], 100))
            .is_none());
    }

    #[test]
    fn lone_middle_channel_is_not_a_scroll() {
        assert!(zebra()
            .track(&window_with_bumps([None, Some(40), None], 100))
            .is_none());
    }

    #[test]
    fn simultaneous_channels_rejected() {
        let w = window_with_bumps([Some(50), Some(50), Some(50)], 120);
        assert!(zebra().track(&w).is_none());
    }

    #[test]
    fn partial_scroll_p1_p2_uses_half_baseline() {
        // Finger crosses P1 then P2 but never reaches P3: the measured
        // span is half the P1-P3 baseline.
        let w = window_with_bumps([Some(30), Some(50), None], 120);
        let t = zebra().track(&w).unwrap();
        assert_eq!(t.direction, ScrollDirection::Up);
        // 10 mm over 0.2 s -> 50 mm/s.
        assert!(
            (t.velocity_mm_s - 50.0).abs() < 10.0,
            "v = {}",
            t.velocity_mm_s
        );
    }

    #[test]
    fn displacement_is_odd_in_direction() {
        let up = zebra()
            .track(&window_with_bumps([Some(30), Some(50), Some(70)], 140))
            .unwrap();
        let down = zebra()
            .track(&window_with_bumps([Some(70), Some(50), Some(30)], 140))
            .unwrap();
        assert!((up.displacement_mm(0.3) + down.displacement_mm(0.3)).abs() < 1e-9);
    }

    #[test]
    fn displacement_saturates_at_duration() {
        let w = window_with_bumps([Some(30), Some(50), Some(70)], 140); // T = 1.4 s
        let t = zebra().track(&w).unwrap();
        assert_eq!(t.displacement_mm(5.0), t.displacement_mm(t.duration_s));
        assert_eq!(t.total_displacement_mm(), t.displacement_mm(1.4));
    }

    #[test]
    fn displacement_monotone_before_duration() {
        let w = window_with_bumps([Some(30), Some(50), Some(70)], 140);
        let t = zebra().track(&w).unwrap();
        let mut prev = 0.0;
        for k in 1..=8 {
            let d = t.displacement_mm(0.1 * k as f64);
            assert!(d >= prev);
            prev = d;
        }
    }

    #[test]
    fn faster_scroll_measures_higher_velocity() {
        let slow = zebra()
            .track(&window_with_bumps([Some(20), Some(60), Some(100)], 160))
            .unwrap();
        let fast = zebra()
            .track(&window_with_bumps([Some(60), Some(70), Some(80)], 160))
            .unwrap();
        assert!(fast.velocity_mm_s > slow.velocity_mm_s);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_panics() {
        let w = window_with_bumps([Some(30), Some(50), Some(70)], 140);
        let t = zebra().track(&w).unwrap();
        let _ = t.displacement_mm(-1.0);
    }
}
