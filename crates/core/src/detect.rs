//! Gesture recognition (§IV-C): Table-I features over the processed
//! window, classified by a random forest.
//!
//! The recognizer covers **all eight** gestures: the six detect-aimed
//! classes plus the two scrolls. Routing a window to ZEBRA via the
//! recognized class (rather than the raw `I_g` ascent rule, which is also
//! implemented in [`crate::distinguish`]) is a robustness substitution:
//! on the simulated optics the wide photodiode cones overlap enough that a
//! micro gesture's per-channel envelope phases mimic small travel lags,
//! while the forest sees the whole multi-channel shape.

use crate::config::AirFingerConfig;
use crate::error::AirFingerError;
use crate::processing::GestureWindow;
use airfinger_features::FeatureExtractor;
use airfinger_ml::classifier::Classifier;
use airfinger_ml::forest::{RandomForest, RandomForestConfig};
use airfinger_synth::gesture::Gesture;
use serde::{Deserialize, Serialize};

/// Build the recognition feature vector of a window.
///
/// §IV-C1: "features based on specific RSS values are not appropriate for
/// classification" because amplitude varies with the user's finger
/// position and habits. Each channel's `ΔRSS²` is therefore normalized by
/// the window's global peak before the Table-I bank runs (shape features
/// become user-invariant), and a small set of explicitly scale-bearing
/// descriptors is appended: the window duration, the log global energy,
/// and each channel's share of that energy (the cross-channel energy
/// pattern encodes where over the board the gesture happened).
#[must_use]
pub fn prepare_features(extractor: &FeatureExtractor, window: &GestureWindow) -> Vec<f64> {
    let global_peak = window
        .delta
        .iter()
        .flat_map(|c| c.iter())
        .fold(0.0f64, |m, &v| m.max(v))
        .max(f64::MIN_POSITIVE);
    let normalized: Vec<Vec<f64>> = window
        .delta
        .iter()
        .map(|c| c.iter().map(|v| v / global_peak).collect())
        .collect();
    let mut out = extractor.extract_multi(&normalized);
    // ΔRSS² is non-negative by construction, but windows built by callers
    // may carry arbitrary data: clamp energies at zero before forming
    // shares so hostile inputs cannot produce non-finite features.
    let energies: Vec<f64> = window
        .delta
        .iter()
        .map(|c| c.iter().map(|v| v.max(0.0)).sum::<f64>())
        .collect();
    let total: f64 = energies.iter().sum::<f64>().max(f64::MIN_POSITIVE);
    out.push(window.duration_s());
    out.push(total.ln());
    for e in &energies {
        out.push(e / total);
    }
    out.into_iter()
        .map(|v| if v.is_finite() { v } else { 0.0 })
        .collect()
}

/// Number of scale-bearing descriptors [`prepare_features`] appends after
/// the per-channel feature bank.
#[must_use]
pub fn extra_feature_count(channel_count: usize) -> usize {
    2 + channel_count
}

/// Recognizer for the eight gestures.
///
/// Labels are gesture indices `0..8` in [`Gesture::ALL`] order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectRecognizer {
    extractor: FeatureExtractor,
    forest: RandomForest,
    trained: bool,
}

impl DetectRecognizer {
    /// Create an untrained recognizer using the full Table-I feature bank.
    #[must_use]
    pub fn new(config: &AirFingerConfig) -> Self {
        DetectRecognizer {
            extractor: FeatureExtractor::table1(),
            forest: RandomForest::new(RandomForestConfig {
                n_trees: config.forest_trees,
                seed: config.train_seed,
                n_threads: config.n_threads,
                ..Default::default()
            }),
            trained: false,
        }
    }

    /// The feature extractor in use.
    #[must_use]
    pub fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    /// Whether [`DetectRecognizer::train`] has succeeded.
    #[must_use]
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Feature vector of a window (see [`prepare_features`]).
    #[must_use]
    pub fn features(&self, window: &GestureWindow) -> Vec<f64> {
        prepare_features(&self.extractor, window)
    }

    /// Train from precomputed feature vectors (labels are gesture indices).
    ///
    /// # Errors
    ///
    /// Propagates classifier errors (empty/ragged/non-finite data).
    pub fn train_features(&mut self, x: &[Vec<f64>], y: &[usize]) -> Result<(), AirFingerError> {
        self.forest.fit(x, y)?;
        self.trained = true;
        Ok(())
    }

    /// Train from gesture windows.
    ///
    /// # Errors
    ///
    /// Propagates classifier errors.
    pub fn train(
        &mut self,
        windows: &[GestureWindow],
        labels: &[usize],
    ) -> Result<(), AirFingerError> {
        let x: Vec<Vec<f64>> = windows.iter().map(|w| self.features(w)).collect();
        self.train_features(&x, labels)
    }

    /// Predict the gesture index of a window.
    ///
    /// # Errors
    ///
    /// Returns [`AirFingerError::NotTrained`] before training.
    // lint: hot-path-root — hosts the features/rf_predict stage spans
    pub fn predict_index(&self, window: &GestureWindow) -> Result<usize, AirFingerError> {
        if !self.trained {
            return Err(AirFingerError::NotTrained);
        }
        let features = {
            let _s =
                airfinger_obs::span!("pipeline_stage_seconds", stage = "features").with_latency(
                    airfinger_obs::latency!("pipeline_stage_ns", stage = "features"),
                );
            self.features(window)
        };
        let _s = airfinger_obs::span!("pipeline_stage_seconds", stage = "rf_predict").with_latency(
            airfinger_obs::latency!("pipeline_stage_ns", stage = "rf_predict"),
        );
        Ok(self.forest.predict(&features)?)
    }

    /// Predict the gesture index from a precomputed feature row (the
    /// counterpart of [`DetectRecognizer::train_features`]).
    ///
    /// # Errors
    ///
    /// Returns [`AirFingerError::NotTrained`] before training and
    /// propagates classifier errors on width mismatch.
    pub fn predict_features(&self, features: &[f64]) -> Result<usize, AirFingerError> {
        if !self.trained {
            return Err(AirFingerError::NotTrained);
        }
        Ok(self.forest.predict(features)?)
    }

    /// Predict gesture indices for many precomputed feature rows in one
    /// matrix-shaped forest pass. Row `i` of the result is exactly
    /// [`DetectRecognizer::predict_features`] of row `i` of the input —
    /// the forest's batch path is pinned bit-identical to its serial path
    /// at any thread count — which is what lets the fleet serving layer
    /// batch inference across sessions without changing any result.
    ///
    /// # Errors
    ///
    /// Returns [`AirFingerError::NotTrained`] before training and
    /// propagates classifier errors on width mismatch.
    pub fn predict_features_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<usize>, AirFingerError> {
        if !self.trained {
            return Err(AirFingerError::NotTrained);
        }
        Ok(self.forest.predict_batch(xs)?)
    }

    /// Predict the gesture of a window.
    ///
    /// # Errors
    ///
    /// Returns [`AirFingerError::NotTrained`] before training.
    pub fn predict(&self, window: &GestureWindow) -> Result<Gesture, AirFingerError> {
        let idx = self.predict_index(window)?;
        Gesture::from_index(idx.min(Gesture::ALL.len() - 1)).ok_or(AirFingerError::Ml(
            airfinger_ml::MlError::InvalidData("predicted label outside the gesture set"),
        ))
    }

    /// Feature importances of the trained forest (empty before training),
    /// aligned with [`DetectRecognizer::feature_names`].
    #[must_use]
    pub fn feature_importances(&self) -> &[f64] {
        self.forest.feature_importances()
    }

    /// Names of the multi-channel feature scalars for `channel_count`
    /// photodiodes, including the appended scale descriptors.
    #[must_use]
    pub fn feature_names(&self, channel_count: usize) -> Vec<String> {
        let mut names = self.extractor.names_multi(channel_count);
        names.push("duration_s".into());
        names.push("log_total_energy".into());
        for ch in 0..channel_count {
            names.push(format!("p{ch}_energy_share"));
        }
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airfinger_dsp::segment::Segment;

    /// Tiny synthetic windows: class 0 has one energy bump, class 1 two.
    fn toy_window(class: usize, jitter: usize) -> GestureWindow {
        let n = 100;
        let mut delta = vec![0.0; n];
        let bump = |d: &mut Vec<f64>, at: usize| {
            for i in 0..20 {
                d[at + i] = 50.0 * ((i as f64 / 20.0) * std::f64::consts::PI).sin();
            }
        };
        bump(&mut delta, 10 + jitter);
        if class == 1 {
            bump(&mut delta, 60 + jitter);
        }
        let chans = vec![delta.clone(), delta.clone(), delta];
        GestureWindow {
            segment: Segment::new(0, n),
            raw: chans.clone(),
            delta: chans,
            thresholds: vec![10.0; 3],
            sample_rate_hz: 100.0,
        }
    }

    #[test]
    fn learns_toy_classes() {
        let cfg = AirFingerConfig {
            forest_trees: 15,
            ..Default::default()
        };
        let mut rec = DetectRecognizer::new(&cfg);
        let windows: Vec<GestureWindow> = (0..20).map(|i| toy_window(i % 2, i / 2)).collect();
        let labels: Vec<usize> = (0..20).map(|i| i % 2).collect();
        rec.train(&windows, &labels).unwrap();
        assert!(rec.is_trained());
        for (w, &l) in windows.iter().zip(&labels) {
            assert_eq!(rec.predict_index(w).unwrap(), l);
        }
    }

    #[test]
    fn predict_maps_to_detect_gestures() {
        let cfg = AirFingerConfig {
            forest_trees: 10,
            ..Default::default()
        };
        let mut rec = DetectRecognizer::new(&cfg);
        let windows: Vec<GestureWindow> = (0..12).map(|i| toy_window(i % 2, i / 2)).collect();
        let labels: Vec<usize> = (0..12).map(|i| i % 2).collect();
        rec.train(&windows, &labels).unwrap();
        let g = rec.predict(&toy_window(0, 3)).unwrap();
        assert_eq!(g, Gesture::Circle); // detect index 0
    }

    #[test]
    fn untrained_errors() {
        let rec = DetectRecognizer::new(&AirFingerConfig::default());
        assert_eq!(
            rec.predict_index(&toy_window(0, 0)),
            Err(AirFingerError::NotTrained)
        );
    }

    #[test]
    fn feature_vector_width_is_channels_times_bank() {
        let rec = DetectRecognizer::new(&AirFingerConfig::default());
        let w = toy_window(0, 0);
        let f = rec.features(&w);
        assert_eq!(f.len(), 3 * rec.extractor().len() + extra_feature_count(3));
        assert_eq!(rec.feature_names(3).len(), f.len());
    }

    #[test]
    fn importances_populate_after_training() {
        let cfg = AirFingerConfig {
            forest_trees: 8,
            ..Default::default()
        };
        let mut rec = DetectRecognizer::new(&cfg);
        assert!(rec.feature_importances().is_empty());
        let windows: Vec<GestureWindow> = (0..10).map(|i| toy_window(i % 2, i / 2)).collect();
        let labels: Vec<usize> = (0..10).map(|i| i % 2).collect();
        rec.train(&windows, &labels).unwrap();
        assert_eq!(
            rec.feature_importances().len(),
            3 * rec.extractor().len() + extra_feature_count(3)
        );
    }
}
