//! Error types for the airFinger pipeline.

use airfinger_ml::MlError;
use std::error::Error;
use std::fmt;

/// Errors produced by pipeline training and recognition.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AirFingerError {
    /// A classifier stage failed.
    Ml(MlError),
    /// Recognition was requested before the pipeline was trained.
    NotTrained,
    /// Training data was empty or inconsistent.
    InvalidTrainingData(&'static str),
    /// The configuration failed validation.
    InvalidConfig(String),
}

impl fmt::Display for AirFingerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AirFingerError::Ml(e) => write!(f, "classifier error: {e}"),
            AirFingerError::NotTrained => write!(f, "pipeline has not been trained"),
            AirFingerError::InvalidTrainingData(what) => {
                write!(f, "invalid training data: {what}")
            }
            AirFingerError::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
        }
    }
}

impl Error for AirFingerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AirFingerError::Ml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MlError> for AirFingerError {
    fn from(e: MlError) -> Self {
        AirFingerError::Ml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_ml_error_with_source() {
        let e = AirFingerError::from(MlError::NotFitted);
        assert!(e.to_string().contains("classifier error"));
        assert!(e.source().is_some());
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<AirFingerError>();
    }
}
