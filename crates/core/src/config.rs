//! Pipeline configuration: every tunable of §IV/§V-A in one place.

use airfinger_dsp::segment::SegmenterConfig;
use serde::{Deserialize, Serialize};

/// Configuration of the airFinger pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AirFingerConfig {
    /// ADC sampling rate in Hz (prototype: 100 Hz).
    pub sample_rate_hz: f64,
    /// SBC window `w` in samples (paper: 10 ms = 1 sample at 100 Hz).
    pub sbc_window: usize,
    /// Segmenter settings (`t_e` merge gap, debounce, padding).
    pub segmenter: SegmenterConfig,
    /// Initial dynamic threshold `I'_seg` (paper: 10).
    pub initial_threshold: f64,
    /// Dynamic-threshold forgetting factor in `(0, 1]`.
    pub threshold_forget: f64,
    /// Family-distinguishing threshold `I_g` in milliseconds (paper: 30 ms):
    /// ascent spread below it ⇒ detect-aimed, above ⇒ track-aimed.
    pub ig_ms: f64,
    /// Consecutive above-threshold samples required to confirm an ascent.
    pub ascent_confirm: usize,
    /// Experience velocity `v'` in mm/s used when `Δt` is incalculable
    /// (paper §V-G: 80 mm/s).
    pub v_prime_mm_s: f64,
    /// Physical `P1`–`P3` baseline in meters (prototype: 20 mm).
    pub pd_baseline_m: f64,
    /// Geometric lag calibration: the envelope-centroid lag underestimates
    /// the true photodiode-crossing time because the acceptance cones
    /// overlap; `Δt = lag / lag_calibration`. Measured once for the
    /// prototype layout against known sweeps (≈ 0.6).
    pub lag_calibration: f64,
    /// Trees in the recognition forests.
    pub forest_trees: usize,
    /// RNG seed for classifier training.
    pub train_seed: u64,
    /// Worker threads for training-time parallelism (forest construction
    /// and corpus feature extraction); 0 = resolve from the
    /// `AIRFINGER_THREADS` environment variable or the machine's core
    /// count. The thread count never changes results.
    pub n_threads: usize,
}

impl Default for AirFingerConfig {
    fn default() -> Self {
        AirFingerConfig {
            sample_rate_hz: 100.0,
            sbc_window: 1,
            // t_e = 100 ms merge gap, 80 ms debounce (a smoothed hardware spike
            // spans ~60 ms; the briefest real gesture burst spans well over
            // 100 ms), 80 ms padding so each
            // window carries idle margin for noise-floor estimation.
            segmenter: SegmenterConfig {
                merge_gap: 10,
                min_len: 8,
                pad: 8,
            },
            initial_threshold: 10.0,
            threshold_forget: 0.9995,
            ig_ms: 30.0,
            ascent_confirm: 2,
            v_prime_mm_s: 80.0,
            pd_baseline_m: 0.02,
            lag_calibration: 0.6,
            forest_trees: 100,
            train_seed: 0xA1F1,
            n_threads: 0,
        }
    }
}

impl AirFingerConfig {
    /// `I_g` converted to samples at the configured rate.
    #[must_use]
    pub fn ig_samples(&self) -> usize {
        (self.ig_ms / 1000.0 * self.sample_rate_hz).round() as usize
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.sample_rate_hz <= 0.0 {
            return Err("sample_rate_hz must be positive".into());
        }
        if self.sbc_window == 0 {
            return Err("sbc_window must be at least 1".into());
        }
        if !(0.0 < self.threshold_forget && self.threshold_forget <= 1.0) {
            return Err("threshold_forget must be in (0, 1]".into());
        }
        if self.ig_ms <= 0.0 {
            return Err("ig_ms must be positive".into());
        }
        if self.ascent_confirm == 0 {
            return Err("ascent_confirm must be at least 1".into());
        }
        if self.pd_baseline_m <= 0.0 {
            return Err("pd_baseline_m must be positive".into());
        }
        if self.lag_calibration <= 0.0 || self.lag_calibration > 1.5 {
            return Err("lag_calibration must be in (0, 1.5]".into());
        }
        if self.forest_trees == 0 {
            return Err("forest_trees must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = AirFingerConfig::default();
        assert_eq!(c.sample_rate_hz, 100.0);
        assert_eq!(c.sbc_window, 1); // w = 10 ms at 100 Hz
        assert_eq!(c.segmenter.merge_gap, 10); // t_e = 100 ms
        assert_eq!(c.ig_ms, 30.0);
        assert_eq!(c.v_prime_mm_s, 80.0);
        assert_eq!(c.initial_threshold, 10.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn ig_samples_at_100hz() {
        assert_eq!(AirFingerConfig::default().ig_samples(), 3);
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let bad = [
            AirFingerConfig {
                sbc_window: 0,
                ..Default::default()
            },
            AirFingerConfig {
                threshold_forget: 1.5,
                ..Default::default()
            },
            AirFingerConfig {
                forest_trees: 0,
                ..Default::default()
            },
            AirFingerConfig {
                lag_calibration: 0.0,
                ..Default::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err(), "{c:?}");
        }
    }

    #[test]
    fn serde_roundtrip() {
        let c = AirFingerConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<AirFingerConfig>(&json).unwrap(), c);
    }
}
