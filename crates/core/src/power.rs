//! Adaptive duty cycling — the §VI "Energy and Storage" proposal: "we
//! could optimize hardware design and recognition algorithms to further
//! reduce power-consuming".
//!
//! The governor watches the streaming engine's activity. While gestures
//! are arriving the LEDs run at full duty; after a quiet period they drop
//! to a low-duty sentinel mode (bright enough to *detect* motion onset,
//! not to classify), and any activity snaps them back to full power. The
//! energy ledger integrates the sensor's power budget over the actual duty
//! profile, so the saving is measurable.

use airfinger_nir_sim::layout::SensorLayout;
use airfinger_nir_sim::power::PowerBudget;
use serde::{Deserialize, Serialize};

/// Governor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerGovernorConfig {
    /// Seconds of quiet before dropping to sentinel mode.
    pub idle_after_s: f64,
    /// LED duty in sentinel mode, in `[0, 1]`.
    pub sentinel_duty: f64,
    /// LED duty while active.
    pub active_duty: f64,
}

impl Default for PowerGovernorConfig {
    fn default() -> Self {
        PowerGovernorConfig {
            idle_after_s: 3.0,
            sentinel_duty: 0.15,
            active_duty: 1.0,
        }
    }
}

/// Current operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PowerMode {
    /// Full LED duty: gestures can be classified.
    Active,
    /// Low LED duty: only watching for motion onset.
    Sentinel,
}

/// The adaptive duty-cycle governor with an energy ledger.
///
/// # Example
///
/// ```
/// use airfinger_core::power::{PowerGovernor, PowerGovernorConfig, PowerMode};
/// use airfinger_nir_sim::SensorLayout;
///
/// let mut governor = PowerGovernor::new(
///     SensorLayout::paper_prototype(),
///     PowerGovernorConfig { idle_after_s: 1.0, ..Default::default() },
/// );
/// for _ in 0..200 {
///     governor.tick(0.01, false); // 2 s of quiet
/// }
/// assert_eq!(governor.mode(), PowerMode::Sentinel);
/// assert!(governor.savings_fraction() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct PowerGovernor {
    config: PowerGovernorConfig,
    layout: SensorLayout,
    mode: PowerMode,
    since_activity_s: f64,
    energy_j: f64,
    baseline_energy_j: f64,
    elapsed_s: f64,
}

impl PowerGovernor {
    /// Create a governor for `layout`.
    ///
    /// # Panics
    ///
    /// Panics if duties are outside `[0, 1]` or `idle_after_s` is negative.
    #[must_use]
    pub fn new(layout: SensorLayout, config: PowerGovernorConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.sentinel_duty),
            "sentinel duty in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&config.active_duty),
            "active duty in [0, 1]"
        );
        assert!(
            config.idle_after_s >= 0.0,
            "idle threshold must be non-negative"
        );
        PowerGovernor {
            config,
            layout,
            mode: PowerMode::Active,
            since_activity_s: 0.0,
            energy_j: 0.0,
            baseline_energy_j: 0.0,
            elapsed_s: 0.0,
        }
    }

    /// Current mode.
    #[must_use]
    pub fn mode(&self) -> PowerMode {
        self.mode
    }

    /// The LED duty the sensor should run at right now.
    #[must_use]
    pub fn led_duty(&self) -> f64 {
        match self.mode {
            PowerMode::Active => self.config.active_duty,
            PowerMode::Sentinel => self.config.sentinel_duty,
        }
    }

    /// Advance the ledger by `dt` seconds, reporting whether the streaming
    /// engine currently sees gesture activity.
    pub fn tick(&mut self, dt: f64, active: bool) {
        if active {
            self.since_activity_s = 0.0;
            self.mode = PowerMode::Active;
        } else {
            self.since_activity_s += dt;
            if self.since_activity_s >= self.config.idle_after_s {
                self.mode = PowerMode::Sentinel;
            }
        }
        let budget = PowerBudget::for_layout(&self.layout, self.led_duty());
        let full = PowerBudget::for_layout(&self.layout, self.config.active_duty);
        self.energy_j += budget.total_w() * dt;
        self.baseline_energy_j += full.total_w() * dt;
        self.elapsed_s += dt;
    }

    /// Energy consumed so far in joules (governed profile).
    #[must_use]
    pub fn energy_j(&self) -> f64 {
        self.energy_j
    }

    /// Energy an always-active sensor would have consumed in the same time.
    #[must_use]
    pub fn baseline_energy_j(&self) -> f64 {
        self.baseline_energy_j
    }

    /// Fraction of the always-on energy saved so far, in `[0, 1]`.
    #[must_use]
    pub fn savings_fraction(&self) -> f64 {
        if self.baseline_energy_j <= 0.0 {
            return 0.0;
        }
        1.0 - self.energy_j / self.baseline_energy_j
    }

    /// Elapsed governed time in seconds.
    #[must_use]
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn governor() -> PowerGovernor {
        PowerGovernor::new(
            SensorLayout::paper_prototype(),
            PowerGovernorConfig::default(),
        )
    }

    #[test]
    fn starts_active() {
        assert_eq!(governor().mode(), PowerMode::Active);
    }

    #[test]
    fn drops_to_sentinel_after_idle() {
        let mut g = governor();
        for _ in 0..350 {
            g.tick(0.01, false); // 3.5 s of quiet
        }
        assert_eq!(g.mode(), PowerMode::Sentinel);
        assert!(g.led_duty() < 0.2);
    }

    #[test]
    fn activity_wakes_immediately() {
        let mut g = governor();
        for _ in 0..400 {
            g.tick(0.01, false);
        }
        assert_eq!(g.mode(), PowerMode::Sentinel);
        g.tick(0.01, true);
        assert_eq!(g.mode(), PowerMode::Active);
        assert_eq!(g.led_duty(), 1.0);
    }

    #[test]
    fn idle_session_saves_most_led_energy() {
        let mut g = governor();
        // 60 s, one gesture burst at t = 10 s.
        for i in 0..6000 {
            let t = i as f64 * 0.01;
            g.tick(0.01, (10.0..11.0).contains(&t));
        }
        let saved = g.savings_fraction();
        assert!(saved > 0.4, "saved {saved:.2} of energy");
        assert!(g.energy_j() < g.baseline_energy_j());
    }

    #[test]
    fn busy_session_saves_nothing() {
        let mut g = governor();
        for _ in 0..1000 {
            g.tick(0.01, true);
        }
        assert!(g.savings_fraction().abs() < 1e-9);
    }

    #[test]
    fn ledger_tracks_elapsed_time() {
        let mut g = governor();
        for _ in 0..500 {
            g.tick(0.02, false);
        }
        assert!((g.elapsed_s() - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "sentinel duty")]
    fn bad_duty_panics() {
        let _ = PowerGovernor::new(
            SensorLayout::paper_prototype(),
            PowerGovernorConfig {
                sentinel_duty: 1.5,
                ..Default::default()
            },
        );
    }
}
