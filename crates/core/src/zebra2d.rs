//! Two-dimensional ZEBRA — tracking over the §VI cross-shaped board
//! (`SensorLayout::cross`): the x and y arms each run the 1-D ZEBRA
//! timing analysis, yielding a signed velocity per axis and therefore a
//! full 2-D swipe vector (speed + heading).
//!
//! Channel convention (matching `SensorLayout::cross`): channels
//! `0..arm_pds` are the x arm left→right; channels `arm_pds..` are the y
//! arm front→back, *excluding* the shared center photodiode (which is the
//! middle of the x arm).

use crate::config::AirFingerConfig;
use crate::processing::GestureWindow;
use crate::zebra::Zebra;
use serde::{Deserialize, Serialize};

/// A tracked 2-D swipe.
///
/// # Example
///
/// ```
/// use airfinger_core::zebra2d::Swipe2d;
///
/// let swipe = Swipe2d { vx_mm_s: 30.0, vy_mm_s: 40.0, duration_s: 0.5 };
/// assert_eq!(swipe.speed_mm_s(), 50.0);
/// assert_eq!(swipe.displacement_mm(0.25), (7.5, 10.0));
/// // Displacement saturates at the gesture duration.
/// assert_eq!(swipe.displacement_mm(9.0), swipe.displacement_mm(0.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Swipe2d {
    /// Signed velocity along the x arm in mm/s (positive = left→right).
    pub vx_mm_s: f64,
    /// Signed velocity along the y arm in mm/s (positive = front→back).
    pub vy_mm_s: f64,
    /// Gesture duration in seconds.
    pub duration_s: f64,
}

impl Swipe2d {
    /// Swipe speed in mm/s.
    #[must_use]
    pub fn speed_mm_s(&self) -> f64 {
        self.vx_mm_s.hypot(self.vy_mm_s)
    }

    /// Heading in radians, measured from the +x axis (`atan2(vy, vx)`).
    #[must_use]
    pub fn heading_rad(&self) -> f64 {
        self.vy_mm_s.atan2(self.vx_mm_s)
    }

    /// 2-D displacement (mm) at time `t` after gesture start, saturating
    /// at the gesture duration like the 1-D `D_t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is negative.
    #[must_use]
    pub fn displacement_mm(&self, t: f64) -> (f64, f64) {
        assert!(t >= 0.0, "time must be non-negative");
        let t = t.min(self.duration_s);
        (self.vx_mm_s * t, self.vy_mm_s * t)
    }
}

/// The 2-D tracker.
#[derive(Debug, Clone, Copy)]
pub struct Zebra2d {
    config: AirFingerConfig,
    arm_pds: usize,
}

impl Zebra2d {
    /// Create a tracker for a cross board with `arm_pds` photodiodes per
    /// arm (must be odd — the center is shared).
    ///
    /// # Panics
    ///
    /// Panics if `arm_pds` is even or below 3.
    #[must_use]
    pub fn new(config: AirFingerConfig, arm_pds: usize) -> Self {
        assert!(
            arm_pds >= 3 && arm_pds % 2 == 1,
            "cross arms need an odd count ≥ 3"
        );
        Zebra2d { config, arm_pds }
    }

    /// Extract the per-axis channel lists of a cross-board window.
    fn split_axes(&self, window: &GestureWindow) -> Option<(GestureWindow, GestureWindow)> {
        let n = self.arm_pds;
        let expected = 2 * n - 1;
        if window.channel_count() != expected {
            return None;
        }
        let center = n / 2;
        let x_idx: Vec<usize> = (0..n).collect();
        // y arm front→back with the shared center in the middle.
        let mut y_idx: Vec<usize> = (n..n + center).collect();
        y_idx.push(center);
        y_idx.extend(n + center..expected);
        let sub = |idx: &[usize]| GestureWindow {
            segment: window.segment,
            raw: idx.iter().map(|&i| window.raw[i].clone()).collect(),
            delta: idx.iter().map(|&i| window.delta[i].clone()).collect(),
            thresholds: idx
                .iter()
                .map(|&i| window.thresholds.get(i).copied().unwrap_or(0.0))
                .collect(),
            sample_rate_hz: window.sample_rate_hz,
        };
        Some((sub(&x_idx), sub(&y_idx)))
    }

    /// Track a window over the cross board. Returns `None` when neither
    /// axis shows a crossing.
    #[must_use]
    pub fn track(&self, window: &GestureWindow) -> Option<Swipe2d> {
        let (wx, wy) = self.split_axes(window)?;
        let zebra = Zebra::new(self.config);
        let axis_velocity = |w: &GestureWindow| -> f64 {
            match zebra.track(w) {
                Some(t) if t.delta_t_s.is_some() => t.direction.alpha() * t.velocity_mm_s,
                // Experience-velocity (single-PD) crossings keep their sign.
                Some(t) => t.direction.alpha() * t.velocity_mm_s,
                None => 0.0,
            }
        };
        let vx = axis_velocity(&wx);
        let vy = axis_velocity(&wy);
        if vx == 0.0 && vy == 0.0 {
            return None;
        }
        Some(Swipe2d {
            vx_mm_s: vx,
            vy_mm_s: vy,
            duration_s: window.duration_s(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::processing::DataProcessor;
    use airfinger_nir_sim::components::{LedSpec, PhotodiodeSpec};
    use airfinger_nir_sim::layout::SensorLayout;
    use airfinger_nir_sim::noise::NoiseModel;
    use airfinger_nir_sim::sampler::{Sampler, Scene};
    use airfinger_nir_sim::vec3::Vec3;

    fn cross_scene() -> Scene {
        let layout = SensorLayout::cross(3, 5.0e-3, LedSpec::ir304c94(), PhotodiodeSpec::pt304());
        Scene::new(layout).with_noise(NoiseModel::none())
    }

    /// Record a straight swipe across the cross board.
    fn swipe(dir: (f64, f64), seed: u64) -> GestureWindow {
        let sampler = Sampler::new(cross_scene(), 100.0);
        let trace = sampler.sample(1.4, seed, move |t| {
            // Hold 0.3 s, sweep 0.6 s, hold 0.5 s.
            let s = ((t - 0.3) / 0.6).clamp(0.0, 1.0);
            let span = 0.05;
            Some(Vec3::new(
                dir.0 * span * (s - 0.5),
                dir.1 * span * (s - 0.5),
                0.018,
            ))
        });
        DataProcessor::new(AirFingerConfig::default()).primary_window(&trace)
    }

    fn tracker() -> Zebra2d {
        Zebra2d::new(AirFingerConfig::default(), 3)
    }

    #[test]
    fn x_swipe_has_x_dominant_velocity() {
        let w = swipe((1.0, 0.0), 1);
        let s = tracker().track(&w).expect("tracked");
        assert!(s.vx_mm_s > 0.0, "vx {}", s.vx_mm_s);
        assert!(
            s.vx_mm_s.abs() > 2.0 * s.vy_mm_s.abs(),
            "vx {} vy {}",
            s.vx_mm_s,
            s.vy_mm_s
        );
    }

    #[test]
    fn reverse_x_swipe_flips_sign() {
        let w = swipe((-1.0, 0.0), 2);
        let s = tracker().track(&w).expect("tracked");
        assert!(s.vx_mm_s < 0.0, "vx {}", s.vx_mm_s);
    }

    #[test]
    fn y_swipe_has_y_dominant_velocity() {
        let w = swipe((0.0, 1.0), 3);
        let s = tracker().track(&w).expect("tracked");
        assert!(s.vy_mm_s > 0.0, "vy {}", s.vy_mm_s);
        assert!(
            s.vy_mm_s.abs() > 2.0 * s.vx_mm_s.abs(),
            "vx {} vy {}",
            s.vx_mm_s,
            s.vy_mm_s
        );
    }

    #[test]
    fn diagonal_swipe_heads_diagonally() {
        let d = std::f64::consts::FRAC_1_SQRT_2;
        let w = swipe((d, d), 4);
        let s = tracker().track(&w).expect("tracked");
        let heading = s.heading_rad().to_degrees();
        assert!(
            (10.0..80.0).contains(&heading),
            "heading {heading}° (vx {} vy {})",
            s.vx_mm_s,
            s.vy_mm_s
        );
    }

    #[test]
    fn displacement_saturates_and_scales() {
        let w = swipe((1.0, 0.0), 5);
        let s = tracker().track(&w).expect("tracked");
        let (dx1, _) = s.displacement_mm(s.duration_s / 2.0);
        let (dx2, _) = s.displacement_mm(s.duration_s * 4.0);
        assert!(dx2 > dx1);
        assert_eq!(
            s.displacement_mm(s.duration_s * 4.0),
            s.displacement_mm(s.duration_s)
        );
    }

    #[test]
    fn wrong_channel_count_is_none() {
        // A 3-channel (linear-board) window cannot be tracked in 2-D.
        let linear = GestureWindow {
            segment: airfinger_dsp::segment::Segment::new(0, 10),
            raw: vec![vec![0.0; 10]; 3],
            delta: vec![vec![0.0; 10]; 3],
            thresholds: vec![10.0; 3],
            sample_rate_hz: 100.0,
        };
        assert!(tracker().track(&linear).is_none());
    }

    #[test]
    #[should_panic(expected = "odd count")]
    fn even_arm_count_panics() {
        let _ = Zebra2d::new(AirFingerConfig::default(), 4);
    }
}
