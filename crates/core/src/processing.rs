//! *Data Processing* (§IV-B): SBC noise mitigation + dynamic-threshold
//! gesture segmentation, batch form.
//!
//! The batch processor takes a whole recording, applies SBC per channel,
//! computes one Otsu threshold per channel over the transformed trace, and
//! segments on combined multi-channel activity. Each resulting
//! [`GestureWindow`] carries both the raw RSS and the `ΔRSS²` slices per
//! channel — everything the downstream recognizers need.

use crate::config::AirFingerConfig;
use airfinger_dsp::sbc::Sbc;
use airfinger_dsp::segment::{Segment, Segmenter};
use airfinger_dsp::threshold::otsu_threshold;
use airfinger_nir_sim::trace::RssTrace;
use serde::{Deserialize, Serialize};

/// One segmented gesture candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GestureWindow {
    /// Sample range within the source trace.
    pub segment: Segment,
    /// Raw RSS per channel within the segment.
    pub raw: Vec<Vec<f64>>,
    /// `ΔRSS²` per channel within the segment.
    pub delta: Vec<Vec<f64>>,
    /// Per-channel segmentation thresholds in effect.
    pub thresholds: Vec<f64>,
    /// Sampling rate of the source trace.
    pub sample_rate_hz: f64,
}

impl GestureWindow {
    /// Window duration in seconds.
    #[must_use]
    pub fn duration_s(&self) -> f64 {
        self.segment.len() as f64 / self.sample_rate_hz
    }

    /// Number of channels.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.delta.len()
    }

    /// Per-channel gesture-energy envelopes: smoothed `ΔRSS²` minus the
    /// channel's noise floor (10th percentile), clamped at zero.
    #[must_use]
    pub fn envelopes(&self) -> Vec<Vec<f64>> {
        const SMOOTH_WINDOW: usize = 11;
        self.delta
            .iter()
            .map(|c| {
                let sm = airfinger_dsp::filter::moving_average(c, SMOOTH_WINDOW);
                let floor = airfinger_dsp::stats::quantile(&sm, 0.1).unwrap_or(0.0);
                sm.into_iter().map(|v| (v - floor).max(0.0)).collect()
            })
            .collect()
    }

    /// Cross-channel timing analysis: which photodiodes the gesture
    /// activated, and the time lag between the first and last active one.
    ///
    /// The lag is the paper's `Δt` between signal ascending points,
    /// estimated robustly as the argmax of the cross-correlation between
    /// the two channels' energy envelopes. A scroll is a traveling wave —
    /// the far photodiode's envelope is the near one's, delayed by the
    /// crossing time — so the lag is large and its sign gives the
    /// direction. A detect-aimed gesture modulates every photodiode with
    /// the *same* motion, so the envelopes are scaled copies and the lag
    /// is near zero ("ascending points almost occur simultaneously").
    #[must_use]
    pub fn channel_timing(&self, config: &AirFingerConfig) -> ChannelTiming {
        const PARTICIPATION_FRACTION: f64 = 0.10;
        let envelopes = self.envelopes();
        let peaks: Vec<f64> = envelopes
            .iter()
            .map(|e| e.iter().copied().fold(0.0, f64::max))
            .collect();
        let global_peak = peaks.iter().copied().fold(0.0, f64::max);
        let active: Vec<bool> = peaks
            .iter()
            .map(|&p| p >= PARTICIPATION_FRACTION * global_peak && p > config.initial_threshold)
            .collect();
        let first_active = active.iter().position(|&a| a);
        let last_active = active.iter().rposition(|&a| a);
        let lag_samples = match (first_active, last_active) {
            (Some(i), Some(j)) if i != j => centroid_lag(&envelopes[i], &envelopes[j]),
            _ => None,
        };
        ChannelTiming {
            active,
            first_active,
            last_active,
            lag_samples,
        }
    }

    /// Per-channel *signal ascending points* (§IV-D1).
    ///
    /// The ascent threshold is deliberately **sensitive**: the channel's
    /// noise floor (10th percentile of its smoothed `ΔRSS²` — the padded
    /// idle margins) plus a small fraction of the window's strongest
    /// channel swing. This matches the paper's observation that ascending
    /// points of a detect-aimed gesture "almost occur simultaneously":
    /// when the thumb starts moving, *every* photodiode watching it
    /// crosses a just-above-noise threshold within a few samples, however
    /// unequal their amplitudes. A scroll is different in kind, not in
    /// degree — the far photodiode receives essentially no reflection at
    /// all until the finger physically enters its zone, so its ascent
    /// comes later than `I_g`. A channel that never crosses (the partial
    /// scroll that stops before `P3`) reports `None`.
    #[must_use]
    pub fn ascents(&self, config: &AirFingerConfig) -> Vec<Option<usize>> {
        const GLOBAL_FRACTION: f64 = 0.015;
        const SMOOTH_WINDOW: usize = 11;
        let smoothed: Vec<Vec<f64>> = self
            .delta
            .iter()
            .map(|c| airfinger_dsp::filter::moving_average(c, SMOOTH_WINDOW))
            .collect();
        let floors: Vec<f64> = smoothed
            .iter()
            .map(|c| airfinger_dsp::stats::quantile(c, 0.1).unwrap_or(0.0))
            .collect();
        let global_peak = smoothed
            .iter()
            .zip(&floors)
            .map(|(c, &fl)| c.iter().map(|v| v - fl).fold(0.0, f64::max))
            .fold(0.0, f64::max);
        let sensitivity = (GLOBAL_FRACTION * global_peak).max(config.initial_threshold);
        smoothed
            .iter()
            .zip(&floors)
            .map(|(c, &floor)| {
                let threshold = floor + sensitivity;
                let mut run = 0usize;
                for (i, &v) in c.iter().enumerate() {
                    if v > threshold {
                        run += 1;
                        if run >= config.ascent_confirm {
                            return Some(i + 1 - run);
                        }
                    } else {
                        run = 0;
                    }
                }
                None
            })
            .collect()
    }
}

/// Result of [`GestureWindow::channel_timing`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelTiming {
    /// Whether each photodiode carried a meaningful share of the gesture
    /// energy.
    pub active: Vec<bool>,
    /// Index of the first active photodiode.
    pub first_active: Option<usize>,
    /// Index of the last active photodiode.
    pub last_active: Option<usize>,
    /// Envelope lag of the last active channel relative to the first, in
    /// samples (positive = last channel later). `None` when fewer than two
    /// channels are active.
    pub lag_samples: Option<isize>,
}

impl ChannelTiming {
    /// Number of active channels.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }
}

/// Energy-centroid lag between two equal-length envelopes: positive when
/// `e2`'s energy arrives later than `e1`'s. `None` when either envelope
/// carries no energy.
///
/// Why centroids: a detect-aimed gesture is a periodic/time-symmetric
/// motion, so every photodiode's energy centroid lands at the gesture
/// midpoint no matter how the per-channel envelope phase structure
/// differs; a scroll is a monotone crossing, so each channel's centroid is
/// the moment the finger passes that photodiode and the difference is an
/// unbiased estimate of the paper's `Δt`.
fn centroid_lag(e1: &[f64], e2: &[f64]) -> Option<isize> {
    let n = e1.len().min(e2.len());
    if n < 4 {
        return None;
    }
    let centroid = |e: &[f64]| -> Option<f64> {
        let total: f64 = e.iter().sum();
        if total <= 0.0 {
            return None;
        }
        Some(
            e.iter()
                .enumerate()
                .map(|(t, &v)| t as f64 * v)
                .sum::<f64>()
                / total,
        )
    };
    let c1 = centroid(&e1[..n])?;
    let c2 = centroid(&e2[..n])?;
    Some((c2 - c1).round() as isize)
}

/// Batch data processor.
#[derive(Debug, Clone, Copy)]
pub struct DataProcessor {
    config: AirFingerConfig,
}

impl DataProcessor {
    /// Create a processor with `config`.
    #[must_use]
    pub fn new(config: AirFingerConfig) -> Self {
        DataProcessor { config }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &AirFingerConfig {
        &self.config
    }

    /// SBC-transform every channel of `trace`.
    #[must_use]
    pub fn sbc(&self, trace: &RssTrace) -> Vec<Vec<f64>> {
        Sbc::new(self.config.sbc_window).apply_multi(trace.channels())
    }

    /// Smoothed `ΔRSS²` used for thresholding and segmentation: a short
    /// moving average dilutes isolated shot-noise spikes (whose squared
    /// diffs would otherwise chain through the `t_e` merge rule into fake
    /// segments) while a sustained gesture passes through unchanged.
    #[must_use]
    pub fn smoothed(&self, delta: &[Vec<f64>]) -> Vec<Vec<f64>> {
        delta
            .iter()
            .map(|c| airfinger_dsp::filter::moving_average(c, 5))
            .collect()
    }

    /// Per-channel Otsu thresholds over the smoothed SBC output, floored
    /// at the configured initial threshold so a gesture-free recording
    /// does not split its noise floor in half.
    #[must_use]
    pub fn thresholds(&self, smoothed: &[Vec<f64>]) -> Vec<f64> {
        smoothed
            .iter()
            .map(|c| otsu_threshold(c).max(self.config.initial_threshold))
            .collect()
    }

    /// Segment a recording into gesture windows.
    #[must_use]
    pub fn process(&self, trace: &RssTrace) -> Vec<GestureWindow> {
        let (delta, _smoothed, thresholds, segments) = self.stages(trace);
        airfinger_obs::counter!("pipeline_windows_total").add(segments.len() as u64);
        segments
            .into_iter()
            .map(|seg| GestureWindow {
                segment: seg,
                raw: trace
                    .channels()
                    .iter()
                    .map(|c| seg.slice(c).to_vec())
                    .collect(),
                delta: delta.iter().map(|c| seg.slice(c).to_vec()).collect(),
                thresholds: thresholds.clone(),
                sample_rate_hz: trace.sample_rate_hz(),
            })
            .collect()
    }

    /// The gesture window of a *single-gesture recording*. The dominant
    /// (highest-energy) segment is selected, then neighbouring segments
    /// are absorbed when they plausibly belong to the same gesture: gap
    /// below the longest double-gesture pause (~0.6 s) **and** energy at
    /// least 8 % of the dominant segment's (tremor blips carry far less).
    /// This keeps a slow double click in one window without letting a
    /// stray noise burst stretch a single circle into a "double". Falls
    /// back to the whole trace when segmentation finds nothing.
    #[must_use]
    pub fn primary_window(&self, trace: &RssTrace) -> GestureWindow {
        let (delta, smoothed, thresholds, segments) = self.stages(trace);
        airfinger_obs::counter!("pipeline_windows_total").inc();
        let segment = self
            .dominant_span(&smoothed, &segments, trace.sample_rate_hz())
            .unwrap_or_else(|| Segment::new(0, trace.len()));
        GestureWindow {
            raw: trace
                .channels()
                .iter()
                .map(|c| segment.slice(c).to_vec())
                .collect(),
            delta: delta.iter().map(|c| segment.slice(c).to_vec()).collect(),
            segment,
            thresholds,
            sample_rate_hz: trace.sample_rate_hz(),
        }
    }

    /// The shared front half of [`DataProcessor::process`] and
    /// [`DataProcessor::primary_window`], with a latency span per stage:
    /// SBC, threshold computation, segmentation.
    #[allow(clippy::type_complexity)]
    // lint: hot-path-root — hosts the sbc/threshold/segment stage spans
    fn stages(&self, trace: &RssTrace) -> (Vec<Vec<f64>>, Vec<Vec<f64>>, Vec<f64>, Vec<Segment>) {
        let delta = {
            let _s = airfinger_obs::span!("pipeline_stage_seconds", stage = "sbc")
                .with_latency(airfinger_obs::latency!("pipeline_stage_ns", stage = "sbc"));
            self.sbc(trace)
        };
        let (smoothed, thresholds) = {
            let _s =
                airfinger_obs::span!("pipeline_stage_seconds", stage = "threshold").with_latency(
                    airfinger_obs::latency!("pipeline_stage_ns", stage = "threshold"),
                );
            let smoothed = self.smoothed(&delta);
            let thresholds = self.thresholds(&smoothed);
            (smoothed, thresholds)
        };
        if !thresholds.is_empty() {
            let mean = thresholds.iter().sum::<f64>() / thresholds.len() as f64;
            airfinger_obs::gauge!("pipeline_otsu_threshold").set(mean);
        }
        let segments = {
            let _s =
                airfinger_obs::span!("pipeline_stage_seconds", stage = "segment").with_latency(
                    airfinger_obs::latency!("pipeline_stage_ns", stage = "segment"),
                );
            Segmenter::new(self.config.segmenter).segment_multi(&smoothed, &thresholds)
        };
        airfinger_obs::counter!("pipeline_segments_found_total").add(segments.len() as u64);
        (delta, smoothed, thresholds, segments)
    }

    /// Merge the dominant segment with energetically comparable neighbours.
    fn dominant_span(
        &self,
        smoothed: &[Vec<f64>],
        segments: &[Segment],
        sample_rate_hz: f64,
    ) -> Option<Segment> {
        const ABSORB_ENERGY_FRACTION: f64 = 0.08;
        // Sub-strokes of one gesture sit closer than this (the envelope
        // notch where the derivative crosses zero); always absorb them.
        let near_gap = (0.30 * sample_rate_hz) as usize;
        // The two halves of a double gesture can sit this far apart
        // (double_gap plus the pulse tails); absorb only when the
        // neighbour carries gesture-level energy.
        let far_gap = (0.85 * sample_rate_hz) as usize;
        if segments.is_empty() {
            return None;
        }
        let energy_of = |s: &Segment| -> f64 {
            smoothed
                .iter()
                .map(|c| s.slice(c).iter().sum::<f64>())
                .sum()
        };
        let energies: Vec<f64> = segments.iter().map(energy_of).collect();
        let main = energies
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)?;
        let floor = ABSORB_ENERGY_FRACTION * energies[main];
        let absorbs =
            |gap: usize, energy: f64| gap <= near_gap || (gap <= far_gap && energy >= floor);
        let (mut lo, mut hi) = (main, main);
        while lo > 0 {
            let gap = segments[lo].start.saturating_sub(segments[lo - 1].end);
            if !absorbs(gap, energies[lo - 1]) {
                break;
            }
            lo -= 1;
        }
        while hi + 1 < segments.len() {
            let gap = segments[hi + 1].start.saturating_sub(segments[hi].end);
            if !absorbs(gap, energies[hi + 1]) {
                break;
            }
            hi += 1;
        }
        airfinger_obs::counter!("pipeline_segments_merged_total").add((hi - lo) as u64);
        Some(Segment::new(segments[lo].start, segments[hi].end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airfinger_nir_sim::layout::SensorLayout;
    use airfinger_nir_sim::noise::NoiseModel;
    use airfinger_nir_sim::sampler::{Sampler, Scene};
    use airfinger_nir_sim::vec3::Vec3;
    use airfinger_synth::gesture::{Gesture, SampleLabel};
    use airfinger_synth::trajectory::{MotionParams, Trajectory};

    fn record(label: Gesture) -> RssTrace {
        let traj = Trajectory::generate(SampleLabel::Gesture(label), &MotionParams::default(), 3);
        let scene = Scene::new(SensorLayout::paper_prototype()).with_noise(NoiseModel::none());
        Sampler::new(scene, 100.0).sample(traj.duration_s(), 5, |t| traj.position(t))
    }

    fn processor() -> DataProcessor {
        DataProcessor::new(AirFingerConfig::default())
    }

    /// Build a raw RSS trace whose ΔRSS² approximates the given profile.
    fn raw_from_delta(delta_sq: &[f64]) -> Vec<f64> {
        let mut raw = Vec::with_capacity(delta_sq.len());
        let mut level = 300.0;
        let mut sign = 1.0;
        for (i, &d) in delta_sq.iter().enumerate() {
            if i % 12 == 0 {
                sign = -sign; // wiggle so the level stays bounded
            }
            level += sign * d.max(0.0).sqrt();
            raw.push(level);
        }
        raw
    }

    #[test]
    fn click_recording_yields_one_window() {
        let windows = processor().process(&record(Gesture::Click));
        assert_eq!(windows.len(), 1, "{windows:?}");
        let w = &windows[0];
        assert_eq!(w.channel_count(), 3);
        assert!(
            w.duration_s() > 0.1 && w.duration_s() < 1.2,
            "dur {}",
            w.duration_s()
        );
    }

    #[test]
    fn double_click_primary_window_spans_both_clicks() {
        // Even when the inter-click pause exceeds t_e and the halves
        // segment separately, the single-gesture convention spans them.
        let p = MotionParams {
            double_gap_s: 0.2,
            ..Default::default()
        };
        let traj = Trajectory::generate(SampleLabel::Gesture(Gesture::DoubleClick), &p, 3);
        let scene = Scene::new(SensorLayout::paper_prototype()).with_noise(NoiseModel::none());
        let trace = Sampler::new(scene, 100.0).sample(traj.duration_s(), 5, |t| traj.position(t));
        let proc = processor();
        let pieces = proc.process(&trace);
        let primary = proc.primary_window(&trace);
        assert!(primary.segment.len() >= pieces.iter().map(|w| w.segment.len()).sum::<usize>());
        // Both dips fall inside the primary window.
        assert!(primary.duration_s() > 0.5, "dur {}", primary.duration_s());
    }

    #[test]
    fn idle_recording_yields_no_window() {
        let scene = Scene::new(SensorLayout::paper_prototype()).with_noise(NoiseModel::none());
        let trace = Sampler::new(scene, 100.0).sample(1.0, 5, |_| Some(Vec3::new(0.0, 0.0, 0.02)));
        assert!(processor().process(&trace).is_empty());
    }

    #[test]
    fn window_slices_match_segment() {
        let trace = record(Gesture::Circle);
        let windows = processor().process(&trace);
        let w = &windows[0];
        assert_eq!(w.raw[0].len(), w.segment.len());
        assert_eq!(w.delta[0].len(), w.segment.len());
        assert_eq!(w.raw[0][0], trace.channel(0)[w.segment.start]);
    }

    #[test]
    fn primary_window_picks_gesture() {
        let trace = record(Gesture::Rub);
        let w = processor().primary_window(&trace);
        // The gesture occupies the middle of the trace; the window should
        // not span the entire recording.
        assert!(w.segment.len() < trace.len());
        assert!(w.segment.len() > 10);
    }

    #[test]
    fn primary_window_falls_back_to_whole_trace() {
        let scene = Scene::new(SensorLayout::paper_prototype()).with_noise(NoiseModel::none());
        let trace = Sampler::new(scene, 100.0).sample(0.5, 5, |_| Some(Vec3::new(0.0, 0.0, 0.02)));
        let w = processor().primary_window(&trace);
        assert_eq!(w.segment, Segment::new(0, trace.len()));
    }

    #[test]
    fn thresholds_floored_at_initial() {
        let delta = vec![vec![0.01; 100], vec![0.02; 100], vec![0.0; 100]];
        let t = processor().thresholds(&delta);
        assert!(t.iter().all(|&v| v >= 10.0));
    }

    #[test]
    fn every_gesture_is_segmented() {
        for g in Gesture::ALL {
            let windows = processor().process(&record(g));
            assert!(!windows.is_empty(), "{g} produced no window");
        }
    }

    #[test]
    fn envelopes_subtract_noise_floor() {
        // Constant-noise channels floor to zero; the burst survives.
        let n = 100;
        let mut delta = vec![6.0; n];
        for v in delta.iter_mut().take(60).skip(40) {
            *v = 120.0;
        }
        let w = GestureWindow {
            segment: Segment::new(0, n),
            raw: vec![delta.clone(); 3],
            delta: vec![delta; 3],
            thresholds: vec![10.0; 3],
            sample_rate_hz: 100.0,
        };
        let env = w.envelopes();
        assert!(env[0][..30].iter().all(|&v| v < 3.0), "floor removed");
        let peak = env[0].iter().cloned().fold(0.0f64, f64::max);
        assert!(peak > 80.0, "burst survives: {peak}");
    }

    #[test]
    fn channel_timing_orders_traveling_bumps() {
        let n = 140;
        let bump = |center: usize| -> Vec<f64> {
            (0..n)
                .map(|i| {
                    let d = (i as f64 - center as f64) / 8.0;
                    150.0 * (-d * d).exp()
                })
                .collect()
        };
        let w = GestureWindow {
            segment: Segment::new(0, n),
            raw: vec![bump(30), bump(60), bump(90)],
            delta: vec![bump(30), bump(60), bump(90)],
            thresholds: vec![10.0; 3],
            sample_rate_hz: 100.0,
        };
        let t = w.channel_timing(&AirFingerConfig::default());
        assert_eq!(t.active, vec![true, true, true]);
        assert_eq!(t.active_count(), 3);
        let lag = t.lag_samples.unwrap();
        assert!((55..=65).contains(&(lag as usize)), "lag {lag}");
    }

    #[test]
    fn channel_timing_flags_inactive_channels() {
        let n = 100;
        let loud: Vec<f64> = (0..n)
            .map(|i| if (40..60).contains(&i) { 200.0 } else { 1.0 })
            .collect();
        let quiet = vec![1.0; n];
        let w = GestureWindow {
            segment: Segment::new(0, n),
            raw: vec![loud.clone(), quiet.clone(), quiet],
            delta: vec![loud.clone(), vec![1.0; n], vec![1.0; n]],
            thresholds: vec![10.0; 3],
            sample_rate_hz: 100.0,
        };
        let t = w.channel_timing(&AirFingerConfig::default());
        assert_eq!(t.active, vec![true, false, false]);
        assert_eq!(t.first_active, Some(0));
        assert_eq!(t.last_active, Some(0));
        assert_eq!(t.lag_samples, None);
    }

    #[test]
    fn dominant_span_ignores_weak_distant_blip() {
        // A strong gesture at samples 100..160 and a weak tremor blip at
        // 230..240 (gap 0.7 s, energy far below 8%): the window must not
        // absorb the blip.
        let n = 300;
        let mut d = vec![0.0; n];
        for v in d.iter_mut().take(160).skip(100) {
            *v = 200.0;
        }
        for v in d.iter_mut().take(240).skip(230) {
            *v = 14.0;
        }
        let trace = RssTrace::from_channels(vec![raw_from_delta(&d); 3], 100.0);
        let w = processor().primary_window(&trace);
        assert!(
            w.segment.end <= 200,
            "window {:?} absorbed the blip",
            w.segment
        );
    }

    #[test]
    fn dominant_span_absorbs_equal_second_stroke() {
        // Two equal strokes 0.5 s apart (a slow double gesture): spanned.
        let n = 300;
        let mut d = vec![0.0; n];
        for v in d.iter_mut().take(120).skip(80) {
            *v = 200.0;
        }
        for v in d.iter_mut().take(220).skip(180) {
            *v = 190.0;
        }
        let trace = RssTrace::from_channels(vec![raw_from_delta(&d); 3], 100.0);
        let w = processor().primary_window(&trace);
        assert!(
            w.segment.start <= 85 && w.segment.end >= 210,
            "window {:?}",
            w.segment
        );
    }
}
