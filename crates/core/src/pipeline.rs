//! The end-to-end airFinger pipeline facade.

use crate::config::AirFingerConfig;
use crate::detect::DetectRecognizer;
use crate::error::AirFingerError;
use crate::events::Recognition;
use crate::filter::{NonGestureFilter, LABEL_GESTURE, LABEL_NON_GESTURE};
use crate::processing::{DataProcessor, GestureWindow};
use crate::train::{all_gesture_feature_set, binary_feature_set};
use crate::zebra::{ScrollDirection, ScrollTrack, VelocitySource, Zebra};
use airfinger_nir_sim::trace::RssTrace;
use airfinger_synth::dataset::Corpus;
use airfinger_synth::gesture::Gesture;
use serde::{Deserialize, Serialize};

/// The complete recognizer: data processing, interference filtering,
/// family distinguishing, detect-aimed recognition and ZEBRA tracking.
///
/// # Example
///
/// ```no_run
/// use airfinger_core::pipeline::AirFinger;
/// use airfinger_core::config::AirFingerConfig;
/// use airfinger_synth::dataset::{generate_corpus, CorpusSpec};
///
/// let corpus = generate_corpus(&CorpusSpec::small(1));
/// let mut af = AirFinger::new(AirFingerConfig::default());
/// af.train_on_corpus(&corpus, None)?;
/// for sample in corpus.samples() {
///     for event in af.recognize_trace(&sample.trace)? {
///         println!("{event}");
///     }
/// }
/// # Ok::<(), airfinger_core::error::AirFingerError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AirFinger {
    config: AirFingerConfig,
    processor: DataProcessor,
    zebra: Zebra,
    detect: DetectRecognizer,
    filter: Option<NonGestureFilter>,
}

/// The serialized form of a (possibly trained) pipeline: everything except
/// the stateless stages, which are rebuilt from the config on load. This
/// is what lets a wearable train once on a workstation and ship the model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SavedPipeline {
    /// Pipeline configuration.
    pub config: AirFingerConfig,
    /// The trained gesture recognizer.
    pub detect: DetectRecognizer,
    /// The trained interference filter, if any.
    pub filter: Option<NonGestureFilter>,
}

impl From<AirFinger> for SavedPipeline {
    fn from(af: AirFinger) -> Self {
        SavedPipeline {
            config: af.config,
            detect: af.detect,
            filter: af.filter,
        }
    }
}

impl From<SavedPipeline> for AirFinger {
    fn from(saved: SavedPipeline) -> Self {
        AirFinger {
            config: saved.config,
            processor: DataProcessor::new(saved.config),
            zebra: Zebra::new(saved.config),
            detect: saved.detect,
            filter: saved.filter,
        }
    }
}

// Serialized via [`SavedPipeline`]: the stateless stages are rebuilt from
// the config on load.
impl Serialize for AirFinger {
    fn to_value(&self) -> serde::Value {
        SavedPipeline::from(self.clone()).to_value()
    }
}

impl Deserialize for AirFinger {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        SavedPipeline::from_value(value).map(AirFinger::from)
    }
}

/// A gesture window after [`AirFinger::prepare_window`]: either already
/// finalized by the interference filter, or carrying the feature row that
/// still needs a random-forest prediction.
#[derive(Debug, Clone, PartialEq)]
pub enum PreparedWindow {
    /// The interference filter rejected the window; the recognition is
    /// final and no forest prediction is needed.
    Rejected(Recognition),
    /// The window passed the filter. Classify the feature row (alone or
    /// batched with rows from other windows) and hand the predicted index
    /// to [`AirFinger::finish_window`].
    Pending(Vec<f64>),
}

impl AirFinger {
    /// Create an untrained pipeline.
    #[must_use]
    pub fn new(config: AirFingerConfig) -> Self {
        AirFinger {
            config,
            processor: DataProcessor::new(config),
            zebra: Zebra::new(config),
            detect: DetectRecognizer::new(&config),
            filter: None,
        }
    }

    /// The pipeline configuration.
    #[must_use]
    pub fn config(&self) -> &AirFingerConfig {
        &self.config
    }

    /// The data processor (SBC + segmentation).
    #[must_use]
    pub fn processor(&self) -> &DataProcessor {
        &self.processor
    }

    /// The detect-aimed recognizer.
    #[must_use]
    pub fn detect_recognizer(&self) -> &DetectRecognizer {
        &self.detect
    }

    /// Whether the detect recognizer has been trained.
    #[must_use]
    pub fn is_trained(&self) -> bool {
        self.detect.is_trained()
    }

    /// Whether the non-gesture filter is active.
    #[must_use]
    pub fn has_filter(&self) -> bool {
        self.filter.is_some()
    }

    /// Train the pipeline on a gesture corpus, and optionally the
    /// interference filter on a non-gesture corpus.
    ///
    /// # Errors
    ///
    /// Returns [`AirFingerError::InvalidTrainingData`] when the corpus
    /// holds no detect-aimed gestures, and propagates classifier errors.
    pub fn train_on_corpus(
        &mut self,
        gestures: &Corpus,
        nongestures: Option<&Corpus>,
    ) -> Result<(), AirFingerError> {
        self.config
            .validate()
            .map_err(AirFingerError::InvalidConfig)?;
        let gesture_set = all_gesture_feature_set(gestures, &self.config);
        if gesture_set.is_empty() {
            return Err(AirFingerError::InvalidTrainingData(
                "corpus holds no gesture samples",
            ));
        }
        self.detect.train_features(&gesture_set.x, &gesture_set.y)?;
        if let Some(non) = nongestures {
            if non.is_empty() {
                return Err(AirFingerError::InvalidTrainingData(
                    "non-gesture corpus is empty",
                ));
            }
            let merged = gestures.clone().merged(non.clone());
            let set = binary_feature_set(&merged, &self.config);
            let has_both = set.y.contains(&LABEL_GESTURE) && set.y.contains(&LABEL_NON_GESTURE);
            if !has_both {
                return Err(AirFingerError::InvalidTrainingData(
                    "filter training needs both gestures and non-gestures",
                ));
            }
            let mut filter = NonGestureFilter::new(&self.config);
            filter.train_features(&set.x, &set.y)?;
            self.filter = Some(filter);
        }
        Ok(())
    }

    /// (Re)train only the gesture recognizer from precomputed feature
    /// rows (labels are gesture indices), leaving the interference filter
    /// untouched. This is the retraining entry point used by
    /// [`crate::adapt::UserAdapter`] and by callers training from real
    /// recordings rather than a synthetic [`Corpus`].
    ///
    /// # Errors
    ///
    /// Propagates classifier errors (empty/ragged/non-finite data).
    pub fn train_detect_features(
        &mut self,
        x: &[Vec<f64>],
        y: &[usize],
    ) -> Result<(), AirFingerError> {
        self.detect.train_features(x, y)
    }

    /// Recognize one already-segmented gesture window.
    ///
    /// Exactly [`AirFinger::prepare_window`] followed by one forest
    /// prediction and [`AirFinger::finish_window`] — the fleet serving
    /// layer runs the same three stages with the middle one batched
    /// across sessions, so batched and sequential results are identical
    /// by construction.
    ///
    /// # Errors
    ///
    /// Returns [`AirFingerError::NotTrained`] before training.
    // lint: hot-path-root — hosts the rf_predict stage span
    pub fn recognize_window(&self, window: &GestureWindow) -> Result<Recognition, AirFingerError> {
        match self.prepare_window(window)? {
            PreparedWindow::Rejected(recognition) => Ok(recognition),
            PreparedWindow::Pending(features) => {
                let index = {
                    let _s = airfinger_obs::span!("pipeline_stage_seconds", stage = "rf_predict")
                        .with_latency(airfinger_obs::latency!(
                            "pipeline_stage_ns",
                            stage = "rf_predict"
                        ));
                    self.detect.predict_features(&features)?
                };
                self.finish_window(window, index)
            }
        }
    }

    /// Run the pre-classification stages of [`AirFinger::recognize_window`]:
    /// the interference filter and feature extraction. A rejected window
    /// carries its final [`Recognition`]; a passing window carries the
    /// feature row awaiting a forest prediction, which callers may batch
    /// across many windows before handing each predicted index to
    /// [`AirFinger::finish_window`].
    ///
    /// # Errors
    ///
    /// Returns [`AirFingerError::NotTrained`] before training and
    /// propagates filter errors.
    // lint: hot-path-root — hosts the filter/features stage spans
    pub fn prepare_window(&self, window: &GestureWindow) -> Result<PreparedWindow, AirFingerError> {
        if !self.detect.is_trained() {
            return Err(AirFingerError::NotTrained);
        }
        if let Some(filter) = &self.filter {
            let is_gesture = {
                let _s =
                    airfinger_obs::span!("pipeline_stage_seconds", stage = "filter").with_latency(
                        airfinger_obs::latency!("pipeline_stage_ns", stage = "filter"),
                    );
                filter.is_gesture(window)?
            };
            if !is_gesture {
                airfinger_obs::counter!("pipeline_recognitions_total", kind = "rejected").inc();
                return Ok(PreparedWindow::Rejected(Recognition::Rejected {
                    segment: window.segment,
                }));
            }
        }
        let features = {
            let _s =
                airfinger_obs::span!("pipeline_stage_seconds", stage = "features").with_latency(
                    airfinger_obs::latency!("pipeline_stage_ns", stage = "features"),
                );
            self.detect.features(window)
        };
        Ok(PreparedWindow::Pending(features))
    }

    /// Turn a predicted gesture index into the final [`Recognition`] for a
    /// window that passed [`AirFinger::prepare_window`]: scrolls are routed
    /// through ZEBRA tracking, everything else becomes a detect event.
    ///
    /// # Errors
    ///
    /// Propagates an out-of-range predicted label as an ML error.
    // lint: hot-path-root — hosts the zebra stage span
    pub fn finish_window(
        &self,
        window: &GestureWindow,
        predicted_index: usize,
    ) -> Result<Recognition, AirFingerError> {
        let gesture = Gesture::from_index(predicted_index.min(Gesture::ALL.len() - 1)).ok_or(
            AirFingerError::Ml(airfinger_ml::MlError::InvalidData(
                "predicted label outside the gesture set",
            )),
        )?;
        match gesture {
            Gesture::ScrollUp | Gesture::ScrollDown => {
                let direction = if gesture == Gesture::ScrollUp {
                    ScrollDirection::Up
                } else {
                    ScrollDirection::Down
                };
                // ZEBRA supplies Δt / velocity / displacement; the
                // recognized class supplies the direction (the two agree
                // when the envelope lag is clean).
                let tracked = {
                    let _s = airfinger_obs::span!("pipeline_stage_seconds", stage = "zebra")
                        .with_latency(airfinger_obs::latency!(
                            "pipeline_stage_ns",
                            stage = "zebra"
                        ));
                    self.zebra.track(window)
                };
                let track = match tracked {
                    Some(t) => ScrollTrack { direction, ..t },
                    None => ScrollTrack {
                        direction,
                        velocity_mm_s: self.config.v_prime_mm_s,
                        velocity_source: VelocitySource::Experience,
                        delta_t_s: None,
                        duration_s: window.duration_s(),
                    },
                };
                airfinger_obs::counter!("pipeline_recognitions_total", kind = "track").inc();
                Ok(Recognition::Track {
                    track,
                    segment: window.segment,
                })
            }
            detect_aimed => {
                airfinger_obs::counter!("pipeline_recognitions_total", kind = "detect").inc();
                Ok(Recognition::Detect {
                    gesture: detect_aimed,
                    segment: window.segment,
                })
            }
        }
    }

    /// Segment and recognize a whole recording.
    ///
    /// # Errors
    ///
    /// Returns [`AirFingerError::NotTrained`] before training.
    pub fn recognize_trace(&self, trace: &RssTrace) -> Result<Vec<Recognition>, AirFingerError> {
        self.processor
            .process(trace)
            .iter()
            .map(|w| self.recognize_window(w))
            .collect()
    }

    /// Recognize the primary (largest) gesture window of a single-gesture
    /// recording — the evaluation convention.
    ///
    /// # Errors
    ///
    /// Returns [`AirFingerError::NotTrained`] before training.
    pub fn recognize_primary(&self, trace: &RssTrace) -> Result<Recognition, AirFingerError> {
        let window = self.processor.primary_window(trace);
        self.recognize_window(&window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airfinger_synth::dataset::{generate_corpus, generate_nongesture_corpus, CorpusSpec};
    use airfinger_synth::gesture::Gesture;

    fn trained_pipeline(spec: &CorpusSpec) -> (AirFinger, Corpus) {
        let corpus = generate_corpus(spec);
        let config = AirFingerConfig {
            forest_trees: 25,
            ..Default::default()
        };
        let mut af = AirFinger::new(config);
        af.train_on_corpus(&corpus, None).unwrap();
        (af, corpus)
    }

    #[test]
    fn trains_and_recognizes_in_sample() {
        let spec = CorpusSpec {
            users: 2,
            sessions: 2,
            reps: 3,
            ..Default::default()
        };
        let (af, corpus) = trained_pipeline(&spec);
        assert!(af.is_trained());
        let mut correct = 0;
        let mut total = 0;
        for s in corpus.samples() {
            let got = af.recognize_primary(&s.trace).unwrap();
            total += 1;
            if got.gesture() == s.label.gesture() {
                correct += 1;
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.85, "in-sample accuracy {acc}");
    }

    #[test]
    fn scrolls_are_tracked_not_detected() {
        let spec = CorpusSpec {
            users: 1,
            sessions: 1,
            reps: 5,
            ..Default::default()
        };
        let (af, corpus) = trained_pipeline(&spec);
        let mut tracked = 0;
        let mut scrolls = 0;
        for s in corpus.samples() {
            if s.label.gesture().is_some_and(|g| g.is_track_aimed()) {
                scrolls += 1;
                if matches!(
                    af.recognize_primary(&s.trace).unwrap(),
                    Recognition::Track { .. }
                ) {
                    tracked += 1;
                }
            }
        }
        assert!(scrolls > 0);
        assert!(
            tracked as f64 / scrolls as f64 > 0.7,
            "tracked {tracked}/{scrolls} scrolls"
        );
    }

    #[test]
    fn untrained_pipeline_errors() {
        let af = AirFinger::new(AirFingerConfig::default());
        let corpus = generate_corpus(&CorpusSpec {
            users: 1,
            sessions: 1,
            reps: 1,
            gestures: vec![Gesture::Click],
            ..Default::default()
        });
        assert!(matches!(
            af.recognize_primary(&corpus.samples()[0].trace),
            Err(AirFingerError::NotTrained)
        ));
    }

    #[test]
    fn empty_corpus_rejected() {
        let mut af = AirFinger::new(AirFingerConfig::default());
        let empty = Corpus::new(vec![]);
        assert!(matches!(
            af.train_on_corpus(&empty, None),
            Err(AirFingerError::InvalidTrainingData(_))
        ));
    }

    #[test]
    fn scroll_only_corpus_trains() {
        // The recognizer covers all eight classes, so a scroll-only corpus
        // is legitimate training data.
        let mut af = AirFinger::new(AirFingerConfig {
            forest_trees: 10,
            ..Default::default()
        });
        let corpus = generate_corpus(&CorpusSpec {
            users: 1,
            sessions: 1,
            reps: 2,
            gestures: vec![Gesture::ScrollUp],
            ..Default::default()
        });
        af.train_on_corpus(&corpus, None).unwrap();
        assert!(af.is_trained());
    }

    #[test]
    fn filter_trains_and_rejects_nongestures() {
        // The paper's §V-J protocol: the same volunteers perform gestures
        // and non-gestures; evaluation is on held-out repetitions of the
        // same population (3-fold CV), not on unseen users.
        let spec = CorpusSpec {
            users: 2,
            sessions: 1,
            reps: 4,
            ..Default::default()
        };
        let corpus = generate_corpus(&spec);
        let non_all = generate_nongesture_corpus(&CorpusSpec {
            reps: 30,
            ..spec.clone()
        });
        let non_train = non_all.filter(|s| s.rep < 21);
        let non_test = non_all.filter(|s| s.rep >= 21);
        let config = AirFingerConfig {
            forest_trees: 25,
            ..Default::default()
        };
        let mut af = AirFinger::new(config);
        af.train_on_corpus(&corpus, Some(&non_train)).unwrap();
        assert!(af.has_filter());
        let rejected = non_test
            .samples()
            .iter()
            .filter(|s| {
                matches!(
                    af.recognize_primary(&s.trace).unwrap(),
                    Recognition::Rejected { .. }
                )
            })
            .count();
        assert!(
            rejected as f64 / non_test.len() as f64 > 0.6,
            "rejected {rejected}/{}",
            non_test.len()
        );
        // Held-out repetitions of true gestures pass the filter.
        let held_g = generate_corpus(&CorpusSpec {
            users: 2,
            sessions: 1,
            reps: 2,
            ..spec
        });
        let wrongly_rejected = held_g
            .samples()
            .iter()
            .filter(|s| {
                matches!(
                    af.recognize_primary(&s.trace).unwrap(),
                    Recognition::Rejected { .. }
                )
            })
            .count();
        assert!(
            (wrongly_rejected as f64) < 0.25 * held_g.len() as f64,
            "wrongly rejected {wrongly_rejected}/{}",
            held_g.len()
        );
    }

    #[test]
    fn invalid_config_surfaces_at_training() {
        let config = AirFingerConfig {
            forest_trees: 0,
            ..Default::default()
        };
        let mut af = AirFinger::new(config);
        let corpus = generate_corpus(&CorpusSpec::small(3));
        assert!(matches!(
            af.train_on_corpus(&corpus, None),
            Err(AirFingerError::InvalidConfig(_))
        ));
    }
}
