//! User enrollment / adaptation — closing the paper's individual-diversity
//! gap (§V-D).
//!
//! The paper's central cross-validation finding is that *individual
//! diversity* is what hurts: leave-one-user-out accuracy drops well below
//! the within-population figure, while leave-one-session-out barely moves
//! (Fig. 11 vs Fig. 12). The practical consequence for a shipped device is
//! that a brand-new user starts at the lower LOUO accuracy.
//!
//! This module implements the standard remedy: a short **enrollment**
//! session. The new user performs each gesture a handful of times; those
//! trials are folded into the population training set with an up-weight so
//! the forest can learn the user's habits without forgetting the
//! population, and the recognizer is retrained. The `adaptation`
//! experiment in the bench harness sweeps the enrollment count and shows
//! the LOUO accuracy climbing back toward the within-population level.
//!
//! # Example
//!
//! ```no_run
//! use airfinger_core::adapt::UserAdapter;
//! use airfinger_core::pipeline::AirFinger;
//! use airfinger_core::config::AirFingerConfig;
//! use airfinger_core::train::all_gesture_feature_set;
//! use airfinger_synth::dataset::{generate_corpus, CorpusSpec};
//! use airfinger_synth::gesture::Gesture;
//!
//! let config = AirFingerConfig::default();
//! let population = generate_corpus(&CorpusSpec::small(1));
//! let mut af = AirFinger::new(config);
//! af.train_on_corpus(&population, None)?;
//!
//! // A new user performs each gesture a few times…
//! let mut adapter = UserAdapter::new(all_gesture_feature_set(&population, &config));
//! # let enrollment_trace = population.samples()[0].trace.clone();
//! adapter.enroll_trace(&af, &enrollment_trace, Gesture::Circle);
//!
//! // …and the recognizer is retrained with those trials up-weighted.
//! adapter.apply(&mut af)?;
//! # Ok::<(), airfinger_core::error::AirFingerError>(())
//! ```

use crate::error::AirFingerError;
use crate::pipeline::AirFinger;
use crate::processing::GestureWindow;
use crate::train::LabeledFeatures;
use airfinger_nir_sim::trace::RssTrace;
use airfinger_synth::gesture::Gesture;

/// Fraction of the effective training mass the enrollment trials should
/// carry after up-weighting (see [`UserAdapter::with_mix`]).
pub const DEFAULT_MIX: f64 = 0.3;

/// Collects enrollment trials from one user and retrains a pipeline's
/// recognizer on the population data plus the up-weighted trials.
#[derive(Debug, Clone)]
pub struct UserAdapter {
    base: LabeledFeatures,
    enrolled_x: Vec<Vec<f64>>,
    enrolled_y: Vec<usize>,
    mix: f64,
}

impl UserAdapter {
    /// Create an adapter over the population training set (the same
    /// 8-class feature set the pipeline was originally trained on, e.g.
    /// from [`crate::train::all_gesture_feature_set`]).
    #[must_use]
    pub fn new(base: LabeledFeatures) -> Self {
        UserAdapter {
            base,
            enrolled_x: Vec::new(),
            enrolled_y: Vec::new(),
            mix: DEFAULT_MIX,
        }
    }

    /// Set the target enrollment share of the effective training mass.
    ///
    /// With mix `m`, each enrollment trial is replicated so that the
    /// enrollment block makes up roughly the fraction `m` of all training
    /// rows seen by the forest's bootstrap sampler. Values are clamped to
    /// `[0, 0.95]`; `0` disables up-weighting (each trial counts once).
    #[must_use]
    pub fn with_mix(mut self, mix: f64) -> Self {
        self.mix = mix.clamp(0.0, 0.95);
        self
    }

    /// Number of enrollment trials collected so far.
    #[must_use]
    pub fn enrolled_count(&self) -> usize {
        self.enrolled_y.len()
    }

    /// The replication factor [`UserAdapter::apply`] will use for each
    /// enrollment trial (1 when nothing is enrolled yet).
    #[must_use]
    pub fn boost(&self) -> usize {
        if self.enrolled_y.is_empty() || self.mix <= 0.0 {
            return 1;
        }
        // boost · n_enrolled = m/(1-m) · n_base  ⇒ enrolled mass fraction ≈ m.
        let target =
            self.mix / (1.0 - self.mix) * self.base.len() as f64 / self.enrolled_y.len() as f64;
        (target.round() as usize).max(1)
    }

    /// Enroll one labelled trial from an already-extracted feature row.
    pub fn enroll_features(&mut self, features: Vec<f64>, gesture: Gesture) {
        self.enrolled_x.push(features);
        self.enrolled_y.push(gesture.index());
    }

    /// Enroll one labelled trial from a processed gesture window, using
    /// `pipeline`'s feature extractor.
    pub fn enroll_window(
        &mut self,
        pipeline: &AirFinger,
        window: &GestureWindow,
        gesture: Gesture,
    ) {
        let features = pipeline.detect_recognizer().features(window);
        self.enroll_features(features, gesture);
    }

    /// Enroll one labelled trial from a raw recording: the dominant
    /// gesture window is segmented out by `pipeline`'s data processor.
    pub fn enroll_trace(&mut self, pipeline: &AirFinger, trace: &RssTrace, gesture: Gesture) {
        let window = pipeline.processor().primary_window(trace);
        self.enroll_window(pipeline, &window, gesture);
    }

    /// Retrain `pipeline`'s gesture recognizer on the population set plus
    /// the enrolled trials, each replicated [`UserAdapter::boost`] times.
    ///
    /// With no enrolled trials this is a plain retrain on the population
    /// set (a no-op in effect, but it still rebuilds the forest).
    ///
    /// # Errors
    ///
    /// Propagates classifier errors (empty/ragged/non-finite data).
    pub fn apply(&self, pipeline: &mut AirFinger) -> Result<(), AirFingerError> {
        let boost = self.boost();
        let total = self.base.len() + boost * self.enrolled_y.len();
        let mut x = Vec::with_capacity(total);
        let mut y = Vec::with_capacity(total);
        x.extend(self.base.x.iter().cloned());
        y.extend(self.base.y.iter().copied());
        for (row, &label) in self.enrolled_x.iter().zip(&self.enrolled_y) {
            for _ in 0..boost {
                x.push(row.clone());
                y.push(label);
            }
        }
        pipeline.train_detect_features(&x, &y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AirFingerConfig;
    use airfinger_synth::dataset::{generate_corpus, CorpusSpec};

    fn toy_base(rows: usize) -> LabeledFeatures {
        let mut base = LabeledFeatures::default();
        for i in 0..rows {
            base.x.push(vec![i as f64, (rows - i) as f64]);
            base.y.push(i % 2);
            base.users.push(0);
            base.sessions.push(0);
            base.reps.push(i);
        }
        base
    }

    #[test]
    fn boost_targets_the_mix_fraction() {
        let mut a = UserAdapter::new(toy_base(700)).with_mix(0.3);
        for _ in 0..10 {
            a.enroll_features(vec![0.0, 0.0], Gesture::Circle);
        }
        // 0.3/0.7 · 700/10 = 30.
        assert_eq!(a.boost(), 30);
        let mass = (a.boost() * a.enrolled_count()) as f64;
        let frac = mass / (mass + 700.0);
        assert!((frac - 0.3).abs() < 0.01, "fraction {frac}");
    }

    #[test]
    fn boost_is_one_without_enrollment_or_mix() {
        let a = UserAdapter::new(toy_base(100));
        assert_eq!(a.boost(), 1);
        let mut b = UserAdapter::new(toy_base(100)).with_mix(0.0);
        b.enroll_features(vec![1.0, 2.0], Gesture::Rub);
        assert_eq!(b.boost(), 1);
    }

    #[test]
    fn mix_is_clamped() {
        let a = UserAdapter::new(toy_base(10)).with_mix(7.0);
        assert!(a.mix <= 0.95);
        let b = UserAdapter::new(toy_base(10)).with_mix(-1.0);
        assert_eq!(b.mix, 0.0);
    }

    #[test]
    fn apply_retrains_and_pipeline_stays_usable() {
        let config = AirFingerConfig {
            forest_trees: 15,
            ..Default::default()
        };
        let spec = CorpusSpec {
            users: 2,
            sessions: 1,
            reps: 2,
            ..Default::default()
        };
        let corpus = generate_corpus(&spec);
        let mut af = AirFinger::new(config);
        af.train_on_corpus(&corpus, None).unwrap();

        let base = crate::train::all_gesture_feature_set(&corpus, &config);
        let mut adapter = UserAdapter::new(base);
        let enroll_spec = CorpusSpec {
            users: 1,
            sessions: 1,
            reps: 1,
            seed: 99,
            ..spec
        };
        let enroll = generate_corpus(&enroll_spec);
        for s in enroll.samples() {
            if let Some(g) = s.label.gesture() {
                adapter.enroll_trace(&af, &s.trace, g);
            }
        }
        assert_eq!(adapter.enrolled_count(), 8);
        adapter.apply(&mut af).unwrap();
        assert!(af.is_trained());
        // The adapted recognizer still classifies the enrolled user's own
        // trials correctly (they are in its training set, up-weighted).
        let mut correct = 0;
        for s in enroll.samples() {
            if af.recognize_primary(&s.trace).unwrap().gesture() == s.label.gesture() {
                correct += 1;
            }
        }
        assert!(correct >= 7, "correct {correct}/8");
    }

    #[test]
    fn enrollment_dominates_when_mix_is_high() {
        // Base says feature > 0 ⇒ class 0; the enrolled user inverts it.
        let mut base = LabeledFeatures::default();
        for i in 0..200 {
            let v = if i % 2 == 0 { 1.0 } else { -1.0 };
            base.x.push(vec![v]);
            base.y.push(usize::from(i % 2 == 1)); // +1 ⇒ 0, −1 ⇒ 1
            base.users.push(0);
            base.sessions.push(0);
            base.reps.push(i);
        }
        let config = AirFingerConfig {
            forest_trees: 15,
            ..Default::default()
        };
        let mut af = AirFinger::new(config);
        af.train_detect_features(&base.x, &base.y).unwrap();

        let mut adapter = UserAdapter::new(base).with_mix(0.9);
        for _ in 0..4 {
            adapter.enroll_features(vec![1.0], Gesture::DoubleCircle); // index 1
            adapter.enroll_features(vec![-1.0], Gesture::Circle); // index 0
        }
        // Before adapting, the population rule holds: +1 ⇒ class 0.
        assert_eq!(af.detect_recognizer().predict_features(&[1.0]).unwrap(), 0);
        adapter.apply(&mut af).unwrap();
        // The up-weighted enrollment flips the decision at +1.
        assert_eq!(af.detect_recognizer().predict_features(&[1.0]).unwrap(), 1);
        assert_eq!(af.detect_recognizer().predict_features(&[-1.0]).unwrap(), 0);
    }
}
