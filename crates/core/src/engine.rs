//! Real-time streaming engine: sample-by-sample recognition.
//!
//! The prototype streams 3-channel ADC readings at 100 Hz; this engine
//! consumes them one sample at a time with constant memory, maintaining
//! per-channel streaming SBC, streaming dynamic thresholds (the paper's
//! calibrate-as-you-accumulate `I_seg`), and a streaming segmenter. When a
//! gesture window closes, the trained [`AirFinger`] pipeline classifies it
//! and a [`Recognition`] event is emitted.

use crate::error::AirFingerError;
use crate::events::Recognition;
use crate::pipeline::AirFinger;
use crate::processing::GestureWindow;
use crate::zebra::ScrollDirection;
use airfinger_dsp::sbc::{Sbc, SbcStream};
use airfinger_dsp::segment::{Segment, StreamingSegmenter};
use airfinger_dsp::threshold::DynamicThreshold;
use airfinger_obs::events::Event as ObsEvent;
use airfinger_obs::monitor::EngineMonitor;
use airfinger_obs::recorder::Dump;
use airfinger_obs::window::{Outcome, WindowStats};
use airfinger_obs::HealthState;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

/// How many samples of history the engine retains (40 s at 100 Hz) — far
/// longer than any gesture, bounded for constant memory.
const HISTORY_CAPACITY: usize = 4096;

/// Single-threaded streaming engine.
#[derive(Debug)]
pub struct StreamingEngine {
    /// Shared so a fleet of engines can serve one trained model without
    /// cloning the forest per session; a solo engine just owns the only
    /// reference.
    pipeline: Arc<AirFinger>,
    sbc: Vec<SbcStream>,
    thresholds: Vec<DynamicThreshold>,
    segmenter: StreamingSegmenter,
    raw_hist: Vec<VecDeque<f64>>,
    delta_hist: Vec<VecDeque<f64>>,
    /// Short per-channel smoothing window over ΔRSS² (mirrors the batch
    /// processor's spike dilution).
    smooth: Vec<VecDeque<f64>>,
    /// First above-threshold sample of each channel within the currently
    /// open gesture (global index) — the live ascending points behind
    /// [`StreamingEngine::live_hint`].
    live_ascents: Vec<Option<usize>>,
    offset: usize,
    channel_count: usize,
    /// Optional continuous health monitor (sliding windows, SLO health
    /// model, flight recorder) fed by every push; see
    /// [`StreamingEngine::attach_monitor`].
    monitor: Option<EngineMonitor>,
}

/// Length of the streaming ΔRSS² smoothing window.
const SMOOTH_LEN: usize = 5;

impl StreamingEngine {
    /// Build an engine around a trained pipeline for `channel_count`
    /// photodiodes.
    ///
    /// # Errors
    ///
    /// Returns [`AirFingerError::NotTrained`] if the pipeline has not been
    /// trained, and [`AirFingerError::InvalidTrainingData`] for a zero
    /// channel count.
    pub fn new(pipeline: AirFinger, channel_count: usize) -> Result<Self, AirFingerError> {
        Self::with_shared(Arc::new(pipeline), channel_count)
    }

    /// Build an engine around an already-shared trained pipeline. Many
    /// engines can hold the same `Arc` — recognition only ever borrows the
    /// pipeline immutably — which is how the fleet layer serves one model
    /// to every session.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StreamingEngine::new`].
    pub fn with_shared(
        pipeline: Arc<AirFinger>,
        channel_count: usize,
    ) -> Result<Self, AirFingerError> {
        if !pipeline.is_trained() {
            return Err(AirFingerError::NotTrained);
        }
        if channel_count == 0 {
            return Err(AirFingerError::InvalidTrainingData("zero channel count"));
        }
        let config = *pipeline.config();
        Ok(StreamingEngine {
            sbc: (0..channel_count)
                .map(|_| Sbc::new(config.sbc_window).stream())
                .collect(),
            thresholds: (0..channel_count)
                .map(|_| DynamicThreshold::new(config.initial_threshold, config.threshold_forget))
                .collect(),
            segmenter: StreamingSegmenter::new(config.segmenter),
            raw_hist: vec![VecDeque::with_capacity(HISTORY_CAPACITY); channel_count],
            delta_hist: vec![VecDeque::with_capacity(HISTORY_CAPACITY); channel_count],
            smooth: vec![VecDeque::with_capacity(SMOOTH_LEN); channel_count],
            live_ascents: vec![None; channel_count],
            offset: 0,
            channel_count,
            monitor: None,
            pipeline,
        })
    }

    /// Attach a continuous health monitor. Every subsequent push feeds
    /// its sliding window (sample counts, recognition outcomes, mean
    /// dynamic threshold, per-push latency) and its flight-recorder ring;
    /// [`StreamingEngine::flush`] closes the trailing partial window.
    /// Replaces any previously attached monitor.
    pub fn attach_monitor(&mut self, monitor: EngineMonitor) {
        self.monitor = Some(monitor);
    }

    /// Detach and return the monitor, if one is attached.
    pub fn detach_monitor(&mut self) -> Option<EngineMonitor> {
        self.monitor.take()
    }

    /// The attached monitor, if any.
    #[must_use]
    pub fn monitor(&self) -> Option<&EngineMonitor> {
        self.monitor.as_ref()
    }

    /// Mutable access to the attached monitor (e.g. to drain dumps).
    pub fn monitor_mut(&mut self) -> Option<&mut EngineMonitor> {
        self.monitor.as_mut()
    }

    /// Global index of the next sample.
    #[must_use]
    pub fn position(&self) -> usize {
        self.segmenter.position()
    }

    /// Whether a gesture is currently open.
    #[must_use]
    pub fn in_gesture(&self) -> bool {
        self.segmenter.in_gesture()
    }

    /// The wrapped pipeline.
    #[must_use]
    pub fn pipeline(&self) -> &AirFinger {
        &self.pipeline
    }

    /// A new shared handle to the wrapped pipeline (see
    /// [`StreamingEngine::with_shared`]).
    #[must_use]
    pub fn shared_pipeline(&self) -> Arc<AirFinger> {
        Arc::clone(&self.pipeline)
    }

    /// Push one multi-channel sample; returns a recognition event when a
    /// gesture window closes at this sample.
    ///
    /// # Errors
    ///
    /// Returns [`AirFingerError::InvalidTrainingData`] for a wrong-width
    /// sample and propagates recognition errors.
    // lint: hot-path-root — the per-sample streaming entry point
    pub fn push(&mut self, sample: &[f64]) -> Result<Option<Recognition>, AirFingerError> {
        if sample.len() != self.channel_count {
            return Err(AirFingerError::InvalidTrainingData("sample width mismatch"));
        }
        let span = airfinger_obs::span!("engine_push_seconds")
            .with_latency(airfinger_obs::latency!("engine_push_ns"));
        airfinger_obs::counter!("engine_samples_total").inc();
        let result = match self.ingest(sample) {
            Some(seg) => self.emit(seg).map(Some),
            None => Ok(None),
        };
        // Between gestures, forget the crossings so pre-gesture noise
        // cannot pre-arm the next hint.
        if !self.segmenter.in_gesture() {
            self.live_ascents.fill(None);
        }
        if let Some(monitor) = self.monitor.as_mut() {
            let outcome = match &result {
                Ok(Some(Recognition::Detect { .. })) => Outcome::Detect,
                Ok(Some(Recognition::Track { .. })) => Outcome::Track,
                Ok(Some(Recognition::Rejected { .. })) => Outcome::Rejected,
                Ok(None) | Err(_) => Outcome::Quiet,
            };
            let mean_threshold = mean_of(&self.thresholds);
            // The span's live elapsed time stands in for this push's
            // latency; with recording off it reads 0 (spans never touch
            // the clock), which keeps the monitor's counters intact while
            // the latency gauges go dark.
            let _ = monitor.observe_push(sample, span.elapsed_s(), mean_threshold, outcome);
        }
        result
    }

    /// Push one sample without classifying a closed gesture window.
    ///
    /// Identical to [`StreamingEngine::push`] up to the moment a gesture
    /// window closes: quiet pushes feed the monitor as usual and return
    /// [`DeferredPush::Quiet`]. When a window closes, it is returned as a
    /// [`PendingWindow`] instead of being recognized, and the monitor
    /// observation of the closing push is deferred with it — the caller
    /// must classify the window (typically batched with windows from other
    /// engines) and call [`StreamingEngine::resolve_pending`] before
    /// pushing more samples, which keeps the monitor's observation
    /// sequence bit-identical to a plain `push` loop.
    ///
    /// # Errors
    ///
    /// Returns [`AirFingerError::InvalidTrainingData`] for a wrong-width
    /// sample.
    pub fn push_deferred(&mut self, sample: &[f64]) -> Result<DeferredPush, AirFingerError> {
        if sample.len() != self.channel_count {
            return Err(AirFingerError::InvalidTrainingData("sample width mismatch"));
        }
        let span = airfinger_obs::span!("engine_push_seconds")
            .with_latency(airfinger_obs::latency!("engine_push_ns"));
        airfinger_obs::counter!("engine_samples_total").inc();
        let closed = self.ingest(sample);
        if !self.segmenter.in_gesture() {
            self.live_ascents.fill(None);
        }
        match closed {
            Some(seg) => {
                let window = self.window(seg);
                Ok(DeferredPush::Closed(PendingWindow {
                    window,
                    // lint: hot-path — deferred pushes must own the sample past the call
                    sample: sample.to_vec(),
                    push_seconds: span.elapsed_s(),
                    mean_threshold: mean_of(&self.thresholds),
                }))
            }
            None => {
                let mean_threshold = mean_of(&self.thresholds);
                if let Some(monitor) = self.monitor.as_mut() {
                    let _ = monitor.observe_push(
                        sample,
                        span.elapsed_s(),
                        mean_threshold,
                        Outcome::Quiet,
                    );
                }
                Ok(DeferredPush::Quiet)
            }
        }
    }

    /// Complete a deferred push: replay the monitor observation for the
    /// push that closed `pending`, with the outcome derived from the
    /// caller-supplied recognition result exactly as [`StreamingEngine::push`]
    /// derives it. Must be called once per [`PendingWindow`] before the
    /// next push on this engine.
    pub fn resolve_pending(
        &mut self,
        pending: &PendingWindow,
        result: &Result<Recognition, AirFingerError>,
    ) {
        if let Some(monitor) = self.monitor.as_mut() {
            let outcome = match result {
                Ok(Recognition::Detect { .. }) => Outcome::Detect,
                Ok(Recognition::Track { .. }) => Outcome::Track,
                Ok(Recognition::Rejected { .. }) => Outcome::Rejected,
                Err(_) => Outcome::Quiet,
            };
            let _ = monitor.observe_push(
                &pending.sample,
                pending.push_seconds,
                pending.mean_threshold,
                outcome,
            );
        }
    }

    /// Advance every streaming stage by one sample; returns the segment
    /// when this sample closed a gesture window. Shared verbatim by
    /// [`StreamingEngine::push`] and [`StreamingEngine::push_deferred`].
    fn ingest(&mut self, sample: &[f64]) -> Option<Segment> {
        let mut activity = 0.0f64;
        let position = self.segmenter.position();
        for (k, &raw) in sample.iter().enumerate() {
            let delta = self.sbc[k].push(raw);
            let win = &mut self.smooth[k];
            if win.len() == SMOOTH_LEN {
                win.pop_front();
            }
            win.push_back(delta);
            let smoothed = win.iter().sum::<f64>() / win.len() as f64;
            self.thresholds[k].observe(smoothed);
            let t = self.thresholds[k].threshold().max(f64::MIN_POSITIVE);
            activity = activity.max(smoothed / t);
            // Live ascending point: first crossing of this channel within
            // the open gesture.
            if smoothed > t && self.live_ascents[k].is_none() {
                self.live_ascents[k] = Some(position);
            }
            self.raw_hist[k].push_back(raw);
            self.delta_hist[k].push_back(delta);
        }
        if self.raw_hist[0].len() > HISTORY_CAPACITY {
            for k in 0..self.channel_count {
                self.raw_hist[k].pop_front();
                self.delta_hist[k].pop_front();
            }
            self.offset += 1;
        }
        self.segmenter.push(activity, 1.0)
    }

    /// Early scroll-direction hint for the *currently open* gesture — the
    /// paper's §IV-D1 claim that direction is available "in real-time,
    /// without waiting for the end of this gesture". `None` while no
    /// gesture is open or while the outer-channel ascent order is still
    /// ambiguous (which is the normal state for detect-aimed gestures).
    #[must_use]
    pub fn live_hint(&self) -> Option<ScrollDirection> {
        if !self.segmenter.in_gesture() {
            return None;
        }
        let first = *self.live_ascents.first()?;
        let last = *self.live_ascents.last()?;
        let ig = self.pipeline.config().ig_samples();
        match (first, last) {
            (Some(a), Some(b)) if a + ig <= b => Some(ScrollDirection::Up),
            (Some(a), Some(b)) if b + ig <= a => Some(ScrollDirection::Down),
            _ => None,
        }
    }

    /// Close any open gesture at end of stream.
    ///
    /// # Errors
    ///
    /// Propagates recognition errors.
    pub fn flush(&mut self) -> Result<Option<Recognition>, AirFingerError> {
        let _span = airfinger_obs::span!("engine_flush_seconds");
        let result = match self.segmenter.flush() {
            Some(seg) => self.emit(seg).map(Some),
            None => Ok(None),
        };
        if let Some(monitor) = self.monitor.as_mut() {
            let _ = monitor.finish();
        }
        result
    }

    fn emit(&self, segment: Segment) -> Result<Recognition, AirFingerError> {
        let window = self.window(segment);
        self.pipeline.recognize_window(&window)
    }

    /// Snapshot the gesture window for a closed segment from the retained
    /// history.
    fn window(&self, segment: Segment) -> GestureWindow {
        let start = segment.start.max(self.offset) - self.offset;
        let end = (segment.end.max(self.offset) - self.offset).min(self.raw_hist[0].len());
        let slice = |hist: &VecDeque<f64>| -> Vec<f64> {
            hist.iter()
                .skip(start)
                .take(end.saturating_sub(start))
                .copied()
                .collect()
        };
        GestureWindow {
            segment,
            raw: self.raw_hist.iter().map(slice).collect(),
            delta: self.delta_hist.iter().map(slice).collect(),
            thresholds: self
                .thresholds
                .iter()
                .map(DynamicThreshold::threshold)
                .collect(),
            sample_rate_hz: self.pipeline.config().sample_rate_hz,
        }
    }
}

/// Mean dynamic threshold across channels (the monitor's drift signal).
fn mean_of(thresholds: &[DynamicThreshold]) -> f64 {
    thresholds
        .iter()
        .map(DynamicThreshold::threshold)
        .sum::<f64>()
        / thresholds.len().max(1) as f64
}

/// Outcome of [`StreamingEngine::push_deferred`].
#[derive(Debug)]
pub enum DeferredPush {
    /// No gesture window closed at this sample; the monitor (if attached)
    /// has already observed the push.
    Quiet,
    /// A gesture window closed at this sample. Classification and the
    /// monitor observation are deferred until
    /// [`StreamingEngine::resolve_pending`].
    Closed(PendingWindow),
}

/// A closed gesture window awaiting classification, carrying everything
/// needed to replay the monitor observation of the push that closed it.
#[derive(Debug, Clone)]
pub struct PendingWindow {
    window: GestureWindow,
    sample: Vec<f64>,
    push_seconds: f64,
    mean_threshold: f64,
}

impl PendingWindow {
    /// The closed gesture window to classify.
    #[must_use]
    pub fn window(&self) -> &GestureWindow {
        &self.window
    }
}

/// A thread-safe handle around a [`StreamingEngine`]: the acquisition
/// thread pushes samples while a UI thread inspects state.
#[derive(Debug, Clone)]
pub struct SharedEngine {
    inner: Arc<Mutex<StreamingEngine>>,
}

impl SharedEngine {
    /// Wrap an engine.
    #[must_use]
    pub fn new(engine: StreamingEngine) -> Self {
        SharedEngine {
            inner: Arc::new(Mutex::new(engine)),
        }
    }

    /// Push one sample (see [`StreamingEngine::push`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`StreamingEngine::push`].
    pub fn push(&self, sample: &[f64]) -> Result<Option<Recognition>, AirFingerError> {
        // Poisoning is recovered rather than propagated: the engine's
        // state stays valid across a panicked peer (every mutation is
        // single-assignment per sample), so the lost-update is benign.
        self.inner
            // lint: hot-path — SharedEngine IS the lock adapter; lock-free callers use StreamingEngine
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(sample)
    }

    /// Close any open gesture.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StreamingEngine::flush`].
    pub fn flush(&self) -> Result<Option<Recognition>, AirFingerError> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .flush()
    }

    /// Whether a gesture is currently open.
    #[must_use]
    pub fn in_gesture(&self) -> bool {
        self.inner
            // lint: hot-path — SharedEngine IS the lock adapter; lock-free callers use StreamingEngine
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .in_gesture()
    }

    /// Global sample position.
    #[must_use]
    pub fn position(&self) -> usize {
        self.inner
            // lint: hot-path — SharedEngine IS the lock adapter; lock-free callers use StreamingEngine
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .position()
    }

    /// Attach a continuous health monitor (see
    /// [`StreamingEngine::attach_monitor`]).
    pub fn attach_monitor(&self, monitor: EngineMonitor) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .attach_monitor(monitor);
    }

    /// Current health verdict, when a monitor is attached.
    #[must_use]
    pub fn health(&self) -> Option<HealthState> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .monitor()
            .map(EngineMonitor::health)
    }

    /// Statistics of the most recently closed monitoring window, when a
    /// monitor is attached and has closed one.
    #[must_use]
    pub fn last_window(&self) -> Option<WindowStats> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .monitor()
            .and_then(|m| m.last_window().cloned())
    }

    /// Drain pending flight-recorder dumps (empty when no monitor is
    /// attached or nothing breached).
    #[must_use]
    pub fn take_dumps(&self) -> Vec<Dump> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .monitor_mut()
            .map(EngineMonitor::take_dumps)
            .unwrap_or_default()
    }

    /// Drain the monitor's buffered journal events (see
    /// [`airfinger_obs::events`]) in emission order so the caller can
    /// publish them into a journal. Empty when no monitor is attached,
    /// or when the monitor publishes into a journal directly.
    #[must_use]
    pub fn take_events(&self) -> Vec<ObsEvent> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .monitor_mut()
            .map(EngineMonitor::take_events)
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AirFingerConfig;
    use airfinger_synth::dataset::{generate_corpus, CorpusSpec};

    fn trained() -> AirFinger {
        let spec = CorpusSpec {
            users: 2,
            sessions: 1,
            reps: 3,
            ..Default::default()
        };
        let corpus = generate_corpus(&spec);
        let mut af = AirFinger::new(AirFingerConfig {
            forest_trees: 20,
            ..Default::default()
        });
        af.train_on_corpus(&corpus, None).unwrap();
        af
    }

    #[test]
    fn untrained_pipeline_rejected() {
        let af = AirFinger::new(AirFingerConfig::default());
        assert!(matches!(
            StreamingEngine::new(af, 3),
            Err(AirFingerError::NotTrained)
        ));
    }

    #[test]
    fn wrong_width_sample_rejected() {
        let mut e = StreamingEngine::new(trained(), 3).unwrap();
        assert!(e.push(&[1.0]).is_err());
    }

    #[test]
    fn recognizes_streamed_gesture() {
        let spec = CorpusSpec {
            users: 1,
            sessions: 1,
            reps: 2,
            ..Default::default()
        };
        let corpus = generate_corpus(&spec);
        let mut engine = StreamingEngine::new(trained(), 3).unwrap();
        let mut events = Vec::new();
        let sample0 = &corpus.samples()[0];
        let trace = &sample0.trace;
        for i in 0..trace.len() {
            let s: Vec<f64> = (0..3).map(|k| trace.channel(k)[i]).collect();
            if let Some(ev) = engine.push(&s).unwrap() {
                events.push(ev);
            }
        }
        if let Some(ev) = engine.flush().unwrap() {
            events.push(ev);
        }
        assert!(!events.is_empty(), "streamed gesture not detected");
    }

    #[test]
    fn quiet_stream_emits_nothing() {
        let mut engine = StreamingEngine::new(trained(), 3).unwrap();
        for _ in 0..500 {
            assert!(engine.push(&[200.0, 200.0, 200.0]).unwrap().is_none());
        }
        assert!(engine.flush().unwrap().is_none());
        assert!(!engine.in_gesture());
    }

    #[test]
    fn position_advances() {
        let mut engine = StreamingEngine::new(trained(), 3).unwrap();
        for _ in 0..10 {
            let _ = engine.push(&[200.0, 200.0, 200.0]);
        }
        assert_eq!(engine.position(), 10);
    }

    #[test]
    fn live_hint_appears_during_a_scroll() {
        use airfinger_synth::dataset::generate_sample;
        use airfinger_synth::gesture::{Gesture, SampleLabel};
        use airfinger_synth::profile::UserProfile;
        let spec = CorpusSpec {
            users: 1,
            sessions: 1,
            reps: 1,
            ..Default::default()
        };
        let profile = UserProfile::sample(0, spec.seed);
        let s = generate_sample(
            &profile,
            SampleLabel::Gesture(Gesture::ScrollUp),
            0,
            0,
            &spec,
        );
        let mut engine = StreamingEngine::new(trained(), 3).unwrap();
        let mut hint_before_close = None;
        let mut closed = false;
        for i in 0..s.trace.len() {
            let sample = [
                s.trace.channel(0)[i],
                s.trace.channel(1)[i],
                s.trace.channel(2)[i],
            ];
            if engine.push(&sample).unwrap().is_some() {
                closed = true;
            }
            if !closed {
                if let Some(h) = engine.live_hint() {
                    hint_before_close.get_or_insert(h);
                }
            }
        }
        // The direction was available before the gesture window closed.
        assert_eq!(
            hint_before_close,
            Some(crate::zebra::ScrollDirection::Up),
            "live hint during the sweep"
        );
    }

    #[test]
    fn no_hint_while_idle() {
        let mut engine = StreamingEngine::new(trained(), 3).unwrap();
        for _ in 0..200 {
            engine.push(&[230.0, 231.0, 229.0]).unwrap();
            assert_eq!(engine.live_hint(), None);
        }
    }

    #[test]
    fn attached_monitor_observes_the_stream() {
        use airfinger_obs::monitor::with_horizon;
        let spec = CorpusSpec {
            users: 1,
            sessions: 1,
            reps: 2,
            ..Default::default()
        };
        let corpus = generate_corpus(&spec);
        let mut engine = StreamingEngine::new(trained(), 3).unwrap();
        engine.attach_monitor(with_horizon(50));
        let trace = &corpus.samples()[0].trace;
        for i in 0..trace.len() {
            let s: Vec<f64> = (0..3).map(|k| trace.channel(k)[i]).collect();
            engine.push(&s).unwrap();
        }
        engine.flush().unwrap();
        let monitor = engine.monitor().expect("monitor attached");
        assert_eq!(monitor.samples_seen() as usize, trace.len());
        assert!(monitor.windows_closed() >= 1, "windows closed");
        // A single gesture trace is too short to breach any SLO.
        assert!(monitor.health().level() < 2, "not unhealthy");
        let detached = engine.detach_monitor().expect("detaches");
        assert!(engine.monitor().is_none());
        assert_eq!(detached.dump_count(), 0);
    }

    #[test]
    fn shared_engine_monitor_accessors() {
        use airfinger_obs::monitor::with_horizon;
        let engine = SharedEngine::new(StreamingEngine::new(trained(), 3).unwrap());
        assert_eq!(engine.health(), None);
        engine.attach_monitor(with_horizon(10));
        // One closed quiet window: below the consecutive-stall ceiling.
        for _ in 0..15 {
            engine.push(&[200.0, 200.0, 200.0]).unwrap();
        }
        assert_eq!(engine.health(), Some(airfinger_obs::HealthState::Healthy));
        assert!(engine.last_window().is_some());
        assert!(engine.take_dumps().is_empty());
    }

    #[test]
    fn shared_engine_is_usable_across_threads() {
        let engine = SharedEngine::new(StreamingEngine::new(trained(), 3).unwrap());
        let e2 = engine.clone();
        let handle = std::thread::spawn(move || {
            for _ in 0..100 {
                e2.push(&[200.0, 200.0, 200.0]).unwrap();
            }
        });
        handle.join().unwrap();
        assert_eq!(engine.position(), 100);
    }
}
