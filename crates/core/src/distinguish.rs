//! Distinguishing detect-aimed from track-aimed gestures (§IV-E).
//!
//! "When performing a detect-aimed gesture, signal ascending points from
//! all PDs almost occur simultaneously … when performing a track-aimed
//! gesture, signal ascending points from all PDs occur in orders." The
//! rule: ascent spread below `I_g` (30 ms) ⇒ detect-aimed; above ⇒
//! track-aimed.

use crate::config::AirFingerConfig;
use crate::processing::GestureWindow;
use serde::{Deserialize, Serialize};

/// The two gesture families of §III-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GestureFamily {
    /// Recognized from features (circle, rub, click families).
    DetectAimed,
    /// Tracked by ZEBRA (scrolls).
    TrackAimed,
}

/// Family distinguisher.
#[derive(Debug, Clone, Copy)]
pub struct Distinguisher {
    config: AirFingerConfig,
}

impl Distinguisher {
    /// Create a distinguisher with `config`.
    #[must_use]
    pub fn new(config: AirFingerConfig) -> Self {
        Distinguisher { config }
    }

    /// Per-channel ascending points within a window (see
    /// [`GestureWindow::ascents`]).
    #[must_use]
    pub fn ascents(&self, window: &GestureWindow) -> Vec<Option<usize>> {
        window.ascents(&self.config)
    }

    /// Classify the window's family.
    ///
    /// Detect-aimed when the cross-channel envelope lag (the paper's time
    /// difference between signal ascending points) is below `I_g`;
    /// track-aimed when it is at least `I_g` **or** when only one *outer*
    /// photodiode carries gesture energy (the paper's partial-scroll case:
    /// a scroll passing only `P1` is still a scroll).
    #[must_use]
    // lint: hot-path-root — hosts the distinguish stage span
    pub fn classify(&self, window: &GestureWindow) -> GestureFamily {
        let _span =
            airfinger_obs::span!("pipeline_stage_seconds", stage = "distinguish").with_latency(
                airfinger_obs::latency!("pipeline_stage_ns", stage = "distinguish"),
            );
        let timing = window.channel_timing(&self.config);
        let ig = self.config.ig_samples() as isize;
        let family = match timing.lag_samples {
            Some(lag) => {
                if lag.abs() >= ig {
                    GestureFamily::TrackAimed
                } else {
                    GestureFamily::DetectAimed
                }
            }
            None => {
                let n = timing.active.len();
                let lone_outer = timing.active_count() == 1
                    && n >= 2
                    && (timing.active[0] || timing.active[n - 1]);
                if lone_outer {
                    GestureFamily::TrackAimed
                } else {
                    GestureFamily::DetectAimed
                }
            }
        };
        match family {
            GestureFamily::DetectAimed => {
                airfinger_obs::counter!("pipeline_family_total", family = "detect").inc();
            }
            GestureFamily::TrackAimed => {
                airfinger_obs::counter!("pipeline_family_total", family = "track").inc();
            }
        }
        family
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airfinger_dsp::segment::Segment;

    /// Build a 3-channel window with Gaussian energy bumps centered at the
    /// given samples (None = channel stays at the noise floor).
    fn window_with_bumps(centers: [Option<usize>; 3], n: usize) -> GestureWindow {
        let delta: Vec<Vec<f64>> = centers
            .iter()
            .map(|c| {
                (0..n)
                    .map(|i| match c {
                        Some(center) => {
                            let d = (i as f64 - *center as f64) / 8.0;
                            120.0 * (-d * d).exp()
                        }
                        None => 0.5,
                    })
                    .collect()
            })
            .collect();
        GestureWindow {
            segment: Segment::new(0, n),
            raw: delta.clone(),
            delta,
            thresholds: vec![10.0; 3],
            sample_rate_hz: 100.0,
        }
    }

    fn distinguisher() -> Distinguisher {
        Distinguisher::new(AirFingerConfig::default())
    }

    #[test]
    fn simultaneous_envelopes_are_detect_aimed() {
        let w = window_with_bumps([Some(50), Some(51), Some(50)], 120);
        assert_eq!(distinguisher().classify(&w), GestureFamily::DetectAimed);
    }

    #[test]
    fn traveling_envelopes_are_track_aimed() {
        // 200 ms lag >> I_g = 30 ms.
        let w = window_with_bumps([Some(30), Some(50), Some(70)], 140);
        assert_eq!(distinguisher().classify(&w), GestureFamily::TrackAimed);
    }

    #[test]
    fn lag_at_ig_is_track_aimed() {
        let ig = AirFingerConfig::default().ig_samples();
        let w = window_with_bumps([Some(40), Some(40), Some(40 + 2 * ig)], 140);
        assert_eq!(distinguisher().classify(&w), GestureFamily::TrackAimed);
    }

    #[test]
    fn lone_outer_channel_is_partial_scroll() {
        let only_p1 = window_with_bumps([Some(40), None, None], 100);
        let only_p3 = window_with_bumps([None, None, Some(40)], 100);
        assert_eq!(
            distinguisher().classify(&only_p1),
            GestureFamily::TrackAimed
        );
        assert_eq!(
            distinguisher().classify(&only_p3),
            GestureFamily::TrackAimed
        );
    }

    #[test]
    fn lone_middle_channel_is_detect_aimed() {
        let w = window_with_bumps([None, Some(40), None], 100);
        assert_eq!(distinguisher().classify(&w), GestureFamily::DetectAimed);
    }

    #[test]
    fn no_energy_defaults_to_detect_aimed() {
        let w = window_with_bumps([None, None, None], 100);
        assert_eq!(distinguisher().classify(&w), GestureFamily::DetectAimed);
    }

    #[test]
    fn ascents_preserve_ordering_and_absence() {
        let w = window_with_bumps([Some(30), Some(60), None], 120);
        let a = distinguisher().ascents(&w);
        let (a0, a1) = (a[0].unwrap(), a[1].unwrap());
        assert!(a0 < a1, "ascent order: {a0} vs {a1}");
    }

    #[test]
    fn timing_reports_active_channels() {
        let w = window_with_bumps([Some(30), None, Some(70)], 120);
        let timing = w.channel_timing(&AirFingerConfig::default());
        assert_eq!(timing.active, vec![true, false, true]);
        assert_eq!(timing.first_active, Some(0));
        assert_eq!(timing.last_active, Some(2));
        let lag = timing.lag_samples.unwrap();
        assert!((35..=45).contains(&(lag as usize)), "lag {lag}");
    }
}
