//! Recognition results emitted by the pipeline.

use crate::zebra::{ScrollDirection, ScrollTrack};
use airfinger_dsp::segment::Segment;
use airfinger_synth::gesture::Gesture;
use serde::{Deserialize, Serialize};

/// The outcome of recognizing one gesture window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Recognition {
    /// A detect-aimed gesture.
    Detect {
        /// The recognized gesture.
        gesture: Gesture,
        /// Sample range of the gesture in the source stream.
        segment: Segment,
    },
    /// A track-aimed gesture with its ZEBRA track.
    Track {
        /// Direction, velocity and displacement of the scroll.
        track: ScrollTrack,
        /// Sample range of the gesture in the source stream.
        segment: Segment,
    },
    /// A segmented window rejected as an unintentional motion.
    Rejected {
        /// Sample range of the rejected window.
        segment: Segment,
    },
}

impl Recognition {
    /// The recognized gesture, mapping scroll tracks onto
    /// [`Gesture::ScrollUp`] / [`Gesture::ScrollDown`]; `None` for
    /// rejected windows.
    #[must_use]
    pub fn gesture(&self) -> Option<Gesture> {
        match self {
            Recognition::Detect { gesture, .. } => Some(*gesture),
            Recognition::Track { track, .. } => Some(match track.direction {
                ScrollDirection::Up => Gesture::ScrollUp,
                ScrollDirection::Down => Gesture::ScrollDown,
            }),
            Recognition::Rejected { .. } => None,
        }
    }

    /// The window's sample range.
    #[must_use]
    pub fn segment(&self) -> Segment {
        match self {
            Recognition::Detect { segment, .. }
            | Recognition::Track { segment, .. }
            | Recognition::Rejected { segment } => *segment,
        }
    }

    /// Whether the window was accepted as a deliberate gesture.
    #[must_use]
    pub fn is_accepted(&self) -> bool {
        !matches!(self, Recognition::Rejected { .. })
    }
}

impl std::fmt::Display for Recognition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Recognition::Detect { gesture, segment } => {
                write!(f, "{gesture} @ [{}, {})", segment.start, segment.end)
            }
            Recognition::Track { track, segment } => write!(
                f,
                "{} ({:.0} mm/s) @ [{}, {})",
                track.direction, track.velocity_mm_s, segment.start, segment.end
            ),
            Recognition::Rejected { segment } => {
                write!(f, "rejected @ [{}, {})", segment.start, segment.end)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zebra::VelocitySource;

    fn track() -> ScrollTrack {
        ScrollTrack {
            direction: ScrollDirection::Down,
            velocity_mm_s: 100.0,
            velocity_source: VelocitySource::Measured,
            delta_t_s: Some(0.2),
            duration_s: 0.5,
        }
    }

    #[test]
    fn gesture_mapping() {
        let d = Recognition::Detect {
            gesture: Gesture::Rub,
            segment: Segment::new(0, 10),
        };
        let t = Recognition::Track {
            track: track(),
            segment: Segment::new(5, 20),
        };
        let r = Recognition::Rejected {
            segment: Segment::new(0, 3),
        };
        assert_eq!(d.gesture(), Some(Gesture::Rub));
        assert_eq!(t.gesture(), Some(Gesture::ScrollDown));
        assert_eq!(r.gesture(), None);
        assert!(d.is_accepted() && t.is_accepted() && !r.is_accepted());
    }

    #[test]
    fn segment_accessor() {
        let t = Recognition::Track {
            track: track(),
            segment: Segment::new(5, 20),
        };
        assert_eq!(t.segment(), Segment::new(5, 20));
    }

    #[test]
    fn display_is_readable() {
        let t = Recognition::Track {
            track: track(),
            segment: Segment::new(5, 20),
        };
        let s = t.to_string();
        assert!(s.contains("scroll down") && s.contains("100"));
    }
}
