//! Shared experiment context: corpus scale, pipeline configuration and
//! cached derived data (the feature matrices several experiments reuse).

use airfinger_core::config::AirFingerConfig;
use airfinger_core::train::{all_gesture_feature_set, LabeledFeatures};
use airfinger_synth::dataset::{generate_corpus, Corpus, CorpusSpec};
use std::sync::OnceLock;

/// How large the synthesized corpora are relative to the paper's protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small corpora for smoke runs (a few repetitions).
    Quick,
    /// Medium corpora — the calibration default.
    Standard,
    /// The paper's full protocol (10 × 5 × 25 × 8 = 10,000 samples).
    Full,
}

impl Scale {
    /// Parse from a CLI word.
    #[must_use]
    pub fn parse(word: &str) -> Option<Scale> {
        match word {
            "quick" => Some(Scale::Quick),
            "standard" => Some(Scale::Standard),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Repetitions per gesture per session (paper: 25).
    #[must_use]
    pub fn reps(&self) -> usize {
        match self {
            Scale::Quick => 3,
            Scale::Standard => 8,
            Scale::Full => 25,
        }
    }

    /// Sessions per volunteer (paper: 5).
    #[must_use]
    pub fn sessions(&self) -> usize {
        match self {
            Scale::Quick => 2,
            Scale::Standard | Scale::Full => 5,
        }
    }

    /// Volunteers in the main corpus (paper: 10).
    #[must_use]
    pub fn users(&self) -> usize {
        match self {
            Scale::Quick => 4,
            Scale::Standard | Scale::Full => 10,
        }
    }

    /// Scale a paper repetition count proportionally (at least 2).
    #[must_use]
    pub fn scaled(&self, paper_reps: usize) -> usize {
        let r = paper_reps * self.reps() / 25;
        r.max(2)
    }
}

/// Context shared by every experiment in one `repro` invocation.
#[derive(Debug)]
pub struct Context {
    /// Pipeline configuration (paper settings).
    pub config: AirFingerConfig,
    /// Corpus scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    // OnceLock rather than OnceCell so one `Context` can be shared by
    // experiments fanned across worker threads.
    corpus: OnceLock<Corpus>,
    all_features: OnceLock<LabeledFeatures>,
}

impl Context {
    /// Create a context.
    #[must_use]
    pub fn new(scale: Scale, seed: u64) -> Self {
        Context {
            config: AirFingerConfig::default(),
            scale,
            seed,
            corpus: OnceLock::new(),
            all_features: OnceLock::new(),
        }
    }

    /// The main-protocol corpus spec (§V-B) at this scale.
    #[must_use]
    pub fn main_spec(&self) -> CorpusSpec {
        CorpusSpec {
            users: self.scale.users(),
            sessions: self.scale.sessions(),
            reps: self.scale.reps(),
            seed: self.seed,
            ..Default::default()
        }
    }

    /// The main corpus (generated once, cached).
    pub fn corpus(&self) -> &Corpus {
        self.corpus.get_or_init(|| {
            eprintln!(
                "[context] generating main corpus ({} users x {} sessions x {} reps x 8 gestures)…",
                self.scale.users(),
                self.scale.sessions(),
                self.scale.reps()
            );
            generate_corpus(&self.main_spec())
        })
    }

    /// Table-I features over the whole main corpus, labels = gesture
    /// indices 0..8 (computed once, cached).
    pub fn all_features(&self) -> &LabeledFeatures {
        self.all_features.get_or_init(|| {
            let corpus = self.corpus();
            eprintln!(
                "[context] extracting features for {} samples…",
                corpus.len()
            );
            all_gesture_feature_set(corpus, &self.config)
        })
    }

    /// Restriction of [`Context::all_features`] to the six detect-aimed
    /// gestures (labels stay gesture indices 0..6 because the detect
    /// gestures occupy the first six indices).
    pub fn detect_features(&self) -> LabeledFeatures {
        let all = self.all_features();
        let keep: Vec<usize> = (0..all.len()).filter(|&i| all.y[i] < 6).collect();
        LabeledFeatures {
            x: keep.iter().map(|&i| all.x[i].clone()).collect(),
            y: keep.iter().map(|&i| all.y[i]).collect(),
            users: keep.iter().map(|&i| all.users[i]).collect(),
            sessions: keep.iter().map(|&i| all.sessions[i]).collect(),
            reps: keep.iter().map(|&i| all.reps[i]).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("x"), None);
    }

    #[test]
    fn scaled_counts() {
        assert_eq!(Scale::Full.scaled(25), 25);
        assert_eq!(Scale::Quick.scaled(25), 3);
        assert!(Scale::Quick.scaled(1) >= 2);
    }

    #[test]
    fn context_caches_corpus() {
        let ctx = Context::new(Scale::Quick, 3);
        let a = ctx.corpus() as *const _;
        let b = ctx.corpus() as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn detect_features_subset() {
        let ctx = Context::new(Scale::Quick, 3);
        let all = ctx.all_features();
        let det = ctx.detect_features();
        assert_eq!(det.len(), all.len() * 6 / 8);
        assert!(det.y.iter().all(|&l| l < 6));
    }
}
