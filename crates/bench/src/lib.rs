//! Experiment harness reproducing every table and figure of the airFinger
//! evaluation (§V), plus Criterion benches for the performance claims.
//!
//! Run via the `repro` binary:
//!
//! ```text
//! cargo run --release -p airfinger-bench --bin repro -- all --scale standard
//! cargo run --release -p airfinger-bench --bin repro -- fig10 fig11 --scale full
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod diff;
pub mod error;
pub mod experiments;
pub mod profdiff;
pub mod report;

use context::Context;
use report::Report;

pub use error::BenchError;

/// Every experiment id, in paper order.
pub const EXPERIMENT_IDS: [&str; 27] = [
    "fig3",
    "fig5",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "table2",
    "interference",
    "outdoor",
    "ablation",
    "importance",
    "baselines",
    "board",
    "selection",
    "adaptation",
    "soak",
    "fleet",
    "events",
    "profile",
    "perf",
];

/// Run one experiment by id.
///
/// # Errors
///
/// Returns [`BenchError::UnknownExperiment`] for an id outside
/// [`EXPERIMENT_IDS`], or the experiment's own failure.
pub fn run_experiment(id: &str, ctx: &Context) -> Result<Report, BenchError> {
    match id {
        "fig3" => experiments::fig03::run(ctx),
        "fig5" => experiments::fig05::run(ctx),
        "fig7" => experiments::fig07::run(ctx),
        "fig8" => experiments::fig08::run(ctx),
        "fig9" => experiments::fig09::run(ctx),
        "fig10" => experiments::fig10::run(ctx),
        "fig11" => experiments::fig11::run(ctx),
        "fig12" => experiments::fig12::run(ctx),
        "fig13" => experiments::fig13::run(ctx),
        "fig14" => experiments::fig14::run(ctx),
        "fig15" => experiments::fig15::run(ctx),
        "fig16" => experiments::fig16::run(ctx),
        "fig17" => experiments::fig17::run(ctx),
        "table2" => experiments::table2::run(ctx),
        "interference" => experiments::interference::run(ctx),
        "outdoor" => experiments::outdoor::run(ctx),
        "ablation" => experiments::ablation::run(ctx),
        "importance" => experiments::importance::run(ctx),
        "baselines" => experiments::baselines::run(ctx),
        "board" => experiments::board::run(ctx),
        "selection" => experiments::selection::run(ctx),
        "adaptation" => experiments::adaptation::run(ctx),
        "soak" => experiments::soak::run(ctx),
        "fleet" => experiments::fleet::run(ctx),
        "events" => experiments::events::run(ctx),
        "profile" => experiments::profile::run(ctx),
        "perf" => experiments::perf::run(ctx),
        _ => Err(BenchError::UnknownExperiment(id.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use context::Scale;

    #[test]
    fn unknown_id_errors() {
        let ctx = Context::new(Scale::Quick, 1);
        assert!(matches!(
            run_experiment("fig99", &ctx),
            Err(BenchError::UnknownExperiment(id)) if id == "fig99"
        ));
    }

    #[test]
    fn ids_are_unique() {
        let mut ids = EXPERIMENT_IDS.to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), EXPERIMENT_IDS.len());
    }
}
