//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all                       # every experiment at standard scale
//! repro fig10 table2              # a subset
//! repro all --scale full          # the paper's full 10,000-sample protocol
//! repro all --threads 4           # fan experiments across 4 workers
//! repro all --json results.json   # also dump machine-readable results
//! repro all --metrics run.json    # structured run report (timings + metrics)
//! repro all --label nightly       # also snapshot the report as BENCH_nightly.json
//! repro all --trace               # print every instrumentation span to stderr
//! repro all --trace-out t.json    # export a Chrome trace_event timeline
//! repro diff BASE.json NEW.json --max-time-regress 50 --min-accuracy 90
//! ```
//!
//! Experiments are independent given the shared [`Context`], so they fan
//! out across worker threads (`--threads`, the `AIRFINGER_THREADS`
//! environment variable, or the machine's core count). Reports are
//! printed in request order regardless of completion order.
//!
//! Per-experiment wall time has a single source of truth: a traced
//! [`airfinger_obs`] span per experiment, which prints to stderr on
//! completion *and* feeds the `repro_experiment_seconds` histogram that
//! the `--metrics` run report serializes — the stderr line and the JSON
//! number can never disagree.

use airfinger_bench::context::{Context, Scale};
use airfinger_bench::{run_experiment, EXPERIMENT_IDS};
use airfinger_obs::report::RunReport;
use airfinger_parallel::{effective_threads, par_run};

/// Counting allocator wrapper so the `profile` experiment (and any
/// future zero-alloc ratchet) can attribute allocation events to the
/// hot path. Pure pass-through to the system allocator plus two atomic
/// adds per event; negligible against real experiment cost.
#[global_allocator]
// lint: sync — CountingAlloc is two shared atomics; `GlobalAlloc` requires Sync
static ALLOC: airfinger_obs::CountingAlloc = airfinger_obs::CountingAlloc::new();

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("diff") {
        run_diff(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("profile-diff") {
        run_profile_diff(&args[1..]);
        return;
    }
    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::Standard;
    let mut seed = 0x41F1_6E12u64;
    let mut json_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut label: Option<String> = None;
    let mut threads_arg: Option<usize> = None;
    let mut trace_out: Option<String> = None;
    let mut profile_dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let word = it.next().map(String::as_str).unwrap_or("");
                match Scale::parse(word) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale `{word}` (quick|standard|full)");
                        std::process::exit(2);
                    }
                }
            }
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                }
            },
            "--threads" => match it.next().and_then(|s| s.parse().ok()) {
                Some(v) if v > 0 => threads_arg = Some(v),
                _ => {
                    eprintln!("--threads needs a positive integer");
                    std::process::exit(2);
                }
            },
            "--json" => match it.next() {
                Some(p) => json_path = Some(p.clone()),
                None => {
                    eprintln!("--json needs a path");
                    std::process::exit(2);
                }
            },
            "--metrics" => match it.next() {
                Some(p) => metrics_path = Some(p.clone()),
                None => {
                    eprintln!("--metrics needs a path");
                    std::process::exit(2);
                }
            },
            "--label" => match it.next() {
                Some(l) if !l.is_empty() => label = Some(l.clone()),
                _ => {
                    eprintln!("--label needs a name");
                    std::process::exit(2);
                }
            },
            "--profile-dir" => match it.next() {
                Some(p) if !p.is_empty() => {
                    airfinger_obs::profile::set_enabled(true);
                    profile_dir = Some(p.clone());
                }
                _ => {
                    eprintln!("--profile-dir needs a directory path");
                    std::process::exit(2);
                }
            },
            "--trace" => airfinger_obs::set_trace(true),
            "--trace-out" => match it.next() {
                Some(p) if !p.is_empty() => {
                    airfinger_obs::trace::set_capture(true);
                    trace_out = Some(p.clone());
                }
                _ => {
                    eprintln!("--trace-out needs a path");
                    std::process::exit(2);
                }
            },
            "--list" => {
                for id in EXPERIMENT_IDS {
                    println!("{id}");
                }
                return;
            }
            "--help" | "-h" => {
                print_help();
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = EXPERIMENT_IDS.iter().map(|s| s.to_string()).collect();
    }
    for id in &ids {
        if !EXPERIMENT_IDS.contains(&id.as_str()) {
            eprintln!("unknown experiment `{id}`; known: {EXPERIMENT_IDS:?}");
            std::process::exit(2);
        }
    }
    let threads = effective_threads(threads_arg).min(ids.len().max(1));
    let mut ctx = Context::new(scale, seed);
    if threads > 1 {
        // Parallelism lives at the experiment level here; pin the inner
        // training parallelism to one thread so the cores are not
        // oversubscribed. Results are unaffected either way.
        ctx.config.n_threads = 1;
        // Warm the shared caches before fanning out, so workers reuse one
        // corpus/feature computation instead of racing to build it.
        ctx.all_features();
    }
    eprintln!(
        "[repro] running {} experiment(s) on {threads} worker thread(s)",
        ids.len()
    );
    let run_span = airfinger_obs::span_with("repro_run_seconds", &[]);
    let timed: Vec<_> = par_run(ids.len(), threads, |i| {
        let span =
            airfinger_obs::span_with("repro_experiment_seconds", &[("id", &ids[i])]).traced();
        let result = run_experiment(&ids[i], &ctx);
        let elapsed = span.elapsed_s();
        drop(span);
        (result, elapsed)
    });
    let wall = run_span.elapsed_s();
    drop(run_span);
    let mut reports = Vec::with_capacity(timed.len());
    let mut timings = Vec::with_capacity(timed.len());
    for (id, (result, elapsed)) in ids.iter().zip(timed) {
        let report = match result {
            Ok(r) => r,
            Err(e) => {
                eprintln!("[repro] experiment `{id}` failed: {e}");
                std::process::exit(1);
            }
        };
        report.print();
        reports.push(report);
        timings.push((id.clone(), elapsed));
    }
    eprintln!(
        "[repro] {} experiment(s) done in {wall:.2}s wall-clock",
        reports.len()
    );
    if let Some(path) = json_path {
        match serde_json::to_string_pretty(&reports) {
            Ok(json) => {
                write_file(&path, json.as_bytes());
                eprintln!("[repro] wrote {path}");
            }
            Err(e) => {
                eprintln!("[repro] cannot serialize reports: {e}");
                std::process::exit(1);
            }
        }
    }
    if metrics_path.is_some() || label.is_some() {
        // Runtime-shape gauges: configured worker count and how busy those
        // workers actually were. Busy time is the summed per-experiment
        // span time — the worker-busy histograms nest (an experiment's
        // inner parallel ops re-enter them) and would double-count.
        airfinger_obs::gauge!("repro_threads").set(threads as f64);
        let busy: f64 = airfinger_obs::global()
            .snapshot()
            .histograms
            .iter()
            .filter(|h| h.id.name == "repro_experiment_seconds")
            .map(|h| h.sum)
            .sum();
        if wall > 0.0 {
            airfinger_obs::gauge!("repro_worker_utilization").set(busy / (wall * threads as f64));
        }
        let mut run = RunReport::new(
            label.as_deref().unwrap_or("repro"),
            airfinger_obs::global().snapshot(),
        );
        run.meta("scale", format!("{scale:?}").to_lowercase());
        run.meta("seed", seed);
        run.meta("threads", threads);
        run.meta("wall_clock_s", format!("{wall:.3}"));
        for (id, seconds) in &timings {
            run.experiment(id, *seconds);
        }
        let json = run.to_json();
        if let Some(path) = &metrics_path {
            write_file(path, json.as_bytes());
            eprintln!("[repro] wrote run report to {path}");
        }
        if let Some(name) = &label {
            let path = format!("BENCH_{name}.json");
            write_file(&path, json.as_bytes());
            eprintln!("[repro] wrote benchmark snapshot to {path}");
        }
    }
    if let Some(dir) = profile_dir {
        let snap = airfinger_obs::profile::snapshot();
        let dir_path = std::path::Path::new(&dir);
        if let Err(e) = std::fs::create_dir_all(dir_path) {
            eprintln!("[repro] cannot create profile dir {dir}: {e}");
            std::process::exit(1);
        }
        for (name, body) in [
            ("profile_collapsed.txt", snap.collapsed()),
            ("profile.json", snap.to_json()),
        ] {
            let path = dir_path.join(name);
            if let Err(e) = std::fs::write(&path, body.as_bytes()) {
                eprintln!("[repro] cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("[repro] wrote {}", path.display());
        }
    }
    if let Some(path) = trace_out {
        match airfinger_obs::trace::write_chrome_trace(&path) {
            Ok(()) => eprintln!(
                "[repro] wrote Chrome trace to {path} ({} event(s), {} dropped)",
                airfinger_obs::trace::events().len(),
                airfinger_obs::trace::dropped()
            ),
            Err(e) => {
                eprintln!("[repro] failed to write trace {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// `repro diff BASE.json NEW.json [--max-time-regress PCT]
/// [--min-accuracy PCT] [--perf-tolerance PCT] [--rebaseline]` — compare
/// two benchmark snapshots and exit nonzero on regression. Deterministic
/// `perf_*` metrics are gated exactly, timing-class metrics within
/// `--perf-tolerance` (default 10%); `--rebaseline` copies NEW over BASE
/// when the gate passes, ratcheting the committed baseline forward.
fn run_diff(args: &[String]) {
    use airfinger_bench::diff::{diff_reports, DiffOptions};
    let mut paths: Vec<&String> = Vec::new();
    let mut opts = DiffOptions {
        perf_tolerance_pct: Some(10.0),
        ..DiffOptions::default()
    };
    let mut rebaseline = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-time-regress" => match it.next().and_then(|s| s.parse().ok()) {
                Some(v) => opts.max_time_regress_pct = Some(v),
                None => {
                    eprintln!("--max-time-regress needs a percentage");
                    std::process::exit(2);
                }
            },
            "--min-accuracy" => match it.next().and_then(|s| s.parse().ok()) {
                Some(v) => opts.min_accuracy_pct = Some(v),
                None => {
                    eprintln!("--min-accuracy needs a percentage");
                    std::process::exit(2);
                }
            },
            "--perf-tolerance" => match it.next().and_then(|s| s.parse().ok()) {
                Some(v) if v >= 0.0 => opts.perf_tolerance_pct = Some(v),
                _ => {
                    eprintln!("--perf-tolerance needs a non-negative percentage");
                    std::process::exit(2);
                }
            },
            "--rebaseline" => rebaseline = true,
            "--help" | "-h" => {
                println!(
                    "usage: repro diff BASE.json NEW.json \
                     [--max-time-regress PCT] [--min-accuracy PCT] \
                     [--perf-tolerance PCT] [--rebaseline]"
                );
                return;
            }
            _ => paths.push(arg),
        }
    }
    let [base_path, new_path] = paths[..] else {
        eprintln!("repro diff needs exactly two snapshot paths (BASE.json NEW.json)");
        std::process::exit(2);
    };
    let read = |p: &str| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("cannot read {p}: {e}");
            std::process::exit(2);
        })
    };
    let (base, new) = (read(base_path), read(new_path));
    match diff_reports(&base, &new, &opts) {
        Ok(report) => {
            for line in &report.lines {
                println!("{line}");
            }
            if !report.passed() {
                if rebaseline {
                    eprintln!("[repro] gate failed; baseline left untouched");
                }
                std::process::exit(1);
            }
            if rebaseline {
                write_file(base_path, new.as_bytes());
                eprintln!(
                    "[repro] re-baselined {base_path} from {new_path} \
                     ({} ratchet candidate(s) locked in)",
                    report.ratchet_candidates.len()
                );
            }
        }
        Err(e) => {
            eprintln!("repro diff: {e}");
            std::process::exit(2);
        }
    }
}

/// `repro profile-diff BASE.json NEW.json [--out DIR]` — diff two
/// `airfinger-profile-v1` artifacts (written by `--profile-dir`) into
/// the signed differential-flamegraph pair: collapsed stacks with
/// signed counts to stdout (or `profile_diff_collapsed.txt` plus
/// `profile_diff.json`, schema `airfinger-profile-diff-v1`, under
/// `--out DIR`), with a top-movers summary on stderr.
fn run_profile_diff(args: &[String]) {
    let mut paths: Vec<&String> = Vec::new();
    let mut out_dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(dir) => out_dir = Some(dir.clone()),
                None => {
                    eprintln!("--out needs a directory path");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: repro profile-diff BASE.json NEW.json [--out DIR]");
                return;
            }
            _ => paths.push(arg),
        }
    }
    let [base_path, new_path] = paths[..] else {
        eprintln!("repro profile-diff needs exactly two profile paths (BASE.json NEW.json)");
        std::process::exit(2);
    };
    let read_snapshot = |p: &str| {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("cannot read {p}: {e}");
            std::process::exit(2);
        });
        airfinger_bench::profdiff::parse_profile_json(&text, p).unwrap_or_else(|e| {
            eprintln!("repro profile-diff: {e}");
            std::process::exit(2);
        })
    };
    let (base, new) = (read_snapshot(base_path), read_snapshot(new_path));
    let diff = new.diff(&base);

    let mut movers: Vec<(&String, i64)> = diff
        .paths
        .iter()
        .filter(|(_, d)| d.self_ns != 0)
        .map(|(p, d)| (p, d.self_ns))
        .collect();
    movers.sort_by_key(|(_, d)| std::cmp::Reverse(d.abs()));
    eprintln!(
        "[repro] profile diff: {} path(s), {} moved{}",
        diff.paths.len(),
        movers.len(),
        if diff.is_zero() { " (identical)" } else { "" }
    );
    for (path, d_self_ns) in movers.iter().take(10) {
        eprintln!("  {d_self_ns:>+12} ns self  {path}");
    }

    if let Some(dir) = out_dir {
        let dir_path = std::path::Path::new(&dir);
        if let Err(e) = std::fs::create_dir_all(dir_path) {
            eprintln!("[repro] cannot create profile-diff dir {dir}: {e}");
            std::process::exit(1);
        }
        for (name, body) in [
            ("profile_diff_collapsed.txt", diff.collapsed()),
            ("profile_diff.json", diff.to_json()),
        ] {
            let path = dir_path.join(name);
            if let Err(e) = std::fs::write(&path, body.as_bytes()) {
                eprintln!("[repro] cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("[repro] wrote {}", path.display());
        }
    } else {
        print!("{}", diff.collapsed());
    }
}

fn write_file(path: &str, bytes: &[u8]) {
    if let Err(e) = std::fs::write(path, bytes) {
        eprintln!("[repro] cannot write {path}: {e}");
        std::process::exit(1);
    }
}

fn print_help() {
    println!("repro — regenerate the airFinger paper's tables and figures");
    println!();
    println!(
        "usage: repro [IDS…|all] [--scale quick|standard|full] [--seed N] \
         [--threads N] [--json PATH] [--metrics PATH] [--label NAME] [--trace] \
         [--trace-out PATH] [--profile-dir DIR]"
    );
    println!(
        "       repro diff BASE.json NEW.json [--max-time-regress PCT] [--min-accuracy PCT] \
         [--perf-tolerance PCT] [--rebaseline]"
    );
    println!("       repro profile-diff BASE.json NEW.json [--out DIR]");
    println!();
    println!("  --list            print every experiment id and exit");
    println!("  --json PATH       dump the experiment results as JSON");
    println!("  --metrics PATH    write a structured run report: per-experiment wall");
    println!("                    time, quality metrics, and every counter and");
    println!("                    latency histogram (with p50/p95/p99)");
    println!("  --label NAME      also snapshot the run report as BENCH_NAME.json");
    println!("  --trace           print every instrumentation span to stderr");
    println!("  --trace-out PATH  export the span timeline as Chrome trace_event");
    println!("                    JSON (open in Perfetto or chrome://tracing)");
    println!("  --profile-dir DIR enable the per-stage cost profiler and write");
    println!("                    profile_collapsed.txt (flamegraph collapsed-stack");
    println!("                    format) and profile.json into DIR after the run");
    println!();
    println!("  diff              compare two BENCH_*.json snapshots; exits 1 when");
    println!("                    wall time regresses past --max-time-regress,");
    println!("                    accuracy falls below --min-accuracy, a deterministic");
    println!("                    perf_* metric drifts at all, or a timing-class");
    println!("                    perf_* metric regresses past --perf-tolerance");
    println!("                    (default 10%); --rebaseline copies NEW over BASE");
    println!("                    when the gate passes (perf ratchet)");
    println!("  profile-diff      diff two profile.json artifacts into signed");
    println!("                    collapsed stacks (differential flamegraph input)");
    println!("                    and airfinger-profile-diff-v1 JSON");
    println!();
    println!("experiments: {EXPERIMENT_IDS:?}");
}
