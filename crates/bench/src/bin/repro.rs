//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all                       # every experiment at standard scale
//! repro fig10 table2              # a subset
//! repro all --scale full          # the paper's full 10,000-sample protocol
//! repro all --threads 4           # fan experiments across 4 workers
//! repro all --json results.json   # also dump machine-readable results
//! ```
//!
//! Experiments are independent given the shared [`Context`], so they fan
//! out across worker threads (`--threads`, the `AIRFINGER_THREADS`
//! environment variable, or the machine's core count). Reports are
//! printed in request order regardless of completion order, with
//! per-experiment wall-clock timing on stderr.

use airfinger_bench::context::{Context, Scale};
use airfinger_bench::{run_experiment, EXPERIMENT_IDS};
use airfinger_parallel::{effective_threads, par_run};
use std::io::Write;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::Standard;
    let mut seed = 0x41F1_6E12u64;
    let mut json_path: Option<String> = None;
    let mut threads_arg: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let word = it.next().map(String::as_str).unwrap_or("");
                match Scale::parse(word) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale `{word}` (quick|standard|full)");
                        std::process::exit(2);
                    }
                }
            }
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                }
            },
            "--threads" => match it.next().and_then(|s| s.parse().ok()) {
                Some(v) if v > 0 => threads_arg = Some(v),
                _ => {
                    eprintln!("--threads needs a positive integer");
                    std::process::exit(2);
                }
            },
            "--json" => match it.next() {
                Some(p) => json_path = Some(p.clone()),
                None => {
                    eprintln!("--json needs a path");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                print_help();
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = EXPERIMENT_IDS.iter().map(|s| s.to_string()).collect();
    }
    for id in &ids {
        if !EXPERIMENT_IDS.contains(&id.as_str()) {
            eprintln!("unknown experiment `{id}`; known: {EXPERIMENT_IDS:?}");
            std::process::exit(2);
        }
    }
    let threads = effective_threads(threads_arg).min(ids.len().max(1));
    let mut ctx = Context::new(scale, seed);
    if threads > 1 {
        // Parallelism lives at the experiment level here; pin the inner
        // training parallelism to one thread so the cores are not
        // oversubscribed. Results are unaffected either way.
        ctx.config.n_threads = 1;
        // Warm the shared caches before fanning out, so workers reuse one
        // corpus/feature computation instead of racing to build it.
        ctx.all_features();
    }
    eprintln!(
        "[repro] running {} experiment(s) on {threads} worker thread(s)",
        ids.len()
    );
    let total_start = Instant::now();
    let timed: Vec<_> = par_run(ids.len(), threads, |i| {
        let start = Instant::now();
        let report = run_experiment(&ids[i], &ctx).expect("id validated above");
        let elapsed = start.elapsed();
        eprintln!(
            "[repro] {} finished in {:.2}s",
            ids[i],
            elapsed.as_secs_f64()
        );
        (report, elapsed)
    });
    let mut reports = Vec::with_capacity(timed.len());
    for (report, _) in timed {
        report.print();
        reports.push(report);
    }
    eprintln!(
        "[repro] {} experiment(s) done in {:.2}s wall-clock",
        reports.len(),
        total_start.elapsed().as_secs_f64()
    );
    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&reports).expect("reports serialize");
        let mut f = std::fs::File::create(&path).expect("create json output");
        f.write_all(json.as_bytes()).expect("write json output");
        eprintln!("[repro] wrote {path}");
    }
}

fn print_help() {
    println!("repro — regenerate the airFinger paper's tables and figures");
    println!();
    println!(
        "usage: repro [IDS…|all] [--scale quick|standard|full] [--seed N] \
         [--threads N] [--json PATH]"
    );
    println!();
    println!("experiments: {EXPERIMENT_IDS:?}");
}
