//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all                       # every experiment at standard scale
//! repro fig10 table2              # a subset
//! repro all --scale full          # the paper's full 10,000-sample protocol
//! repro all --json results.json   # also dump machine-readable results
//! ```

use airfinger_bench::context::{Context, Scale};
use airfinger_bench::{run_experiment, EXPERIMENT_IDS};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::Standard;
    let mut seed = 0x41F1_6E12u64;
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let word = it.next().map(String::as_str).unwrap_or("");
                match Scale::parse(word) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale `{word}` (quick|standard|full)");
                        std::process::exit(2);
                    }
                }
            }
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                }
            },
            "--json" => match it.next() {
                Some(p) => json_path = Some(p.clone()),
                None => {
                    eprintln!("--json needs a path");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                print_help();
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = EXPERIMENT_IDS.iter().map(|s| s.to_string()).collect();
    }
    let ctx = Context::new(scale, seed);
    let mut reports = Vec::new();
    for id in &ids {
        match run_experiment(id, &ctx) {
            Some(report) => {
                report.print();
                reports.push(report);
            }
            None => {
                eprintln!("unknown experiment `{id}`; known: {EXPERIMENT_IDS:?}");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&reports).expect("reports serialize");
        let mut f = std::fs::File::create(&path).expect("create json output");
        f.write_all(json.as_bytes()).expect("write json output");
        eprintln!("[repro] wrote {path}");
    }
}

fn print_help() {
    println!("repro — regenerate the airFinger paper's tables and figures");
    println!();
    println!("usage: repro [IDS…|all] [--scale quick|standard|full] [--seed N] [--json PATH]");
    println!();
    println!("experiments: {EXPERIMENT_IDS:?}");
}
