//! Experiment reports: human-readable tables plus machine-readable
//! metrics, so `repro` output can be diffed against the paper's numbers.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The outcome of one reproduced table/figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Experiment id, e.g. "fig10".
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Table lines exactly as printed.
    pub lines: Vec<String>,
    /// Named scalar results (accuracies in percent, counts, …).
    pub metrics: BTreeMap<String, f64>,
    /// The paper's corresponding numbers, for side-by-side comparison.
    pub paper: BTreeMap<String, f64>,
}

impl Report {
    /// Start an empty report.
    #[must_use]
    pub fn new(id: &str, title: &str) -> Self {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            lines: Vec::new(),
            metrics: BTreeMap::new(),
            paper: BTreeMap::new(),
        }
    }

    /// Append a printed line.
    pub fn line(&mut self, s: impl Into<String>) {
        self.lines.push(s.into());
    }

    /// Record a measured metric.
    pub fn metric(&mut self, name: &str, value: f64) {
        self.metrics.insert(name.to_string(), value);
    }

    /// Record the paper's value for a metric.
    pub fn paper_value(&mut self, name: &str, value: f64) {
        self.paper.insert(name.to_string(), value);
    }

    /// Render to stdout.
    pub fn print(&self) {
        println!("==== {} — {} ====", self.id, self.title);
        for l in &self.lines {
            println!("{l}");
        }
        if !self.paper.is_empty() {
            println!("-- paper vs measured --");
            for (k, paper) in &self.paper {
                match self.metrics.get(k) {
                    Some(m) => println!("  {k}: paper {paper:.2}  measured {m:.2}"),
                    None => println!("  {k}: paper {paper:.2}  measured (missing)"),
                }
            }
        }
        println!();
    }
}

/// Render a row-normalized confusion matrix with labels.
#[must_use]
pub fn format_confusion(matrix: &airfinger_ml::ConfusionMatrix, labels: &[&str]) -> Vec<String> {
    let mut out = Vec::new();
    let width = labels.iter().map(|l| l.len()).max().unwrap_or(6).max(6);
    let mut header = format!("{:>width$} |", "truth\\pred", width = width + 2);
    for l in labels {
        header.push_str(&format!(" {l:>width$}"));
    }
    out.push(header);
    for (i, row) in matrix.normalized().iter().enumerate() {
        let mut line = format!(
            "{:>width$} |",
            labels.get(i).copied().unwrap_or("?"),
            width = width + 2
        );
        for v in row {
            line.push_str(&format!(" {:>width$.3}", v));
        }
        out.push(line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use airfinger_ml::ConfusionMatrix;

    #[test]
    fn report_accumulates() {
        let mut r = Report::new("figX", "test");
        r.line("hello");
        r.metric("acc", 98.7);
        r.paper_value("acc", 98.4);
        assert_eq!(r.lines.len(), 1);
        assert_eq!(r.metrics["acc"], 98.7);
        r.print(); // must not panic
    }

    #[test]
    fn confusion_formatting() {
        let m = ConfusionMatrix::from_predictions(&[0, 0, 1], &[0, 1, 1], 2);
        let lines = format_confusion(&m, &["a", "b"]);
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("0.500"));
    }

    #[test]
    fn serde_roundtrip() {
        let mut r = Report::new("fig9", "classifiers");
        r.metric("rf", 99.0);
        let json = serde_json::to_string(&r).unwrap();
        assert_eq!(serde_json::from_str::<Report>(&json).unwrap(), r);
    }
}
