//! Error type for the experiment harness.
//!
//! Experiments propagate failures from the pipeline, classifiers and DSP
//! helpers instead of panicking, so a single bad experiment aborts cleanly
//! with a diagnosable message (and a nonzero exit from `repro`) rather
//! than unwinding through the parallel runner.

use airfinger_core::AirFingerError;
use airfinger_dsp::DspError;
use airfinger_fleet::FleetError;
use airfinger_ml::MlError;
use std::error::Error;
use std::fmt;

/// Errors from running a reproduction experiment.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BenchError {
    /// The id does not name any experiment in [`crate::EXPERIMENT_IDS`].
    UnknownExperiment(String),
    /// A pipeline or classifier stage under test failed.
    Pipeline(AirFingerError),
    /// A DSP helper the experiment measures failed.
    Dsp(DspError),
    /// The fleet serving layer under test failed.
    Fleet(FleetError),
    /// The experiment produced no data to summarize.
    EmptyResult(&'static str),
    /// A monitoring/SLO contract the experiment enforces was violated.
    Contract(String),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::UnknownExperiment(id) => write!(f, "unknown experiment id `{id}`"),
            BenchError::Pipeline(e) => write!(f, "pipeline error: {e}"),
            BenchError::Dsp(e) => write!(f, "dsp error: {e}"),
            BenchError::Fleet(e) => write!(f, "fleet error: {e}"),
            BenchError::EmptyResult(what) => write!(f, "experiment produced no data: {what}"),
            BenchError::Contract(what) => write!(f, "monitoring contract violated: {what}"),
        }
    }
}

impl Error for BenchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BenchError::Pipeline(e) => Some(e),
            BenchError::Dsp(e) => Some(e),
            BenchError::Fleet(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AirFingerError> for BenchError {
    fn from(e: AirFingerError) -> Self {
        BenchError::Pipeline(e)
    }
}

impl From<MlError> for BenchError {
    fn from(e: MlError) -> Self {
        BenchError::Pipeline(AirFingerError::Ml(e))
    }
}

impl From<DspError> for BenchError {
    fn from(e: DspError) -> Self {
        BenchError::Dsp(e)
    }
}

impl From<FleetError> for BenchError {
    fn from(e: FleetError) -> Self {
        BenchError::Fleet(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = BenchError::from(MlError::NotFitted);
        assert!(e.to_string().contains("pipeline error"));
        assert!(e.source().is_some());
        assert!(BenchError::UnknownExperiment("x".into())
            .to_string()
            .contains("`x`"));
    }
}
