//! `repro diff` — the bench-snapshot regression gate.
//!
//! Compares two `BENCH_<label>.json` run reports (the artifacts written
//! by `repro --label` / `--metrics`): per-experiment wall time, pipeline
//! histogram percentiles, and the quality section (per-experiment
//! accuracy). Prints a delta table and collects **violations** —
//! wall-time regressions beyond `--max-time-regress` and accuracies
//! below `--min-accuracy` — which drive the nonzero exit that fails CI.
//!
//! The comparison is deliberately tolerant of missing data: experiments,
//! histograms or quality entries present in only one snapshot are
//! reported but never count as violations, so a baseline produced by an
//! older binary still gates what it can.
//!
//! # Perf metric classes
//!
//! `perf_*` counters and gauges (written by the `perf` experiment) are
//! gated by **metric class**, the declarative name-suffix convention of
//! DESIGN.md §9:
//!
//! - **timing** — names ending in `_ns`, `_per_s`, `_seconds` or
//!   `_utilization` are wall-clock observations; they are held to a
//!   relative tolerance ([`DiffOptions::perf_tolerance_pct`]).
//!   Directionality follows the suffix too: `_per_s`/`_utilization` are
//!   higher-is-better, everything else lower-is-better. Improvements
//!   beyond the tolerance are surfaced as **ratchet candidates**
//!   (re-baseline with `repro diff --rebaseline`), never violations.
//! - **deterministic** — every other `perf_*` metric is a pure function
//!   of `(scale, seed)` and must match the baseline *exactly*.

use serde::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Gate thresholds for [`diff_reports`].
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Maximum tolerated per-experiment (and total) wall-time growth, in
    /// percent of the baseline. `None` disables the time gate.
    pub max_time_regress_pct: Option<f64>,
    /// Minimum tolerated quality accuracy (percent) in the new snapshot.
    /// `None` disables the accuracy gate.
    pub min_accuracy_pct: Option<f64>,
    /// Relative tolerance (percent) for timing-class `perf_*` metrics;
    /// deterministic-class metrics are always gated exactly when both
    /// snapshots carry them. `None` disables the perf gate entirely
    /// (both classes).
    pub perf_tolerance_pct: Option<f64>,
}

impl Default for DiffOptions {
    /// Display-only: all gates off.
    fn default() -> Self {
        DiffOptions {
            max_time_regress_pct: None,
            min_accuracy_pct: None,
            perf_tolerance_pct: None,
        }
    }
}

/// The gate class of one metric, per the DESIGN.md §9 suffix convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricClass {
    /// Pure function of `(scale, seed)` — gated exactly.
    Deterministic,
    /// Wall-clock observation — gated with a relative tolerance.
    Timing,
}

/// Classify a metric identity (`name` or `name{labels}`) by the
/// declarative suffix convention of DESIGN.md §9: `_ns`, `_per_s`,
/// `_seconds` and `_utilization` name wall-clock observations, anything
/// else is deterministic.
#[must_use]
pub fn metric_class(identity: &str) -> MetricClass {
    let name = identity.split('{').next().unwrap_or(identity);
    if ["_ns", "_per_s", "_seconds", "_utilization"]
        .iter()
        .any(|s| name.ends_with(s))
    {
        MetricClass::Timing
    } else {
        MetricClass::Deterministic
    }
}

/// Whether a larger value of this timing metric is an improvement
/// (throughput/utilization) rather than a regression (latency).
fn higher_is_better(identity: &str) -> bool {
    let name = identity.split('{').next().unwrap_or(identity);
    name.ends_with("_per_s") || name.ends_with("_utilization")
}

/// Outcome of one snapshot comparison.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// The rendered delta table, line by line.
    pub lines: Vec<String>,
    /// Human-readable gate violations; empty means the gate passes.
    pub violations: Vec<String>,
    /// Timing-class `perf_*` metrics that *improved* beyond the
    /// tolerance — candidates for ratcheting the committed baseline
    /// forward (`repro diff --rebaseline`). Never violations.
    pub ratchet_candidates: Vec<String>,
}

impl DiffReport {
    /// Whether the gate passes (no violations).
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// What the differ extracts from one `BENCH_*.json` document.
#[derive(Debug, Default)]
struct BenchView {
    label: String,
    experiments: Vec<(String, f64)>,
    total_seconds: Option<f64>,
    /// experiment → accuracy percent, from the quality section.
    accuracy: BTreeMap<String, f64>,
    /// histogram identity → (p50, p95, p99), where present and non-null.
    percentiles: BTreeMap<String, [Option<f64>; 3]>,
    /// `perf_*` counter/gauge identity → value (the perf-gate feed).
    perf: BTreeMap<String, f64>,
}

fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    v.as_object()?.get(key)
}

fn metric_identity(entry: &serde::Map) -> String {
    let name = entry
        .get("name")
        .and_then(Value::as_str)
        .unwrap_or("?")
        .to_string();
    let labels: Vec<String> = entry
        .get("labels")
        .and_then(Value::as_object)
        .map(|m| {
            m.iter()
                .map(|(k, v)| format!("{k}={:?}", v.as_str().unwrap_or("")))
                .collect()
        })
        .unwrap_or_default();
    if labels.is_empty() {
        name
    } else {
        format!("{name}{{{}}}", labels.join(","))
    }
}

fn parse_view(text: &str, which: &str) -> Result<BenchView, String> {
    let value: Value =
        serde_json::from_str(text).map_err(|e| format!("{which}: not valid JSON: {e:?}"))?;
    let mut view = BenchView {
        label: get(&value, "label")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string(),
        ..BenchView::default()
    };
    if let Some(exps) = get(&value, "experiments").and_then(Value::as_array) {
        for e in exps {
            let (Some(id), Some(seconds)) = (
                get(e, "id").and_then(Value::as_str),
                get(e, "seconds").and_then(Value::as_f64),
            ) else {
                continue;
            };
            view.experiments.push((id.to_string(), seconds));
        }
    }
    view.total_seconds = get(&value, "total_seconds").and_then(Value::as_f64);
    if let Some(quality_exps) = get(&value, "quality")
        .and_then(|q| get(q, "experiments"))
        .and_then(Value::as_object)
    {
        for (experiment, metrics) in quality_exps.iter() {
            if let Some(acc) = get(metrics, "accuracy").and_then(Value::as_f64) {
                view.accuracy.insert(experiment.to_string(), acc);
            }
        }
    }
    if let Some(hists) = get(&value, "metrics")
        .and_then(|m| get(m, "histograms"))
        .and_then(Value::as_array)
    {
        for h in hists {
            let Some(entry) = h.as_object() else { continue };
            let ps = ["p50", "p95", "p99"].map(|p| entry.get(p).and_then(Value::as_f64));
            if ps.iter().any(Option::is_some) {
                view.percentiles.insert(metric_identity(entry), ps);
            }
        }
    }
    for family in ["counters", "gauges"] {
        let Some(entries) = get(&value, "metrics")
            .and_then(|m| get(m, family))
            .and_then(Value::as_array)
        else {
            continue;
        };
        for e in entries {
            let Some(entry) = e.as_object() else { continue };
            let is_perf = entry
                .get("name")
                .and_then(Value::as_str)
                .is_some_and(|n| n.starts_with("perf_"));
            let Some(v) = entry.get("value").and_then(Value::as_f64) else {
                continue;
            };
            if is_perf {
                view.perf.insert(metric_identity(entry), v);
            }
        }
    }
    Ok(view)
}

fn pct_delta(base: f64, new: f64) -> Option<f64> {
    if base > 0.0 {
        Some((new - base) / base * 100.0)
    } else {
        None
    }
}

fn fmt_delta(delta: Option<f64>) -> String {
    match delta {
        Some(d) => format!("{d:+.1}%"),
        None => "   n/a".to_string(),
    }
}

/// Compare two run-report JSON documents and evaluate the gate.
///
/// # Errors
///
/// Returns an error when either document is not valid JSON.
pub fn diff_reports(base: &str, new: &str, opts: &DiffOptions) -> Result<DiffReport, String> {
    let base = parse_view(base, "baseline")?;
    let new = parse_view(new, "candidate")?;
    let mut lines = Vec::new();
    let mut violations = Vec::new();

    lines.push(format!(
        "bench diff: baseline `{}` vs candidate `{}`",
        base.label, new.label
    ));
    lines.push(String::new());

    // Per-experiment wall time.
    lines.push(format!(
        "{:<14} {:>10} {:>10} {:>8}",
        "experiment", "base s", "new s", "delta"
    ));
    let base_times: BTreeMap<&str, f64> = base
        .experiments
        .iter()
        .map(|(id, s)| (id.as_str(), *s))
        .collect();
    for (id, new_s) in &new.experiments {
        let row = match base_times.get(id.as_str()) {
            Some(&base_s) => {
                let delta = pct_delta(base_s, *new_s);
                if let (Some(limit), Some(d)) = (opts.max_time_regress_pct, delta) {
                    if d > limit {
                        violations.push(format!(
                            "experiment `{id}` wall time regressed {d:+.1}% \
                             (limit +{limit:.0}%): {base_s:.3}s -> {new_s:.3}s"
                        ));
                    }
                }
                format!(
                    "{id:<14} {base_s:>10.3} {new_s:>10.3} {:>8}",
                    fmt_delta(delta)
                )
            }
            None => format!("{id:<14} {:>10} {new_s:>10.3} {:>8}", "-", "new"),
        };
        lines.push(row);
    }
    for (id, base_s) in &base.experiments {
        if !new.experiments.iter().any(|(n, _)| n == id) {
            lines.push(format!("{id:<14} {base_s:>10.3} {:>10} {:>8}", "-", "gone"));
        }
    }
    if let (Some(b), Some(n)) = (base.total_seconds, new.total_seconds) {
        let delta = pct_delta(b, n);
        lines.push(format!(
            "{:<14} {b:>10.3} {n:>10.3} {:>8}",
            "total",
            fmt_delta(delta)
        ));
        if let (Some(limit), Some(d)) = (opts.max_time_regress_pct, delta) {
            if d > limit {
                violations.push(format!(
                    "total wall time regressed {d:+.1}% (limit +{limit:.0}%)"
                ));
            }
        }
    }

    // Quality accuracy.
    let quality_ids: std::collections::BTreeSet<&String> =
        base.accuracy.keys().chain(new.accuracy.keys()).collect();
    if !quality_ids.is_empty() {
        lines.push(String::new());
        lines.push(format!(
            "{:<14} {:>10} {:>10} {:>8}",
            "accuracy", "base %", "new %", "delta"
        ));
        for id in quality_ids {
            let (b, n) = (base.accuracy.get(id), new.accuracy.get(id));
            let mut row = format!("{id:<14} ");
            match b {
                Some(b) => {
                    let _ = write!(row, "{b:>10.2} ");
                }
                None => {
                    let _ = write!(row, "{:>10} ", "-");
                }
            }
            match n {
                Some(n) => {
                    let _ = write!(row, "{n:>10.2} ");
                }
                None => {
                    let _ = write!(row, "{:>10} ", "-");
                }
            }
            if let (Some(b), Some(n)) = (b, n) {
                let _ = write!(row, "{:>8}", fmt_delta(Some(n - b)));
            }
            lines.push(row);
            if let (Some(floor), Some(&n)) = (opts.min_accuracy_pct, n) {
                if n < floor {
                    violations.push(format!(
                        "quality accuracy of `{id}` is {n:.2}% (floor {floor:.2}%)"
                    ));
                }
            }
        }
    }

    // Histogram percentile drift (informational, never a violation: the
    // per-stage tails are scheduling observations).
    let shared: Vec<&String> = base
        .percentiles
        .keys()
        .filter(|k| new.percentiles.contains_key(*k))
        .collect();
    if !shared.is_empty() {
        lines.push(String::new());
        lines.push(format!(
            "{:<44} {:>11} {:>11} {:>11}",
            "histogram (p95 seconds)", "base", "new", "delta"
        ));
        for key in shared {
            let (b, n) = (&base.percentiles[key], &new.percentiles[key]);
            if let (Some(bp), Some(np)) = (b[1], n[1]) {
                lines.push(format!(
                    "{key:<44} {bp:>11.6} {np:>11.6} {:>11}",
                    fmt_delta(pct_delta(bp, np))
                ));
            }
        }
    }

    // Perf metric gate: deterministic class exact, timing class within
    // tolerance, improvements beyond tolerance become ratchet
    // candidates. Metrics present in only one snapshot are shown but
    // never gated (an old baseline still gates what it can).
    let mut ratchet_candidates = Vec::new();
    let shared_perf: Vec<&String> = base
        .perf
        .keys()
        .filter(|k| new.perf.contains_key(*k))
        .collect();
    if !shared_perf.is_empty() {
        lines.push(String::new());
        lines.push(format!(
            "{:<40} {:>14} {:>14} {:>8}  class",
            "perf metric", "base", "new", "delta"
        ));
        for key in &shared_perf {
            let (b, n) = (base.perf[*key], new.perf[*key]);
            let class = metric_class(key);
            let delta = pct_delta(b, n);
            lines.push(format!(
                "{key:<40} {b:>14.3} {n:>14.3} {:>8}  {}",
                fmt_delta(delta),
                match class {
                    MetricClass::Deterministic => "exact",
                    MetricClass::Timing => "timing",
                }
            ));
            let Some(tolerance) = opts.perf_tolerance_pct else {
                continue;
            };
            match class {
                MetricClass::Deterministic => {
                    if b != n {
                        violations.push(format!(
                            "deterministic perf metric `{key}` changed: {b} -> {n} \
                             (must match the baseline exactly)"
                        ));
                    }
                }
                MetricClass::Timing => {
                    let Some(d) = delta else { continue };
                    // Normalize direction: positive `worse` is always a
                    // regression, whichever way the metric improves.
                    let worse = if higher_is_better(key) { -d } else { d };
                    if worse > tolerance {
                        violations.push(format!(
                            "timing perf metric `{key}` regressed {d:+.1}% \
                             (tolerance {tolerance:.0}%): {b:.1} -> {n:.1}"
                        ));
                    } else if worse < -tolerance {
                        ratchet_candidates
                            .push(format!("`{key}` improved {d:+.1}% ({b:.1} -> {n:.1})"));
                    }
                }
            }
        }
        for (key, n) in &new.perf {
            if !base.perf.contains_key(key) {
                lines.push(format!(
                    "{key:<40} {:>14} {n:>14.3} {:>8}  new (not gated)",
                    "-", ""
                ));
            }
        }
        for (key, b) in &base.perf {
            if !new.perf.contains_key(key) {
                lines.push(format!(
                    "{key:<40} {b:>14.3} {:>14} {:>8}  gone (not gated)",
                    "-", ""
                ));
            }
        }
    }
    if !ratchet_candidates.is_empty() {
        lines.push(String::new());
        lines.push(
            "ratchet candidate(s) — baseline is beatable, consider `repro diff --rebaseline`:"
                .to_string(),
        );
        for c in &ratchet_candidates {
            lines.push(format!("  + {c}"));
        }
    }

    if violations.is_empty() {
        lines.push(String::new());
        lines.push("gate: PASS".to_string());
    } else {
        lines.push(String::new());
        lines.push(format!("gate: FAIL ({} violation(s))", violations.len()));
        for v in &violations {
            lines.push(format!("  - {v}"));
        }
    }
    Ok(DiffReport {
        lines,
        violations,
        ratchet_candidates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal but structurally faithful run report.
    fn report(label: &str, fig10_s: f64, accuracy: f64, p95: f64) -> String {
        format!(
            r#"{{
  "label": "{label}",
  "meta": {{"scale": "quick", "threads": "2"}},
  "experiments": [
    {{"id": "fig10", "seconds": {fig10_s}}},
    {{"id": "table2", "seconds": 0.5}}
  ],
  "total_seconds": {total},
  "quality": {{
    "experiments": {{"fig10": {{"accuracy": {accuracy}, "macro_f1": 90.0}}}},
    "segmentation": {{"segments_found": 10, "segments_merged": 2, "otsu_threshold": 0.01}},
    "distinguish": {{"detect": 8, "track": 2, "rejected": 0, "rejection_rate": 0}}
  }},
  "metrics": {{
    "counters": [],
    "gauges": [],
    "histograms": [
      {{"name": "pipeline_stage_seconds", "labels": {{"stage": "sbc"}},
        "count": 4, "sum": 0.04, "mean": 0.01,
        "p50": 0.01, "p95": {p95}, "p99": {p95},
        "buckets": [{{"le": 1.0, "count": 4}}, {{"le": "+Inf", "count": 4}}]}}
    ]
  }}
}}"#,
            total = fig10_s + 0.5,
        )
    }

    fn gate() -> DiffOptions {
        DiffOptions {
            max_time_regress_pct: Some(50.0),
            min_accuracy_pct: Some(90.0),
            perf_tolerance_pct: Some(10.0),
        }
    }

    #[test]
    fn identical_snapshots_pass() {
        let a = report("base", 1.0, 97.5, 0.012);
        let diff = diff_reports(&a, &a, &gate()).unwrap();
        assert!(diff.passed(), "{:?}", diff.violations);
        let text = diff.lines.join("\n");
        assert!(text.contains("gate: PASS"));
        assert!(text.contains("fig10"));
        assert!(text.contains("pipeline_stage_seconds"));
    }

    #[test]
    fn injected_accuracy_regression_fails() {
        let base = report("base", 1.0, 97.5, 0.012);
        let bad = report("bad", 1.0, 80.0, 0.012);
        let diff = diff_reports(&base, &bad, &gate()).unwrap();
        assert!(!diff.passed());
        assert!(
            diff.violations.iter().any(|v| v.contains("accuracy")),
            "{:?}",
            diff.violations
        );
        assert!(diff.lines.join("\n").contains("gate: FAIL"));
    }

    #[test]
    fn injected_time_regression_fails() {
        let base = report("base", 1.0, 97.5, 0.012);
        let slow = report("slow", 2.0, 97.5, 0.012);
        let diff = diff_reports(&base, &slow, &gate()).unwrap();
        assert!(!diff.passed());
        assert!(
            diff.violations.iter().any(|v| v.contains("wall time")),
            "{:?}",
            diff.violations
        );
    }

    #[test]
    fn regression_within_threshold_passes() {
        let base = report("base", 1.0, 97.5, 0.012);
        let slightly = report("new", 1.2, 95.0, 0.02);
        let diff = diff_reports(&base, &slightly, &gate()).unwrap();
        assert!(diff.passed(), "{:?}", diff.violations);
    }

    #[test]
    fn gates_off_never_fail() {
        let base = report("base", 1.0, 97.5, 0.012);
        let awful = report("awful", 50.0, 10.0, 0.5);
        let diff = diff_reports(&base, &awful, &DiffOptions::default()).unwrap();
        assert!(diff.passed());
    }

    #[test]
    fn missing_quality_in_baseline_is_tolerated() {
        // An old baseline without quality/percentiles still gates time.
        let old = r#"{
  "label": "old",
  "meta": {},
  "experiments": [{"id": "fig10", "seconds": 1.0}],
  "total_seconds": 1.5,
  "metrics": {"counters": [], "gauges": [], "histograms": []}
}"#;
        let new = report("new", 1.1, 97.5, 0.012);
        let diff = diff_reports(old, &new, &gate()).unwrap();
        assert!(diff.passed(), "{:?}", diff.violations);
        // But a *low* accuracy in the candidate is still caught: the
        // floor gate needs no baseline.
        let bad = report("bad", 1.1, 50.0, 0.012);
        let diff = diff_reports(old, &bad, &gate()).unwrap();
        assert!(!diff.passed());
    }

    /// A run report carrying only perf metrics (counters + gauges).
    fn perf_report(label: &str, pushes: u64, p99_ns: f64, samples_per_s: f64) -> String {
        format!(
            r#"{{
  "label": "{label}",
  "meta": {{}},
  "experiments": [{{"id": "perf", "seconds": 0.2}}],
  "total_seconds": 0.2,
  "metrics": {{
    "counters": [
      {{"name": "perf_pushes_total", "labels": {{}}, "value": {pushes}}}
    ],
    "gauges": [
      {{"name": "perf_push_p99_ns", "labels": {{}}, "value": {p99_ns}}},
      {{"name": "perf_samples_per_s", "labels": {{}}, "value": {samples_per_s}}},
      {{"name": "perf_stage_mean_ns", "labels": {{"stage": "features"}}, "value": 2000.0}}
    ],
    "histograms": []
  }}
}}"#
        )
    }

    fn perf_gate() -> DiffOptions {
        DiffOptions {
            perf_tolerance_pct: Some(10.0),
            ..DiffOptions::default()
        }
    }

    #[test]
    fn metric_classes_follow_the_suffix_convention() {
        assert_eq!(
            metric_class("perf_pushes_total"),
            MetricClass::Deterministic
        );
        assert_eq!(
            metric_class("perf_allocs_per_push"),
            MetricClass::Deterministic
        );
        assert_eq!(metric_class("perf_push_p99_ns"), MetricClass::Timing);
        assert_eq!(metric_class("perf_samples_per_s"), MetricClass::Timing);
        assert_eq!(metric_class("perf_stream_seconds"), MetricClass::Timing);
        // Labels never change the class — the suffix is on the name.
        assert_eq!(
            metric_class("perf_stage_mean_ns{stage=\"features\"}"),
            MetricClass::Timing
        );
        assert!(higher_is_better("perf_samples_per_s"));
        assert!(!higher_is_better("perf_push_p99_ns"));
    }

    #[test]
    fn identical_perf_snapshots_pass_the_perf_gate() {
        let a = perf_report("base", 12000, 8191.0, 250000.0);
        let diff = diff_reports(&a, &a, &perf_gate()).unwrap();
        assert!(diff.passed(), "{:?}", diff.violations);
        assert!(diff.ratchet_candidates.is_empty());
        let text = diff.lines.join("\n");
        assert!(text.contains("perf_pushes_total"), "{text}");
        assert!(text.contains("exact"), "{text}");
        assert!(text.contains("timing"), "{text}");
    }

    #[test]
    fn deterministic_perf_drift_fails_exactly() {
        let base = perf_report("base", 12000, 8191.0, 250000.0);
        // One push off — far below any relative tolerance, still a FAIL.
        let off = perf_report("off", 12001, 8191.0, 250000.0);
        let diff = diff_reports(&base, &off, &perf_gate()).unwrap();
        assert!(!diff.passed());
        assert!(
            diff.violations
                .iter()
                .any(|v| v.contains("deterministic") && v.contains("perf_pushes_total")),
            "{:?}",
            diff.violations
        );
    }

    #[test]
    fn timing_drift_within_tolerance_passes() {
        let base = perf_report("base", 12000, 8191.0, 250000.0);
        let near = perf_report("near", 12000, 8600.0, 240000.0);
        let diff = diff_reports(&base, &near, &perf_gate()).unwrap();
        assert!(diff.passed(), "{:?}", diff.violations);
    }

    #[test]
    fn timing_regression_beyond_tolerance_fails() {
        let base = perf_report("base", 12000, 8191.0, 250000.0);
        // p99 +50% — a latency regression; throughput unchanged.
        let slow = perf_report("slow", 12000, 12286.0, 250000.0);
        let diff = diff_reports(&base, &slow, &perf_gate()).unwrap();
        assert!(!diff.passed());
        assert!(
            diff.violations
                .iter()
                .any(|v| v.contains("perf_push_p99_ns") && v.contains("regressed")),
            "{:?}",
            diff.violations
        );
    }

    #[test]
    fn throughput_direction_is_higher_is_better() {
        let base = perf_report("base", 12000, 8191.0, 250000.0);
        // Throughput -40% is a regression even though the number "fell".
        let slow = perf_report("slow", 12000, 8191.0, 150000.0);
        let diff = diff_reports(&base, &slow, &perf_gate()).unwrap();
        assert!(!diff.passed());
        assert!(
            diff.violations
                .iter()
                .any(|v| v.contains("perf_samples_per_s")),
            "{:?}",
            diff.violations
        );
        // Throughput +40% is an improvement: PASS, plus a ratchet hint.
        let fast = perf_report("fast", 12000, 8191.0, 350000.0);
        let diff = diff_reports(&base, &fast, &perf_gate()).unwrap();
        assert!(diff.passed(), "{:?}", diff.violations);
        assert!(
            diff.ratchet_candidates
                .iter()
                .any(|c| c.contains("perf_samples_per_s")),
            "{:?}",
            diff.ratchet_candidates
        );
        assert!(diff.lines.join("\n").contains("--rebaseline"));
    }

    #[test]
    fn perf_gate_off_never_fails_and_old_baselines_are_tolerated() {
        let base = perf_report("base", 12000, 8191.0, 250000.0);
        let wild = perf_report("wild", 9000, 90000.0, 10.0);
        let diff = diff_reports(&base, &wild, &DiffOptions::default()).unwrap();
        assert!(diff.passed(), "{:?}", diff.violations);
        // A baseline with no perf metrics at all gates nothing.
        let old = r#"{"label": "old", "meta": {}, "experiments": [],
                      "metrics": {"counters": [], "gauges": [], "histograms": []}}"#;
        let diff = diff_reports(old, &wild, &perf_gate()).unwrap();
        assert!(diff.passed(), "{:?}", diff.violations);
    }

    #[test]
    fn invalid_json_is_an_error() {
        assert!(diff_reports("{", "{}", &DiffOptions::default()).is_err());
        assert!(diff_reports("{}", "not json", &DiffOptions::default()).is_err());
    }
}
