//! `repro diff` — the bench-snapshot regression gate.
//!
//! Compares two `BENCH_<label>.json` run reports (the artifacts written
//! by `repro --label` / `--metrics`): per-experiment wall time, pipeline
//! histogram percentiles, and the quality section (per-experiment
//! accuracy). Prints a delta table and collects **violations** —
//! wall-time regressions beyond `--max-time-regress` and accuracies
//! below `--min-accuracy` — which drive the nonzero exit that fails CI.
//!
//! The comparison is deliberately tolerant of missing data: experiments,
//! histograms or quality entries present in only one snapshot are
//! reported but never count as violations, so a baseline produced by an
//! older binary still gates what it can.

use serde::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Gate thresholds for [`diff_reports`].
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Maximum tolerated per-experiment (and total) wall-time growth, in
    /// percent of the baseline. `None` disables the time gate.
    pub max_time_regress_pct: Option<f64>,
    /// Minimum tolerated quality accuracy (percent) in the new snapshot.
    /// `None` disables the accuracy gate.
    pub min_accuracy_pct: Option<f64>,
}

impl Default for DiffOptions {
    /// Display-only: both gates off.
    fn default() -> Self {
        DiffOptions {
            max_time_regress_pct: None,
            min_accuracy_pct: None,
        }
    }
}

/// Outcome of one snapshot comparison.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// The rendered delta table, line by line.
    pub lines: Vec<String>,
    /// Human-readable gate violations; empty means the gate passes.
    pub violations: Vec<String>,
}

impl DiffReport {
    /// Whether the gate passes (no violations).
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// What the differ extracts from one `BENCH_*.json` document.
#[derive(Debug, Default)]
struct BenchView {
    label: String,
    experiments: Vec<(String, f64)>,
    total_seconds: Option<f64>,
    /// experiment → accuracy percent, from the quality section.
    accuracy: BTreeMap<String, f64>,
    /// histogram identity → (p50, p95, p99), where present and non-null.
    percentiles: BTreeMap<String, [Option<f64>; 3]>,
}

fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    v.as_object()?.get(key)
}

fn metric_identity(entry: &serde::Map) -> String {
    let name = entry
        .get("name")
        .and_then(Value::as_str)
        .unwrap_or("?")
        .to_string();
    let labels: Vec<String> = entry
        .get("labels")
        .and_then(Value::as_object)
        .map(|m| {
            m.iter()
                .map(|(k, v)| format!("{k}={:?}", v.as_str().unwrap_or("")))
                .collect()
        })
        .unwrap_or_default();
    if labels.is_empty() {
        name
    } else {
        format!("{name}{{{}}}", labels.join(","))
    }
}

fn parse_view(text: &str, which: &str) -> Result<BenchView, String> {
    let value: Value =
        serde_json::from_str(text).map_err(|e| format!("{which}: not valid JSON: {e:?}"))?;
    let mut view = BenchView {
        label: get(&value, "label")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string(),
        ..BenchView::default()
    };
    if let Some(exps) = get(&value, "experiments").and_then(Value::as_array) {
        for e in exps {
            let (Some(id), Some(seconds)) = (
                get(e, "id").and_then(Value::as_str),
                get(e, "seconds").and_then(Value::as_f64),
            ) else {
                continue;
            };
            view.experiments.push((id.to_string(), seconds));
        }
    }
    view.total_seconds = get(&value, "total_seconds").and_then(Value::as_f64);
    if let Some(quality_exps) = get(&value, "quality")
        .and_then(|q| get(q, "experiments"))
        .and_then(Value::as_object)
    {
        for (experiment, metrics) in quality_exps.iter() {
            if let Some(acc) = get(metrics, "accuracy").and_then(Value::as_f64) {
                view.accuracy.insert(experiment.to_string(), acc);
            }
        }
    }
    if let Some(hists) = get(&value, "metrics")
        .and_then(|m| get(m, "histograms"))
        .and_then(Value::as_array)
    {
        for h in hists {
            let Some(entry) = h.as_object() else { continue };
            let ps = ["p50", "p95", "p99"].map(|p| entry.get(p).and_then(Value::as_f64));
            if ps.iter().any(Option::is_some) {
                view.percentiles.insert(metric_identity(entry), ps);
            }
        }
    }
    Ok(view)
}

fn pct_delta(base: f64, new: f64) -> Option<f64> {
    if base > 0.0 {
        Some((new - base) / base * 100.0)
    } else {
        None
    }
}

fn fmt_delta(delta: Option<f64>) -> String {
    match delta {
        Some(d) => format!("{d:+.1}%"),
        None => "   n/a".to_string(),
    }
}

/// Compare two run-report JSON documents and evaluate the gate.
///
/// # Errors
///
/// Returns an error when either document is not valid JSON.
pub fn diff_reports(base: &str, new: &str, opts: &DiffOptions) -> Result<DiffReport, String> {
    let base = parse_view(base, "baseline")?;
    let new = parse_view(new, "candidate")?;
    let mut lines = Vec::new();
    let mut violations = Vec::new();

    lines.push(format!(
        "bench diff: baseline `{}` vs candidate `{}`",
        base.label, new.label
    ));
    lines.push(String::new());

    // Per-experiment wall time.
    lines.push(format!(
        "{:<14} {:>10} {:>10} {:>8}",
        "experiment", "base s", "new s", "delta"
    ));
    let base_times: BTreeMap<&str, f64> = base
        .experiments
        .iter()
        .map(|(id, s)| (id.as_str(), *s))
        .collect();
    for (id, new_s) in &new.experiments {
        let row = match base_times.get(id.as_str()) {
            Some(&base_s) => {
                let delta = pct_delta(base_s, *new_s);
                if let (Some(limit), Some(d)) = (opts.max_time_regress_pct, delta) {
                    if d > limit {
                        violations.push(format!(
                            "experiment `{id}` wall time regressed {d:+.1}% \
                             (limit +{limit:.0}%): {base_s:.3}s -> {new_s:.3}s"
                        ));
                    }
                }
                format!(
                    "{id:<14} {base_s:>10.3} {new_s:>10.3} {:>8}",
                    fmt_delta(delta)
                )
            }
            None => format!("{id:<14} {:>10} {new_s:>10.3} {:>8}", "-", "new"),
        };
        lines.push(row);
    }
    for (id, base_s) in &base.experiments {
        if !new.experiments.iter().any(|(n, _)| n == id) {
            lines.push(format!("{id:<14} {base_s:>10.3} {:>10} {:>8}", "-", "gone"));
        }
    }
    if let (Some(b), Some(n)) = (base.total_seconds, new.total_seconds) {
        let delta = pct_delta(b, n);
        lines.push(format!(
            "{:<14} {b:>10.3} {n:>10.3} {:>8}",
            "total",
            fmt_delta(delta)
        ));
        if let (Some(limit), Some(d)) = (opts.max_time_regress_pct, delta) {
            if d > limit {
                violations.push(format!(
                    "total wall time regressed {d:+.1}% (limit +{limit:.0}%)"
                ));
            }
        }
    }

    // Quality accuracy.
    let quality_ids: std::collections::BTreeSet<&String> =
        base.accuracy.keys().chain(new.accuracy.keys()).collect();
    if !quality_ids.is_empty() {
        lines.push(String::new());
        lines.push(format!(
            "{:<14} {:>10} {:>10} {:>8}",
            "accuracy", "base %", "new %", "delta"
        ));
        for id in quality_ids {
            let (b, n) = (base.accuracy.get(id), new.accuracy.get(id));
            let mut row = format!("{id:<14} ");
            match b {
                Some(b) => {
                    let _ = write!(row, "{b:>10.2} ");
                }
                None => {
                    let _ = write!(row, "{:>10} ", "-");
                }
            }
            match n {
                Some(n) => {
                    let _ = write!(row, "{n:>10.2} ");
                }
                None => {
                    let _ = write!(row, "{:>10} ", "-");
                }
            }
            if let (Some(b), Some(n)) = (b, n) {
                let _ = write!(row, "{:>8}", fmt_delta(Some(n - b)));
            }
            lines.push(row);
            if let (Some(floor), Some(&n)) = (opts.min_accuracy_pct, n) {
                if n < floor {
                    violations.push(format!(
                        "quality accuracy of `{id}` is {n:.2}% (floor {floor:.2}%)"
                    ));
                }
            }
        }
    }

    // Histogram percentile drift (informational, never a violation: the
    // per-stage tails are scheduling observations).
    let shared: Vec<&String> = base
        .percentiles
        .keys()
        .filter(|k| new.percentiles.contains_key(*k))
        .collect();
    if !shared.is_empty() {
        lines.push(String::new());
        lines.push(format!(
            "{:<44} {:>11} {:>11} {:>11}",
            "histogram (p95 seconds)", "base", "new", "delta"
        ));
        for key in shared {
            let (b, n) = (&base.percentiles[key], &new.percentiles[key]);
            if let (Some(bp), Some(np)) = (b[1], n[1]) {
                lines.push(format!(
                    "{key:<44} {bp:>11.6} {np:>11.6} {:>11}",
                    fmt_delta(pct_delta(bp, np))
                ));
            }
        }
    }

    if violations.is_empty() {
        lines.push(String::new());
        lines.push("gate: PASS".to_string());
    } else {
        lines.push(String::new());
        lines.push(format!("gate: FAIL ({} violation(s))", violations.len()));
        for v in &violations {
            lines.push(format!("  - {v}"));
        }
    }
    Ok(DiffReport { lines, violations })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal but structurally faithful run report.
    fn report(label: &str, fig10_s: f64, accuracy: f64, p95: f64) -> String {
        format!(
            r#"{{
  "label": "{label}",
  "meta": {{"scale": "quick", "threads": "2"}},
  "experiments": [
    {{"id": "fig10", "seconds": {fig10_s}}},
    {{"id": "table2", "seconds": 0.5}}
  ],
  "total_seconds": {total},
  "quality": {{
    "experiments": {{"fig10": {{"accuracy": {accuracy}, "macro_f1": 90.0}}}},
    "segmentation": {{"segments_found": 10, "segments_merged": 2, "otsu_threshold": 0.01}},
    "distinguish": {{"detect": 8, "track": 2, "rejected": 0, "rejection_rate": 0}}
  }},
  "metrics": {{
    "counters": [],
    "gauges": [],
    "histograms": [
      {{"name": "pipeline_stage_seconds", "labels": {{"stage": "sbc"}},
        "count": 4, "sum": 0.04, "mean": 0.01,
        "p50": 0.01, "p95": {p95}, "p99": {p95},
        "buckets": [{{"le": 1.0, "count": 4}}, {{"le": "+Inf", "count": 4}}]}}
    ]
  }}
}}"#,
            total = fig10_s + 0.5,
        )
    }

    fn gate() -> DiffOptions {
        DiffOptions {
            max_time_regress_pct: Some(50.0),
            min_accuracy_pct: Some(90.0),
        }
    }

    #[test]
    fn identical_snapshots_pass() {
        let a = report("base", 1.0, 97.5, 0.012);
        let diff = diff_reports(&a, &a, &gate()).unwrap();
        assert!(diff.passed(), "{:?}", diff.violations);
        let text = diff.lines.join("\n");
        assert!(text.contains("gate: PASS"));
        assert!(text.contains("fig10"));
        assert!(text.contains("pipeline_stage_seconds"));
    }

    #[test]
    fn injected_accuracy_regression_fails() {
        let base = report("base", 1.0, 97.5, 0.012);
        let bad = report("bad", 1.0, 80.0, 0.012);
        let diff = diff_reports(&base, &bad, &gate()).unwrap();
        assert!(!diff.passed());
        assert!(
            diff.violations.iter().any(|v| v.contains("accuracy")),
            "{:?}",
            diff.violations
        );
        assert!(diff.lines.join("\n").contains("gate: FAIL"));
    }

    #[test]
    fn injected_time_regression_fails() {
        let base = report("base", 1.0, 97.5, 0.012);
        let slow = report("slow", 2.0, 97.5, 0.012);
        let diff = diff_reports(&base, &slow, &gate()).unwrap();
        assert!(!diff.passed());
        assert!(
            diff.violations.iter().any(|v| v.contains("wall time")),
            "{:?}",
            diff.violations
        );
    }

    #[test]
    fn regression_within_threshold_passes() {
        let base = report("base", 1.0, 97.5, 0.012);
        let slightly = report("new", 1.2, 95.0, 0.02);
        let diff = diff_reports(&base, &slightly, &gate()).unwrap();
        assert!(diff.passed(), "{:?}", diff.violations);
    }

    #[test]
    fn gates_off_never_fail() {
        let base = report("base", 1.0, 97.5, 0.012);
        let awful = report("awful", 50.0, 10.0, 0.5);
        let diff = diff_reports(&base, &awful, &DiffOptions::default()).unwrap();
        assert!(diff.passed());
    }

    #[test]
    fn missing_quality_in_baseline_is_tolerated() {
        // An old baseline without quality/percentiles still gates time.
        let old = r#"{
  "label": "old",
  "meta": {},
  "experiments": [{"id": "fig10", "seconds": 1.0}],
  "total_seconds": 1.5,
  "metrics": {"counters": [], "gauges": [], "histograms": []}
}"#;
        let new = report("new", 1.1, 97.5, 0.012);
        let diff = diff_reports(old, &new, &gate()).unwrap();
        assert!(diff.passed(), "{:?}", diff.violations);
        // But a *low* accuracy in the candidate is still caught: the
        // floor gate needs no baseline.
        let bad = report("bad", 1.1, 50.0, 0.012);
        let diff = diff_reports(old, &bad, &gate()).unwrap();
        assert!(!diff.passed());
    }

    #[test]
    fn invalid_json_is_an_error() {
        assert!(diff_reports("{", "{}", &DiffOptions::default()).is_err());
        assert!(diff_reports("{}", "not json", &DiffOptions::default()).is_err());
    }
}
