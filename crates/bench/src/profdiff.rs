//! Offline differential profiles: parse `airfinger-profile-v1` JSON
//! artifacts back into [`ProfileSnapshot`]s so two on-disk profiles can
//! be compared with [`ProfileSnapshot::diff`] without sharing a process
//! (`repro profile-diff BASE.json NEW.json`).
//!
//! The live route (`GET /profile?baseline=set` then `?diff=base`) covers
//! in-process before/after comparisons; this module covers the CI shape
//! — two runs, two artifacts, one signed collapsed-stack file fed to a
//! differential flamegraph.

use airfinger_obs::profile::{PathStats, ProfileSnapshot};
use airfinger_obs::AllocStats;
use serde::Value;

/// Read one `airfinger-profile-v1` document into a snapshot. The path
/// list is re-sorted on ingest (the snapshot's binary-search and diff
/// walk both require lexicographic order), and duplicate paths merge.
///
/// # Errors
///
/// Invalid JSON, a wrong/missing `schema` marker, or a `paths` entry
/// without a string `path` all fail with a message naming `which` (the
/// caller's label for this side, e.g. the file path).
pub fn parse_profile_json(text: &str, which: &str) -> Result<ProfileSnapshot, String> {
    let value: Value =
        serde_json::from_str(text).map_err(|e| format!("{which}: not valid JSON: {e:?}"))?;
    let object = value
        .as_object()
        .ok_or_else(|| format!("{which}: profile document must be a JSON object"))?;
    match object.get("schema").and_then(Value::as_str) {
        Some("airfinger-profile-v1") => {}
        Some(other) => {
            return Err(format!(
                "{which}: schema is `{other}`, expected `airfinger-profile-v1`"
            ))
        }
        None => return Err(format!("{which}: missing `schema` marker")),
    }
    let dropped = object
        .get("dropped_paths")
        .and_then(Value::as_f64)
        .unwrap_or(0.0) as u64;
    let entries = object
        .get("paths")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{which}: missing `paths` array"))?;

    let mut snapshot = ProfileSnapshot {
        paths: Vec::with_capacity(entries.len()),
        dropped,
    };
    for entry in entries {
        let entry = entry
            .as_object()
            .ok_or_else(|| format!("{which}: `paths` entries must be objects"))?;
        let path = entry
            .get("path")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{which}: `paths` entry without a string `path`"))?;
        let field = |key: &str| entry.get(key).and_then(Value::as_f64).unwrap_or(0.0) as u64;
        snapshot.paths.push((
            path.to_string(),
            PathStats {
                count: field("count"),
                total_ns: field("total_ns"),
                self_ns: field("self_ns"),
                alloc: AllocStats {
                    count: field("alloc_count"),
                    bytes: field("alloc_bytes"),
                },
                self_alloc: AllocStats {
                    count: field("self_alloc_count"),
                    bytes: field("self_alloc_bytes"),
                },
            },
        ));
    }
    snapshot.paths.sort_by(|a, b| a.0.cmp(&b.0));
    snapshot.paths.dedup_by(|dup, kept| {
        if dup.0 == kept.0 {
            let stats = dup.1;
            kept.1.merge(&stats);
            true
        } else {
            false
        }
    });
    Ok(snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(paths: &[(&str, u64, u64)]) -> ProfileSnapshot {
        let mut s = ProfileSnapshot {
            paths: paths
                .iter()
                .map(|(p, count, self_ns)| {
                    (
                        (*p).to_string(),
                        PathStats {
                            count: *count,
                            total_ns: *self_ns,
                            self_ns: *self_ns,
                            ..PathStats::default()
                        },
                    )
                })
                .collect(),
            dropped: 0,
        };
        s.paths.sort_by(|a, b| a.0.cmp(&b.0));
        s
    }

    #[test]
    fn json_export_round_trips_through_the_parser() {
        let original = snap(&[("root;push", 10, 4_000), ("root", 1, 500)]);
        let parsed = parse_profile_json(&original.to_json(), "test").expect("parses");
        assert_eq!(parsed.paths.len(), original.paths.len());
        for ((p_a, s_a), (p_b, s_b)) in parsed.paths.iter().zip(original.paths.iter()) {
            assert_eq!(p_a, p_b);
            assert_eq!(s_a.count, s_b.count);
            assert_eq!(s_a.self_ns, s_b.self_ns);
        }
        // A round-tripped snapshot diffed with its source is all-zero.
        assert!(parsed.diff(&original).is_zero());
    }

    #[test]
    fn parsed_snapshots_diff_with_signed_collapsed_output() {
        let base = snap(&[("root;stage_a", 5, 1_000), ("root;stage_b", 5, 2_000)]);
        let new = snap(&[("root;stage_a", 5, 3_000), ("root;stage_c", 2, 700)]);
        let base = parse_profile_json(&base.to_json(), "base").expect("base parses");
        let new = parse_profile_json(&new.to_json(), "new").expect("new parses");
        let diff = new.diff(&base);
        let collapsed = diff.collapsed();
        assert!(collapsed.contains("root;stage_a 2000"), "{collapsed}");
        assert!(collapsed.contains("root;stage_b -2000"), "{collapsed}");
        assert!(collapsed.contains("root;stage_c 700"), "{collapsed}");
        assert!(diff.to_json().contains("airfinger-profile-diff-v1"));
    }

    #[test]
    fn parser_rejects_wrong_schema_and_garbage() {
        assert!(parse_profile_json("{not json", "x").is_err());
        assert!(
            parse_profile_json(r#"{"schema": "other-v9", "paths": []}"#, "x")
                .unwrap_err()
                .contains("other-v9")
        );
        assert!(parse_profile_json(r#"{"paths": []}"#, "x")
            .unwrap_err()
            .contains("schema"));
    }

    #[test]
    fn parser_sorts_and_merges_duplicate_paths() {
        let text = r#"{
            "schema": "airfinger-profile-v1",
            "dropped_paths": 0,
            "paths": [
                {"path": "z", "count": 1, "total_ns": 10, "self_ns": 10},
                {"path": "a", "count": 2, "total_ns": 20, "self_ns": 20},
                {"path": "z", "count": 3, "total_ns": 30, "self_ns": 30}
            ]
        }"#;
        let snap = parse_profile_json(text, "test").expect("parses");
        assert_eq!(snap.paths.len(), 2);
        assert_eq!(snap.paths[0].0, "a");
        assert_eq!(snap.paths[1].0, "z");
        assert_eq!(snap.paths[1].1.count, 4, "duplicates merge");
        assert_eq!(snap.path("z").map(|s| s.self_ns), Some(40));
    }
}
