//! Fig. 9: classifier comparison — RF vs LR vs DT vs BNB accuracy as the
//! percentage of testing data grows. Paper: RF highest throughout, all
//! curves gently decreasing; LR competitive on accuracy but much slower.

use crate::context::Context;
use crate::error::BenchError;
use crate::experiments::{eval_classifier_fold, pct};
use crate::report::Report;
use airfinger_ml::classifier::Classifier;
use airfinger_ml::forest::{RandomForest, RandomForestConfig};
use airfinger_ml::logistic::{LogisticRegression, LogisticRegressionConfig};
use airfinger_ml::naive_bayes::BernoulliNaiveBayes;
use airfinger_ml::split::train_test_split;
use airfinger_ml::tree::{DecisionTree, DecisionTreeConfig};
use std::time::Instant;

/// Test-data percentages swept (the paper varies "the percentage of
/// testing data"; 25 % is its highlighted point).
pub const TEST_FRACTIONS: [f64; 5] = [0.10, 0.25, 0.50, 0.75, 0.90];

/// Run the experiment.
///
/// # Errors
///
/// Propagates classifier failures.
pub fn run(ctx: &Context) -> Result<Report, BenchError> {
    let mut report = Report::new("fig9", "classifier comparison over test-data percentage");
    let features = ctx.all_features();
    let names = ["RF", "LR", "DT", "BNB"];
    let mut rows: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
    let mut train_time_ms = [0.0f64; 4];
    for (fi, &frac) in TEST_FRACTIONS.iter().enumerate() {
        let split = train_test_split(&features.y, frac, ctx.seed + fi as u64);
        let mut classifiers: Vec<Box<dyn Classifier>> = vec![
            Box::new(RandomForest::new(RandomForestConfig {
                n_trees: ctx.config.forest_trees,
                seed: ctx.seed,
                ..Default::default()
            })),
            Box::new(LogisticRegression::new(LogisticRegressionConfig::default())),
            Box::new(DecisionTree::new(DecisionTreeConfig::default())),
            Box::new(BernoulliNaiveBayes::default()),
        ];
        for (ci, clf) in classifiers.iter_mut().enumerate() {
            // lint: wall-clock — the fit+eval time IS this figure's result
            let start = Instant::now();
            let m = eval_classifier_fold(clf.as_mut(), features, &split, 8)?;
            train_time_ms[ci] += start.elapsed().as_secs_f64() * 1000.0;
            rows[ci].push(m.accuracy());
        }
    }
    let header = TEST_FRACTIONS
        .iter()
        .map(|f| format!("{:>7.0}%", f * 100.0))
        .collect::<Vec<_>>()
        .join(" ");
    report.line(format!("{:>4} | {header}   (test-data percentage)", "clf"));
    for (ci, name) in names.iter().enumerate() {
        let vals = rows[ci]
            .iter()
            .map(|a| format!("{:>7.2}", pct(*a)))
            .collect::<Vec<_>>()
            .join(" ");
        report.line(format!(
            "{name:>4} | {vals}   (fit+eval {:.0} ms total)",
            train_time_ms[ci]
        ));
    }
    // Headline metrics: accuracy at 25 % test data, and whether RF wins.
    for (ci, name) in names.iter().enumerate() {
        report.metric(
            &format!("{}_at_25pct", name.to_lowercase()),
            pct(rows[ci][1]),
        );
        report.metric(
            &format!("{}_time_ms", name.to_lowercase()),
            train_time_ms[ci],
        );
    }
    let rf_wins = (0..TEST_FRACTIONS.len())
        .filter(|&fi| (0..4).all(|ci| rows[0][fi] + 1e-12 >= rows[ci][fi]))
        .count();
    report.metric(
        "rf_wins_fraction_of_sweep",
        rf_wins as f64 / TEST_FRACTIONS.len() as f64 * 100.0,
    );
    report.paper_value("rf_wins_fraction_of_sweep", 100.0);
    Ok(report)
}
