//! Fig. 16 / §V-J3: dominant-hand influence — six right-handed volunteers
//! perform all gestures with the left hand, the prototype mirrored
//! accordingly; three-fold CV over these samples. Paper: accuracy above
//! 95 %, recall 95.10 %, precision 95.13 %.

use crate::context::Context;
use crate::error::BenchError;
use crate::experiments::{eval_rf_fold, merge_folds, pct};
use crate::report::Report;
use airfinger_core::train::all_gesture_feature_set;
use airfinger_ml::split::stratified_k_fold;
use airfinger_synth::conditions::Condition;
use airfinger_synth::dataset::{generate_corpus, CorpusSpec};

/// Run the experiment.
///
/// # Errors
///
/// Propagates classifier failures.
pub fn run(ctx: &Context) -> Result<Report, BenchError> {
    let mut report = Report::new("fig16", "non-dominant hand (mirrored)");
    let spec = CorpusSpec {
        users: 6,
        sessions: 2,
        reps: ctx.scale.scaled(20),
        condition: Condition::Mirrored,
        seed: ctx.seed + 16,
        ..Default::default()
    };
    let features = all_gesture_feature_set(&generate_corpus(&spec), &ctx.config);
    let folds = stratified_k_fold(&features.y, 3, ctx.seed + 16);
    let merged = merge_folds(
        folds
            .iter()
            .enumerate()
            .map(|(k, s)| {
                eval_rf_fold(
                    &features,
                    s,
                    8,
                    ctx.config.forest_trees,
                    ctx.seed + 16 + k as u64,
                )
            })
            .collect::<Result<Vec<_>, _>>()?,
        8,
    );
    report.line(format!(
        "accuracy {:.2}%  recall {:.2}%  precision {:.2}%",
        pct(merged.accuracy()),
        pct(merged.macro_recall()),
        pct(merged.macro_precision()),
    ));
    report.metric("accuracy", pct(merged.accuracy()));
    report.metric("macro_recall", pct(merged.macro_recall()));
    report.metric("macro_precision", pct(merged.macro_precision()));
    report.paper_value("accuracy", 95.0);
    report.paper_value("macro_recall", 95.10);
    report.paper_value("macro_precision", 95.13);
    Ok(report)
}
