//! Fig. 17 / §V-K: wristband demo — six volunteers, gestures performed
//! while sitting, standing and walking; three-fold CV over the wristband
//! corpus with per-activity breakdown. Paper: accuracy 97.17 %, recall
//! 97.17 %, precision 97.46 %.

use crate::context::Context;
use crate::error::BenchError;
use crate::experiments::{eval_rf_fold, merge_folds, pct};
use crate::report::Report;
use airfinger_core::train::all_gesture_feature_set;
use airfinger_ml::split::stratified_k_fold;
use airfinger_synth::conditions::{Activity, Condition};
use airfinger_synth::dataset::{generate_corpus, CorpusSpec};

/// Run the experiment.
///
/// # Errors
///
/// Propagates classifier failures.
pub fn run(ctx: &Context) -> Result<Report, BenchError> {
    let mut report = Report::new("fig17", "wristband demo (sitting / standing / walking)");
    report.line(format!("{:>10} {:>9}", "activity", "accuracy"));
    let mut overall_acc = Vec::new();
    let mut recalls = Vec::new();
    let mut precisions = Vec::new();
    for activity in Activity::ALL {
        let spec = CorpusSpec {
            users: 6,
            sessions: 1,
            reps: ctx.scale.scaled(25),
            condition: Condition::Wristband { activity },
            seed: ctx.seed + 17,
            ..Default::default()
        };
        let features = all_gesture_feature_set(&generate_corpus(&spec), &ctx.config);
        let folds = stratified_k_fold(&features.y, 3, ctx.seed + 17);
        let merged = merge_folds(
            folds
                .iter()
                .enumerate()
                .map(|(k, s)| {
                    eval_rf_fold(
                        &features,
                        s,
                        8,
                        ctx.config.forest_trees,
                        ctx.seed + 17 + k as u64,
                    )
                })
                .collect::<Result<Vec<_>, _>>()?,
            8,
        );
        report.line(format!(
            "{:>10} {:>8.2}%",
            activity.name(),
            pct(merged.accuracy())
        ));
        overall_acc.push(merged.accuracy());
        recalls.push(merged.macro_recall());
        precisions.push(merged.macro_precision());
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    report.line(format!(
        "average accuracy {:.2}%  recall {:.2}%  precision {:.2}%",
        pct(mean(&overall_acc)),
        pct(mean(&recalls)),
        pct(mean(&precisions)),
    ));
    report.metric("avg_accuracy", pct(mean(&overall_acc)));
    report.metric("macro_recall", pct(mean(&recalls)));
    report.metric("macro_precision", pct(mean(&precisions)));
    report.paper_value("avg_accuracy", 97.17);
    report.paper_value("macro_recall", 97.17);
    report.paper_value("macro_precision", 97.46);
    Ok(report)
}
