//! Table II: performance summary — per-gesture accuracy for the six
//! detect-aimed gestures, scroll-direction accuracy for the two
//! track-aimed gestures, the velocity/displacement interface rating, and
//! the overall average. Paper: detect average 98.44 %, scroll up 99.88 %,
//! scroll down 99.26 %, rating 2.6/3.0, summary 98.72 %.

use crate::context::Context;
use crate::error::BenchError;
use crate::experiments::{eval_rf_fold, merge_folds, pct, ALL_NAMES, DETECT_NAMES};
use crate::report::Report;
use airfinger_core::processing::DataProcessor;
use airfinger_core::zebra::{VelocitySource, Zebra};
use airfinger_ml::split::stratified_k_fold;
use airfinger_synth::dataset::trial_trajectory;
use airfinger_synth::gesture::Gesture;
use airfinger_synth::profile::UserProfile;

/// Ground-truth crossing velocity (mm/s) of a scroll trajectory over the
/// `P1`–`P3` baseline, if the sweep covers it.
fn true_crossing_velocity(
    traj: &airfinger_synth::trajectory::Trajectory,
    baseline_m: f64,
) -> Option<f64> {
    let half = baseline_m / 2.0;
    let mut t_first: Option<f64> = None;
    let mut t_last: Option<f64> = None;
    let dt = 0.005;
    let steps = (traj.duration_s() / dt) as usize;
    let sign = {
        let a = traj.position(0.0)?.x;
        let b = traj.position(traj.duration_s())?.x;
        if b > a {
            1.0
        } else {
            -1.0
        }
    };
    for k in 0..=steps {
        let t = k as f64 * dt;
        let x = traj.position(t)?.x * sign; // normalize to increasing
        if t_first.is_none() && x >= -half {
            t_first = Some(t);
        }
        if t_last.is_none() && x >= half {
            t_last = Some(t);
        }
    }
    match (t_first, t_last) {
        (Some(a), Some(b)) if b > a => Some(baseline_m * 1000.0 / (b - a)),
        _ => None,
    }
}

/// Run the experiment.
///
/// # Errors
///
/// Propagates classifier failures.
pub fn run(ctx: &Context) -> Result<Report, BenchError> {
    let mut report = Report::new("table2", "performance summary");
    // Detect-aimed per-gesture accuracies (5-fold CV, one-vs-rest accuracy
    // as the paper's per-gesture "Accuracy" column).
    let detect = ctx.detect_features();
    let folds = stratified_k_fold(&detect.y, 5, ctx.seed + 2);
    let matrix = merge_folds(
        folds
            .iter()
            .enumerate()
            .map(|(k, s)| {
                eval_rf_fold(
                    &detect,
                    s,
                    6,
                    ctx.config.forest_trees,
                    ctx.seed + 2 + k as u64,
                )
            })
            .collect::<Result<Vec<_>, _>>()?,
        6,
    );
    matrix.export_obs("table2_detect", &DETECT_NAMES);
    report.line("Detect-aimed gestures:");
    for (g, name) in DETECT_NAMES.iter().enumerate() {
        let acc = pct(matrix.class_accuracy(g));
        report.line(format!("  {name:>9}  {acc:.2}%"));
        report.metric(&format!("detect_{name}"), acc);
    }
    let detect_avg = pct(matrix.accuracy());
    report.line(format!("  average accuracy = {detect_avg:.2}%"));
    report.metric("detect_avg", detect_avg);
    report.paper_value("detect_avg", 98.44);

    // Scroll direction from the 8-class CV: a scroll is "directionally
    // correct" when recognized as its own class.
    let all = ctx.all_features();
    let folds8 = stratified_k_fold(&all.y, 5, ctx.seed + 3);
    let m8 = merge_folds(
        folds8
            .iter()
            .enumerate()
            .map(|(k, s)| eval_rf_fold(all, s, 8, ctx.config.forest_trees, ctx.seed + 3 + k as u64))
            .collect::<Result<Vec<_>, _>>()?,
        8,
    );
    m8.export_obs("table2_all", &ALL_NAMES);
    let up_idx = Gesture::ScrollUp.index();
    let down_idx = Gesture::ScrollDown.index();
    let dir_acc = |g: usize| m8.recall(g).unwrap_or(0.0);
    report.line("Track-aimed gestures:");
    report.line(format!(
        "  scroll up direction    {:.2}%",
        pct(dir_acc(up_idx))
    ));
    report.line(format!(
        "  scroll down direction  {:.2}%",
        pct(dir_acc(down_idx))
    ));
    let track_avg = pct((dir_acc(up_idx) + dir_acc(down_idx)) / 2.0);
    report.line(format!("  average accuracy = {track_avg:.2}%"));
    report.metric("scroll_up_direction", pct(dir_acc(up_idx)));
    report.metric("scroll_down_direction", pct(dir_acc(down_idx)));
    report.metric("track_avg", track_avg);
    report.paper_value("scroll_up_direction", 99.88);
    report.paper_value("scroll_down_direction", 99.26);
    report.paper_value("track_avg", 99.57);

    // Velocity & displacement rating: ZEBRA velocity vs ground truth.
    let corpus = ctx.corpus();
    let spec = ctx.main_spec();
    let processor = DataProcessor::new(ctx.config);
    let zebra = Zebra::new(ctx.config);
    let mut ratings = Vec::new();
    for s in corpus.samples() {
        let Some(g) = s.label.gesture() else { continue };
        if !g.is_track_aimed() {
            continue;
        }
        let profile = UserProfile::sample(s.user, spec.seed);
        let traj = trial_trajectory(&profile, s.label, s.session, s.rep, &spec);
        let Some(v_true) = true_crossing_velocity(&traj, ctx.config.pd_baseline_m) else {
            continue; // partial scroll: no measurable ground truth
        };
        let w = processor.primary_window(&s.trace);
        let Some(track) = zebra.track(&w) else {
            continue;
        };
        if track.velocity_source != VelocitySource::Measured {
            continue;
        }
        let r = (track.velocity_mm_s / v_true).ln().abs();
        ratings.push(if r < 0.35 {
            3.0
        } else if r < 0.8 {
            2.0
        } else {
            1.0
        });
    }
    let rating = if ratings.is_empty() {
        0.0
    } else {
        ratings.iter().sum::<f64>() / ratings.len() as f64
    };
    report.line(format!(
        "Rate of scroll velocity & displacement: {rating:.1}/3.0  ({} tracked scrolls rated)",
        ratings.len()
    ));
    report.metric("velocity_rating", rating);
    report.paper_value("velocity_rating", 2.6);

    // Summary over all eight gestures (weighted like the paper: six
    // detect + two track classes).
    let summary = (6.0 * detect_avg + 2.0 * track_avg) / 8.0;
    report.line(format!("Summary average accuracy = {summary:.2}%"));
    report.metric("summary_avg", summary);
    report.paper_value("summary_avg", 98.72);
    Ok(report)
}
