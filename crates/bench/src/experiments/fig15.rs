//! Fig. 15 / §V-J2: environmental NIR changes — gestures performed every
//! 3 hours from 8:00 to 20:00. The recognizer is trained on the standard
//! indoor corpus and tested under each ambient condition. Paper: average
//! accuracy 92.97 %, recall 93.8 %, precision 95.02 %.

use crate::context::Context;
use crate::error::BenchError;
use crate::experiments::pct;
use crate::report::Report;
use airfinger_core::train::all_gesture_feature_set;
use airfinger_ml::classifier::Classifier;
use airfinger_ml::forest::{RandomForest, RandomForestConfig};
use airfinger_ml::metrics::ConfusionMatrix;
use airfinger_synth::conditions::Condition;
use airfinger_synth::dataset::{generate_corpus, CorpusSpec};

/// The §V-J2 measurement hours.
pub const HOURS: [f64; 5] = [8.0, 11.0, 14.0, 17.0, 20.0];

/// Run the experiment.
///
/// # Errors
///
/// Propagates classifier failures.
pub fn run(ctx: &Context) -> Result<Report, BenchError> {
    let mut report = Report::new("fig15", "environmental NIR changes over the day");
    // Train once on the two volunteers' standard-condition data.
    let train_spec = CorpusSpec {
        users: 2,
        sessions: 3,
        reps: ctx.scale.scaled(25),
        seed: ctx.seed + 15,
        ..Default::default()
    };
    let train = all_gesture_feature_set(&generate_corpus(&train_spec), &ctx.config);
    let mut rf = RandomForest::new(RandomForestConfig {
        n_trees: ctx.config.forest_trees,
        seed: ctx.seed + 15,
        ..Default::default()
    });
    rf.fit(&train.x, &train.y)?;
    report.line(format!("{:>7} {:>9}", "hour", "accuracy"));
    let mut merged = ConfusionMatrix::new(8);
    for &hour in &HOURS {
        let test_spec = CorpusSpec {
            users: 2,
            sessions: 1,
            reps: ctx.scale.scaled(25),
            condition: Condition::AmbientHour { hour },
            seed: ctx.seed + 15, // same volunteers, new ambient
            ..Default::default()
        };
        let test = all_gesture_feature_set(&generate_corpus(&test_spec), &ctx.config);
        let pred = rf.predict_batch(&test.x)?;
        let m = ConfusionMatrix::from_predictions(&test.y, &pred, 8);
        report.line(format!("{:>7.0} {:>8.2}%", hour, pct(m.accuracy())));
        merged.merge(&m);
    }
    report.line(format!(
        "average accuracy {:.2}%  recall {:.2}%  precision {:.2}%",
        pct(merged.accuracy()),
        pct(merged.macro_recall()),
        pct(merged.macro_precision()),
    ));
    report.metric("avg_accuracy", pct(merged.accuracy()));
    report.metric("macro_recall", pct(merged.macro_recall()));
    report.metric("macro_precision", pct(merged.macro_precision()));
    report.paper_value("avg_accuracy", 92.97);
    report.paper_value("macro_recall", 93.8);
    report.paper_value("macro_precision", 95.02);
    Ok(report)
}
