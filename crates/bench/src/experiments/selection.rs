//! §IV-C1 feature selection, rerun: "we use a toolbox … to automatically
//! extract a large number of candidate features … we apply a Random
//! Forest-based classifier to rank these features by their importance
//! feedback. Next, we combine signal observation and feature importance
//! to select 25 kinds of features."
//!
//! Over the candidate pool (Table I's 25 kinds + 6 extra kinds a toolbox
//! would offer), a forest is trained, scalar importances are aggregated
//! back to *kinds* across the three photodiode channels, the top 25 kinds
//! are selected, and the selected set's accuracy is compared against the
//! full candidate pool and against the paper's Table-I set.

use crate::context::Context;
use crate::error::BenchError;
use crate::experiments::{eval_rf_fold, merge_folds, pct};
use crate::report::Report;
use airfinger_core::train::{feature_set, LabeledFeatures};
use airfinger_features::{FeatureExtractor, FeatureKind};
use airfinger_ml::classifier::Classifier;
use airfinger_ml::forest::{RandomForest, RandomForestConfig};
use airfinger_ml::split::stratified_k_fold;
use airfinger_synth::dataset::Corpus;

fn gesture_features(
    corpus: &Corpus,
    ctx: &Context,
    extractor: &FeatureExtractor,
) -> LabeledFeatures {
    feature_set(corpus, &ctx.config, extractor, |s| {
        s.label.gesture().map(|g| g.index())
    })
}

fn cv_accuracy(features: &LabeledFeatures, ctx: &Context) -> Result<f64, BenchError> {
    let folds = stratified_k_fold(&features.y, 3, ctx.seed + 0x5E1);
    Ok(merge_folds(
        folds
            .iter()
            .map(|s| eval_rf_fold(features, s, 8, ctx.config.forest_trees, ctx.seed + 0x5E1))
            .collect::<Result<Vec<_>, _>>()?,
        8,
    )
    .accuracy())
}

/// Run the experiment.
///
/// # Errors
///
/// Propagates classifier failures.
pub fn run(ctx: &Context) -> Result<Report, BenchError> {
    let mut report = Report::new("selection", "the §IV-C1 feature-selection workflow, rerun");
    let corpus = ctx.corpus();
    let candidates = FeatureExtractor::new(FeatureKind::candidates());
    let cand_features = gesture_features(corpus, ctx, &candidates);

    // Rank kinds by aggregated RF importance.
    let mut rf = RandomForest::new(RandomForestConfig {
        n_trees: ctx.config.forest_trees,
        seed: ctx.seed + 0x5E1,
        ..Default::default()
    });
    rf.fit(&cand_features.x, &cand_features.y)?;
    let owners = candidates.scalar_owners();
    let per_channel = candidates.len();
    let mut kind_importance = vec![0.0; candidates.kinds().len()];
    for (idx, &imp) in rf.feature_importances().iter().enumerate() {
        // Scalars repeat per channel; appended scale descriptors (beyond
        // 3 × per_channel) belong to no kind.
        if idx < 3 * per_channel {
            kind_importance[owners[idx % per_channel]] += imp;
        }
    }
    let mut order: Vec<usize> = (0..kind_importance.len()).collect();
    order.sort_by(|&a, &b| {
        kind_importance[b]
            .partial_cmp(&kind_importance[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    report.line("kind ranking (top 12 by aggregated RF importance):");
    for (rank, &ki) in order.iter().take(12).enumerate() {
        report.line(format!(
            "  {:>2}. {:<28} {:.4}",
            rank + 1,
            format!("{:?}", candidates.kinds()[ki]),
            kind_importance[ki]
        ));
    }
    let selected: Vec<FeatureKind> = order
        .iter()
        .take(25)
        .map(|&ki| candidates.kinds()[ki])
        .collect();
    let table1 = FeatureKind::table1();
    let overlap = selected.iter().filter(|k| table1.contains(k)).count();
    report.line(format!(
        "selected 25 kinds share {overlap}/25 with the paper's Table I"
    ));

    // Accuracy of the three sets.
    let acc_candidates = cv_accuracy(&cand_features, ctx)?;
    let selected_features = gesture_features(corpus, ctx, &FeatureExtractor::new(selected));
    let acc_selected = cv_accuracy(&selected_features, ctx)?;
    let table1_features = gesture_features(corpus, ctx, &FeatureExtractor::table1());
    let acc_table1 = cv_accuracy(&table1_features, ctx)?;
    report.line(format!(
        "3-fold accuracy: all {} candidates {:.2}%  |  selected 25 {:.2}%  |  Table-I 25 {:.2}%",
        candidates.kinds().len(),
        pct(acc_candidates),
        pct(acc_selected),
        pct(acc_table1),
    ));
    report.metric("overlap_with_table1", overlap as f64);
    report.metric("acc_candidates", pct(acc_candidates));
    report.metric("acc_selected", pct(acc_selected));
    report.metric("acc_table1", pct(acc_table1));
    // The paper's claim: selecting does not cost accuracy (it reduces
    // over-fitting and cost); selected-25 should be within noise of the
    // full pool.
    report.paper_value("overlap_with_table1", 25.0);
    Ok(report)
}
