//! Perf: the hot-path micro-benchmark feeding the ratcheting regression
//! gate (`repro diff --perf-tolerance`).
//!
//! Not a paper figure — this is the perf observatory's measurement
//! harness (DESIGN.md §15): a single-threaded continuous session streams
//! through a bare [`StreamingEngine`] **K times** (median-of-K repeats)
//! with each push individually clocked into a *local* log2-bucketed
//! [`LatencyHist`], so the numbers cannot be contaminated by experiments
//! running concurrently on other worker threads.
//!
//! The report splits into the two metric classes declared in DESIGN.md
//! §9:
//!
//! - **deterministic** — pushes, recognitions, rejections, repeats, and
//!   allocation events/bytes per push: pure functions of `(scale, seed)`
//!   that `repro diff` gates *exactly*, byte-identical across
//!   `--threads` settings, runs, and machines;
//! - **timing** — single-thread throughput (median of per-repeat
//!   samples/s), push p50/p95/p99/max nanoseconds (median of per-repeat
//!   histogram quantiles), and per-stage mean nanoseconds per sample:
//!   wall-clock observations that the gate holds to a relative
//!   tolerance (`--perf-tolerance`, default 10%).

use crate::context::Context;
use crate::error::BenchError;
use crate::report::Report;
use airfinger_core::config::AirFingerConfig;
use airfinger_core::engine::StreamingEngine;
use airfinger_core::pipeline::AirFinger;
use airfinger_obs::alloc;
use airfinger_obs::latency;
use airfinger_obs::registry::MetricId;
use airfinger_obs::{LatencyHist, LatencySnapshot};
use airfinger_synth::dataset::{generate_corpus, generate_nongesture_corpus, CorpusSpec};
use airfinger_synth::session::{generate_session, SessionSpec};
use std::time::Instant;

/// The per-window pipeline stages whose global `pipeline_stage_ns`
/// latency histograms feed the per-stage attribution. The streaming
/// engine computes SBC/threshold/segmentation incrementally without
/// per-sample spans, so only the per-window stages appear here.
const STAGES: [&str; 5] = ["filter", "features", "rf_predict", "zebra", "distinguish"];

/// Median of an unsorted slice (takes a copy; slices here are length K).
fn median(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[sorted.len() / 2]
}

/// Snapshot a local push histogram under a synthetic identity so the
/// quantile walk can run on it.
fn local_snapshot(hist: &LatencyHist) -> LatencySnapshot {
    hist.snapshot(MetricId::new("perf_local_push_ns", &[]))
}

/// Run the experiment.
///
/// # Errors
///
/// Propagates training and engine failures; fails when the deterministic
/// work counters violate their structural contract (push-count mismatch
/// or a session that classifies no windows).
pub fn run(ctx: &Context) -> Result<Report, BenchError> {
    let mut report = Report::new(
        "perf",
        "hot-path latency attribution and perf regression gate feed",
    );
    let (samples, repeats) = match ctx.scale {
        crate::context::Scale::Quick => (4_000usize, 3usize),
        crate::context::Scale::Standard => (10_000, 5),
        crate::context::Scale::Full => (20_000, 5),
    };

    // Compact training recipe (distinct seed stream from every other
    // experiment) with the non-gesture filter live, so rejected windows
    // exercise the same stages the fleet path pays for.
    let spec = CorpusSpec {
        users: 2,
        sessions: 2,
        reps: ctx.scale.scaled(10),
        seed: ctx.seed + 101,
        ..Default::default()
    };
    let non_spec = CorpusSpec {
        reps: ctx.scale.scaled(30),
        ..spec.clone()
    };
    let corpus = generate_corpus(&spec);
    let non = generate_nongesture_corpus(&non_spec);
    let mut af = AirFinger::new(AirFingerConfig {
        forest_trees: ctx.config.forest_trees.min(40),
        ..ctx.config
    });
    af.train_on_corpus(&corpus, Some(&non))?;

    let session = SessionSpec {
        samples,
        seed: ctx.seed + 101,
        ..Default::default()
    };
    let trace = generate_session(&session);
    let channels = trace.channel_count();
    let mut engine = StreamingEngine::new(af, channels)?;

    // Warm-up pass (not measured): populates every lazily-created
    // registry entry, latency-table slot, and internal scratch buffer
    // exactly once, so the measured repeats observe a steady-state
    // allocator regardless of which experiments already ran on this
    // worker thread — that is what keeps allocs-per-push exact across
    // `--threads 1` vs `--threads N` runs.
    let mut sample = vec![0.0; channels];
    for i in 0..trace.len() {
        for (k, v) in sample.iter_mut().enumerate() {
            *v = trace.channel(k)[i];
        }
        let _ = engine.push(&sample)?;
    }

    // Per-stage attribution reads the *global* `pipeline_stage_ns`
    // histograms by delta across the whole repeat loop. Under
    // `--threads N` other experiments stream concurrently into the same
    // histograms, so these are timing-class observations only; the
    // deterministic counters below never touch shared state.
    let stage_hists: Vec<LatencyHist> = STAGES
        .iter()
        .map(|s| latency::hist_with("pipeline_stage_ns", &[("stage", s)]))
        .collect();
    let stage_sums_before: Vec<u64> = stage_hists.iter().map(LatencyHist::sum_ns).collect();

    // One local histogram, reset per repeat: every push is clocked
    // individually, independent of the global `engine_push_ns` histogram
    // that concurrent experiments also record into.
    let push_hist = LatencyHist::new();
    let mut throughputs = Vec::with_capacity(repeats);
    let mut p50s = Vec::with_capacity(repeats);
    let mut p95s = Vec::with_capacity(repeats);
    let mut p99s = Vec::with_capacity(repeats);
    let mut max_ns = 0u64;
    let mut recognitions = 0usize;
    let mut rejections = 0usize;
    let mut pushes = 0usize;
    let mut alloc_count = 0u64;
    let mut alloc_bytes = 0u64;

    let span = airfinger_obs::span!("perf_stream_seconds");
    for _rep in 0..repeats {
        push_hist.reset();
        let alloc_before = alloc::thread_stats();
        // This experiment *measures* the wall clock; its outputs are
        // timing-class metrics the gate holds to a tolerance, never
        // exact-compared.
        // lint: wall-clock — measured quantity
        let t0 = Instant::now();
        for i in 0..trace.len() {
            for (k, v) in sample.iter_mut().enumerate() {
                *v = trace.channel(k)[i];
            }
            let push_t0 = Instant::now(); // lint: wall-clock — measured quantity
            let event = engine.push(&sample)?;
            push_hist.record(u64::try_from(push_t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
            pushes += 1;
            if let Some(event) = event {
                if event.gesture().is_some() {
                    recognitions += 1;
                } else {
                    rejections += 1;
                }
            }
        }
        let elapsed = t0.elapsed().as_secs_f64();
        let alloc_delta = alloc::thread_stats().since(alloc_before);
        alloc_count += alloc_delta.count;
        alloc_bytes += alloc_delta.bytes;
        if elapsed > 0.0 {
            throughputs.push(samples as f64 / elapsed);
        }
        let snap = local_snapshot(&push_hist);
        p50s.push(snap.p50_ns() as f64);
        p95s.push(snap.p95_ns() as f64);
        p99s.push(snap.p99_ns() as f64);
        max_ns = max_ns.max(snap.max_ns);
    }
    drop(span);
    engine.flush()?;
    alloc::publish();

    let stage_sums_after: Vec<u64> = stage_hists.iter().map(LatencyHist::sum_ns).collect();

    // Deterministic work counters — exact-gated by `repro diff`.
    let recording = airfinger_obs::recording();
    airfinger_obs::counter!("perf_pushes_total").add(pushes as u64);
    airfinger_obs::counter!("perf_recognitions_total").add(recognitions as u64);
    airfinger_obs::counter!("perf_rejections_total").add(rejections as u64);
    airfinger_obs::counter!("perf_repeats_total").add(repeats as u64);
    // Allocation pressure is deterministic too (same code, same input,
    // single thread): the zero-alloc ratchet rides the exact gate.
    let allocs_per_push = alloc_count as f64 / pushes.max(1) as f64;
    let bytes_per_push = alloc_bytes as f64 / pushes.max(1) as f64;
    airfinger_obs::gauge!("perf_allocs_per_push").set(allocs_per_push);
    airfinger_obs::gauge!("perf_alloc_bytes_per_push").set(bytes_per_push);
    airfinger_obs::gauge!("perf_alloc_counting").set(f64::from(u8::from(alloc::counting())));

    // Timing metrics — tolerance-gated (suffix classes, DESIGN.md §9).
    let samples_per_s = median(&throughputs);
    let (p50, p95, p99) = (median(&p50s), median(&p95s), median(&p99s));
    airfinger_obs::gauge!("perf_samples_per_s").set(samples_per_s);
    airfinger_obs::gauge!("perf_push_p50_ns").set(p50);
    airfinger_obs::gauge!("perf_push_p95_ns").set(p95);
    airfinger_obs::gauge!("perf_push_p99_ns").set(p99);
    airfinger_obs::gauge!("perf_push_max_ns").set(max_ns as f64);

    report.line(format!(
        "{samples} samples x {repeats} repeats single-threaded \
         ({pushes} pushes, {recognitions} recognitions, {rejections} rejections)"
    ));
    report.line(format!(
        "throughput (median of {repeats}): {samples_per_s:.0} samples/s"
    ));
    report.line(format!(
        "push latency: p50 {p50:.0} ns, p95 {p95:.0} ns, p99 {p99:.0} ns, max {max_ns} ns \
         (log2 bucket upper edges)"
    ));
    if alloc::counting() {
        report.line(format!(
            "allocations: {allocs_per_push:.4} events / {bytes_per_push:.1} bytes per push \
             (loop totals {alloc_count} / {alloc_bytes})"
        ));
    } else {
        report.line("allocations: counting allocator not installed (0 reported)".to_string());
    }
    for (i, stage) in STAGES.iter().enumerate() {
        let d_ns = stage_sums_after[i].saturating_sub(stage_sums_before[i]);
        let mean_ns = d_ns as f64 / pushes.max(1) as f64;
        airfinger_obs::gauge_with("perf_stage_mean_ns", &[("stage", stage)]).set(mean_ns);
        report.line(format!(
            "  stage {stage:<12} {mean_ns:>10.1} ns/sample amortized"
        ));
        report.metric(&format!("stage_{stage}_mean_ns"), mean_ns);
    }

    report.metric("samples", samples as f64);
    report.metric("repeats", repeats as f64);
    report.metric("pushes", pushes as f64);
    report.metric("recognitions", recognitions as f64);
    report.metric("rejections", rejections as f64);
    report.metric("allocs_per_push", allocs_per_push);
    report.metric("alloc_bytes_per_push", bytes_per_push);
    report.metric("samples_per_s", samples_per_s);
    report.metric("push_p50_ns", p50);
    report.metric("push_p95_ns", p95);
    report.metric("push_p99_ns", p99);
    report.metric("push_max_ns", max_ns as f64);

    // Structural contract for the deterministic class.
    if pushes != samples * repeats {
        return Err(BenchError::Contract(format!(
            "expected {} pushes ({samples} samples x {repeats} repeats), got {pushes}",
            samples * repeats
        )));
    }
    if recognitions + rejections == 0 {
        return Err(BenchError::Contract(
            "session produced no classified windows; perf attribution is empty".into(),
        ));
    }
    if recording && push_hist.count() != samples as u64 {
        return Err(BenchError::Contract(format!(
            "local push histogram holds {} records for the last repeat, expected {samples}",
            push_hist.count()
        )));
    }
    Ok(report)
}
