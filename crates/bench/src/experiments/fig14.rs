//! Fig. 14 / §V-J1: unintentional motions — six volunteers perform designed
//! gestures and non-gestures (scratching, extending, repositioning); a
//! three-fold CV of the gesture/non-gesture filter. Paper: accuracy
//! 94.83 %, recall 94.83 %, precision 94.88 %.

use crate::context::Context;
use crate::error::BenchError;
use crate::experiments::{merge_folds, pct};
use crate::report::Report;
use airfinger_core::train::binary_feature_set;
use airfinger_ml::classifier::Classifier;
use airfinger_ml::forest::{RandomForest, RandomForestConfig};
use airfinger_ml::metrics::ConfusionMatrix;
use airfinger_ml::split::{gather, stratified_k_fold};
use airfinger_synth::dataset::{generate_corpus, generate_nongesture_corpus, CorpusSpec};

/// Run the experiment.
///
/// # Errors
///
/// Propagates classifier failures.
pub fn run(ctx: &Context) -> Result<Report, BenchError> {
    let mut report = Report::new(
        "fig14",
        "unintentional motions (gesture/non-gesture filter)",
    );
    // Paper: 6 volunteers × 2 sessions × (25 gestures + 25 non-gestures).
    let reps = ctx.scale.scaled(25);
    let gesture_spec = CorpusSpec {
        users: 6,
        sessions: 2,
        // 25 gestures per session split across the 8 kinds ≈ 3 each.
        reps: (reps / 8).max(1),
        seed: ctx.seed + 14,
        ..Default::default()
    };
    let non_spec = CorpusSpec {
        reps,
        ..gesture_spec.clone()
    };
    let corpus = generate_corpus(&gesture_spec).merged(generate_nongesture_corpus(&non_spec));
    let features = binary_feature_set(&corpus, &ctx.config);
    let folds = stratified_k_fold(&features.y, 3, ctx.seed + 14);
    let merged = merge_folds(
        folds
            .iter()
            .enumerate()
            .map(|(k, split)| {
                let mut rf = RandomForest::new(RandomForestConfig {
                    n_trees: ctx.config.forest_trees,
                    seed: ctx.seed + k as u64,
                    ..Default::default()
                });
                let (xtr, ytr) = gather(&features.x, &features.y, &split.train);
                let (xte, yte) = gather(&features.x, &features.y, &split.test);
                rf.fit(&xtr, &ytr)?;
                let pred = rf.predict_batch(&xte)?;
                Ok(ConfusionMatrix::from_predictions(&yte, &pred, 2))
            })
            .collect::<Result<Vec<_>, airfinger_ml::MlError>>()?,
        2,
    );
    report.line(format!(
        "samples: {} gestures + {} non-gestures",
        features.y.iter().filter(|&&l| l == 1).count(),
        features.y.iter().filter(|&&l| l == 0).count()
    ));
    report.line(format!(
        "accuracy {:.2}%  recall(gesture) {:.2}%  precision(gesture) {:.2}%",
        pct(merged.accuracy()),
        pct(merged.recall(1).unwrap_or(0.0)),
        pct(merged.precision(1).unwrap_or(0.0)),
    ));
    report.metric("accuracy", pct(merged.accuracy()));
    report.metric("recall", pct(merged.recall(1).unwrap_or(0.0)));
    report.metric("precision", pct(merged.precision(1).unwrap_or(0.0)));
    report.paper_value("accuracy", 94.83);
    report.paper_value("recall", 94.83);
    report.paper_value("precision", 94.88);
    Ok(report)
}
