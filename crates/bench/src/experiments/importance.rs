//! Feature-importance ranking — the §IV-C1 selection story: "we utilize
//! feature feedback from a random forest classifier to rank features by
//! their contributions to classification".

use crate::context::Context;
use crate::error::BenchError;
use crate::report::Report;
use airfinger_core::config::AirFingerConfig;
use airfinger_core::detect::DetectRecognizer;
use airfinger_ml::forest::top_k_features;

/// Run the experiment.
///
/// # Errors
///
/// Propagates training failures.
pub fn run(ctx: &Context) -> Result<Report, BenchError> {
    let mut report = Report::new(
        "importance",
        "random-forest feature-importance ranking (§IV-C1 feedback)",
    );
    let features = ctx.all_features();
    let mut rec = DetectRecognizer::new(&AirFingerConfig {
        forest_trees: ctx.config.forest_trees,
        ..ctx.config
    });
    rec.train_features(&features.x, &features.y)?;
    let names = rec.feature_names(3);
    let importances = rec.feature_importances();
    let top = top_k_features(importances, 20);
    report.line(format!(
        "{:>4} {:<34} {:>10}",
        "rank", "feature", "importance"
    ));
    for (rank, &idx) in top.iter().enumerate() {
        report.line(format!(
            "{:>4} {:<34} {:>9.4}",
            rank + 1,
            names.get(idx).cloned().unwrap_or_else(|| format!("f{idx}")),
            importances[idx]
        ));
    }
    // Concentration: how much of the total importance the top 25 scalars
    // carry (the paper keeps 25 *kinds*; this is the scalar analogue).
    let top25: f64 = top_k_features(importances, 25)
        .iter()
        .map(|&i| importances[i])
        .sum();
    report.line(format!(
        "top-25 scalars carry {:.1}% of total importance",
        100.0 * top25
    ));
    report.metric("top25_importance_share", 100.0 * top25);
    Ok(report)
}
