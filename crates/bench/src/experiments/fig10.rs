//! Fig. 10: overall detect-aimed performance — five-fold cross-validation
//! over the full corpus, confusion matrix and per-gesture accuracy /
//! recall / precision. Paper: average accuracy 98.44 %.

use crate::context::Context;
use crate::error::BenchError;
use crate::experiments::{eval_rf_fold, merge_folds, pct, DETECT_NAMES};
use crate::report::{format_confusion, Report};
use airfinger_ml::split::stratified_k_fold;

/// Run the experiment.
///
/// # Errors
///
/// Propagates classifier failures.
pub fn run(ctx: &Context) -> Result<Report, BenchError> {
    let mut report = Report::new("fig10", "overall detect-aimed performance (5-fold CV)");
    let features = ctx.detect_features();
    let folds = stratified_k_fold(&features.y, 5, ctx.seed);
    let matrix = merge_folds(
        folds
            .iter()
            .enumerate()
            .map(|(k, s)| {
                eval_rf_fold(
                    &features,
                    s,
                    6,
                    ctx.config.forest_trees,
                    ctx.seed + k as u64,
                )
            })
            .collect::<Result<Vec<_>, _>>()?,
        6,
    );
    matrix.export_obs("fig10", &DETECT_NAMES);
    for l in format_confusion(&matrix, &DETECT_NAMES) {
        report.line(l);
    }
    report.line(format!(
        "{:>10} {:>9} {:>9} {:>9}",
        "gesture", "accuracy", "recall", "precision"
    ));
    for (g, name) in DETECT_NAMES.iter().enumerate() {
        report.line(format!(
            "{:>10} {:>8.2}% {:>8.2}% {:>8.2}%",
            name,
            pct(matrix.class_accuracy(g)),
            pct(matrix.recall(g).unwrap_or(0.0)),
            pct(matrix.precision(g).unwrap_or(0.0)),
        ));
    }
    let avg = pct(matrix.accuracy());
    report.line(format!("average accuracy = {avg:.2}%"));
    report.metric("avg_accuracy", avg);
    report.metric("macro_recall", pct(matrix.macro_recall()));
    report.metric("macro_precision", pct(matrix.macro_precision()));
    report.paper_value("avg_accuracy", 98.44);
    report.paper_value("macro_recall", 90.65);
    report.paper_value("macro_precision", 92.13);
    Ok(report)
}
