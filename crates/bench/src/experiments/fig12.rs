//! Fig. 12: impact of gesture inconsistency — leave-one-session-out
//! cross-validation. Paper: average accuracy 97.07 %, i.e. close to the
//! within-population figure; sessions hurt far less than users.

use crate::context::Context;
use crate::error::BenchError;
use crate::experiments::{eval_rf_fold, merge_folds, pct, DETECT_NAMES};
use crate::report::{format_confusion, Report};
use airfinger_ml::split::leave_one_group_out;

/// Run the experiment.
///
/// # Errors
///
/// Propagates classifier failures.
pub fn run(ctx: &Context) -> Result<Report, BenchError> {
    let mut report = Report::new("fig12", "gesture inconsistency (leave-one-session-out)");
    let features = ctx.detect_features();
    let splits = leave_one_group_out(&features.sessions);
    let mut matrices = Vec::new();
    let mut per_session = Vec::new();
    for (session, split) in &splits {
        let m = eval_rf_fold(
            &features,
            split,
            6,
            ctx.config.forest_trees,
            ctx.seed + 31 + *session as u64,
        )?;
        per_session.push((*session, m.accuracy()));
        matrices.push(m);
    }
    let merged = merge_folds(matrices, 6);
    for l in format_confusion(&merged, &DETECT_NAMES) {
        report.line(l);
    }
    report.line(format!("{:>8} {:>9}", "session", "accuracy"));
    for (s, acc) in &per_session {
        report.line(format!("{:>8} {:>8.2}%", s, pct(*acc)));
    }
    let avg = pct(merged.accuracy());
    report.line(format!("average accuracy = {avg:.2}%"));
    report.metric("avg_accuracy", avg);
    report.metric("macro_recall", pct(merged.macro_recall()));
    report.metric("macro_precision", pct(merged.macro_precision()));
    report.paper_value("avg_accuracy", 97.07);
    report.paper_value("macro_recall", 91.28);
    report.paper_value("macro_precision", 91.11);
    Ok(report)
}
