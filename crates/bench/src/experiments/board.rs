//! §VI "Gesture Set" scaling study: boards with more photodiodes/LEDs —
//! recognition accuracy, scroll-direction accuracy and the sensor power
//! budget, side by side. More channels buy resolution at a power cost.

use crate::context::Context;
use crate::error::BenchError;
use crate::experiments::{eval_rf_fold, merge_folds, pct};
use crate::report::Report;
use airfinger_core::train::all_gesture_feature_set;
use airfinger_ml::split::stratified_k_fold;
use airfinger_nir_sim::components::{LedSpec, PhotodiodeSpec};
use airfinger_nir_sim::layout::SensorLayout;
use airfinger_nir_sim::power::PowerBudget;
use airfinger_synth::dataset::{generate_corpus, CorpusSpec};
use airfinger_synth::gesture::Gesture;

/// Run the experiment.
///
/// # Errors
///
/// Propagates classifier failures.
pub fn run(ctx: &Context) -> Result<Report, BenchError> {
    let mut report = Report::new(
        "board",
        "board scaling: photodiode count vs accuracy vs power",
    );
    report.line(format!(
        "{:>4} {:>6} {:>9} {:>12} {:>10}",
        "PDs", "LEDs", "accuracy", "scroll-dir", "power(mW)"
    ));
    for pd_count in [2usize, 3, 5] {
        let spec = CorpusSpec {
            users: 4,
            sessions: 2,
            reps: ctx.scale.scaled(8),
            seed: ctx.seed + 0xB0A2D,
            board_pds: pd_count,
            ..Default::default()
        };
        let corpus = generate_corpus(&spec);
        let features = all_gesture_feature_set(&corpus, &ctx.config);
        let folds = stratified_k_fold(&features.y, 3, ctx.seed + pd_count as u64);
        let merged = merge_folds(
            folds
                .iter()
                .map(|s| {
                    eval_rf_fold(
                        &features,
                        s,
                        8,
                        ctx.config.forest_trees,
                        ctx.seed + pd_count as u64,
                    )
                })
                .collect::<Result<Vec<_>, _>>()?,
            8,
        );
        let scroll_dir = (merged.recall(Gesture::ScrollUp.index()).unwrap_or(0.0)
            + merged.recall(Gesture::ScrollDown.index()).unwrap_or(0.0))
            / 2.0;
        let layout = SensorLayout::alternating(
            pd_count,
            5.0e-3,
            LedSpec::ir304c94(),
            PhotodiodeSpec::pt304(),
        );
        let power = PowerBudget::for_layout(&layout, 1.0);
        report.line(format!(
            "{:>4} {:>6} {:>8.2}% {:>11.2}% {:>10.1}",
            pd_count,
            layout.leds().len(),
            pct(merged.accuracy()),
            pct(scroll_dir),
            power.total_mw()
        ));
        report.metric(&format!("accuracy_{pd_count}pd"), pct(merged.accuracy()));
        report.metric(&format!("power_mw_{pd_count}pd"), power.total_mw());
    }
    Ok(report)
}
