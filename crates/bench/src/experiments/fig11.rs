//! Fig. 11: impact of individual diversity — leave-one-user-out
//! cross-validation over the detect-aimed corpus. Paper: average accuracy
//! 83.61 %, i.e. clearly below the within-population 98.44 %.

use crate::context::Context;
use crate::error::BenchError;
use crate::experiments::{eval_rf_fold, merge_folds, pct, DETECT_NAMES};
use crate::report::{format_confusion, Report};
use airfinger_ml::split::leave_one_group_out;

/// Run the experiment.
///
/// # Errors
///
/// Propagates classifier failures.
pub fn run(ctx: &Context) -> Result<Report, BenchError> {
    let mut report = Report::new("fig11", "individual diversity (leave-one-user-out)");
    let features = ctx.detect_features();
    let splits = leave_one_group_out(&features.users);
    let mut per_user = Vec::new();
    let mut matrices = Vec::new();
    for (user, split) in &splits {
        let m = eval_rf_fold(
            &features,
            split,
            6,
            ctx.config.forest_trees,
            ctx.seed + *user as u64,
        )?;
        per_user.push((*user, m.accuracy()));
        matrices.push(m);
    }
    let merged = merge_folds(matrices, 6);
    for l in format_confusion(&merged, &DETECT_NAMES) {
        report.line(l);
    }
    report.line(format!("{:>6} {:>9}", "user", "accuracy"));
    let mut above_80 = 0usize;
    for (u, acc) in &per_user {
        report.line(format!("{:>6} {:>8.2}%", u, pct(*acc)));
        if *acc >= 0.8 {
            above_80 += 1;
        }
    }
    let avg = pct(merged.accuracy());
    report.line(format!(
        "average accuracy = {avg:.2}%  ({above_80}/{} users above 80%)",
        per_user.len()
    ));
    report.metric("avg_accuracy", avg);
    report.metric("macro_recall", pct(merged.macro_recall()));
    report.metric("macro_precision", pct(merged.macro_precision()));
    report.metric(
        "users_above_80pct",
        above_80 as f64 / per_user.len() as f64 * 100.0,
    );
    report.paper_value("avg_accuracy", 83.61);
    report.paper_value("macro_recall", 87.44);
    report.paper_value("macro_precision", 84.69);
    report.paper_value("users_above_80pct", 80.0);
    Ok(report)
}
