//! Fig. 13: performance of distinguishing detect-aimed from track-aimed
//! gestures. Paper: accuracy, recall and precision all above 98 %.
//!
//! Two distinguishers are evaluated: the class-routing used by the default
//! pipeline (a window is "track-aimed" iff the 8-class forest recognizes a
//! scroll), and the paper's rule-based `I_g` ascent rule — reported side
//! by side as an ablation of the routing substitution.

use crate::context::Context;
use crate::error::BenchError;
use crate::experiments::{eval_rf_fold, pct};
use crate::report::Report;
use airfinger_core::distinguish::{Distinguisher, GestureFamily};
use airfinger_core::processing::DataProcessor;
use airfinger_ml::metrics::ConfusionMatrix;
use airfinger_ml::split::stratified_k_fold;

/// Run the experiment.
///
/// # Errors
///
/// Propagates classifier failures.
pub fn run(ctx: &Context) -> Result<Report, BenchError> {
    let mut report = Report::new("fig13", "distinguishing detect-aimed vs track-aimed");
    // Class-routing: fold the 8-class CV predictions down to families.
    let features = ctx.all_features();
    let folds = stratified_k_fold(&features.y, 5, ctx.seed + 13);
    let mut family = ConfusionMatrix::new(2);
    for (k, split) in folds.iter().enumerate() {
        let m = eval_rf_fold(
            features,
            split,
            8,
            ctx.config.forest_trees,
            ctx.seed + 13 + k as u64,
        )?;
        // Fold the 8x8 matrix into 2x2: classes 6,7 are track-aimed.
        for t in 0..8 {
            for p in 0..8 {
                for _ in 0..m.count(t, p) {
                    family.record(usize::from(t >= 6), usize::from(p >= 6));
                }
            }
        }
    }
    report.line("class-routing distinguisher (default pipeline):");
    report.line(format!(
        "  accuracy {:.2}%  recall(track) {:.2}%  precision(track) {:.2}%",
        pct(family.accuracy()),
        pct(family.recall(1).unwrap_or(0.0)),
        pct(family.precision(1).unwrap_or(0.0)),
    ));
    report.metric("accuracy", pct(family.accuracy()));
    report.metric("recall", pct(family.recall(1).unwrap_or(0.0)));
    report.metric("precision", pct(family.precision(1).unwrap_or(0.0)));

    // Rule-based I_g distinguisher over the same corpus.
    let corpus = ctx.corpus();
    let processor = DataProcessor::new(ctx.config);
    let rule = Distinguisher::new(ctx.config);
    let mut rule_matrix = ConfusionMatrix::new(2);
    for s in corpus.samples() {
        let Some(g) = s.label.gesture() else { continue };
        let w = processor.primary_window(&s.trace);
        let predicted = rule.classify(&w) == GestureFamily::TrackAimed;
        rule_matrix.record(usize::from(g.is_track_aimed()), usize::from(predicted));
    }
    report.line("rule-based I_g ascent distinguisher (paper §IV-E, ablation):");
    report.line(format!(
        "  accuracy {:.2}%  recall(track) {:.2}%  precision(track) {:.2}%",
        pct(rule_matrix.accuracy()),
        pct(rule_matrix.recall(1).unwrap_or(0.0)),
        pct(rule_matrix.precision(1).unwrap_or(0.0)),
    ));
    report.metric("rule_accuracy", pct(rule_matrix.accuracy()));
    report.paper_value("accuracy", 98.0);
    report.paper_value("recall", 98.0);
    report.paper_value("precision", 98.0);
    Ok(report)
}
